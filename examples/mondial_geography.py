"""Exploring linked geographic data: Mondial-style IDREF relationships.

Demonstrates the data-graph side of SEDA (Definition 2): cities and
provinces reference their countries through IDREF attributes; the link
discoverer turns those into graph edges; queries then connect entities
*across documents* and the connection summary explains how (the dashed
edges of Figure 1).

Run with::

    python examples/mondial_geography.py [scale]
"""

import sys

from repro.datasets.mondial import MondialGenerator
from repro.model.graph import EdgeKind
from repro.system import Seda


def main(scale=0.01):
    print(f"Generating Mondial at scale {scale}...")
    collection = MondialGenerator(scale=scale).build_collection()
    seda = Seda(collection)
    print(f"  {len(collection)} documents, "
          f"{len(seda.graph.edges)} discovered link edges")

    # How many of each edge kind did discovery find?
    by_kind = {}
    for edge in seda.graph.edges:
        by_kind[edge.kind] = by_kind.get(edge.kind, 0) + 1
    for kind, count in sorted(by_kind.items(), key=lambda kv: kv[0].value):
        print(f"  {kind.value}: {count} edges")

    # Search for a city and its country: the two terms live in
    # different documents, connected by the IDREF edge.
    city = next(
        document for document in collection.documents
        if document.root.tag == "city"
    )
    city_name = next(
        node.value for node in city.nodes if node.tag == "name"
    )
    print(f"\nQuery: ({city.root.tag}, {city_name!r}) AND (country, *)")
    session = seda.search(
        [("name", f'"{city_name}"'), ("/country", "*")], k=5
    )
    for result in session.results:
        print(" ", result.describe(collection))

    print("\nHow are they connected?")
    for (i, j), connection, support in (
        session.connection_summary.all_connections()
    ):
        print(f"  [{support}] {connection.describe()}")

    # The dataguide summary compresses thousands of documents into a
    # handful of structural shapes.
    print(f"\nDataguides at threshold 0.4: {len(seda.dataguides)} guides "
          f"for {len(collection)} documents "
          f"({seda.dataguides.reduction_factor(len(collection)):.0f}x)")
    for guide in list(seda.dataguides)[:5]:
        root = sorted(guide.paths)[0]
        print(f"  guide {guide.guide_id}: {len(guide.paths)} paths, "
              f"{len(guide.document_ids)} docs, root {root}")

    # IDREF edges become dataguide-level links too.
    idref_links = [
        link for link in seda.dataguides.links if link[4] is EdgeKind.IDREF
    ]
    print(f"\nDataguide-level links: {len(seda.dataguides.links)} "
          f"({len(idref_links)} from IDREFs); examples:")
    for source_guide, source_path, target_guide, target_path, kind, label in (
        seda.dataguides.links[:5]
    ):
        print(f"  {source_path} ={kind.value}=> {target_path}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
