"""Quickstart: index a few XML documents, search, and inspect summaries.

Run with::

    python examples/quickstart.py
"""

from repro import Seda

DOCUMENTS = [
    ("usa-2006", """
        <country>United States
          <year>2006</year>
          <economy>
            <GDP_ppp>12.31T</GDP_ppp>
            <import_partners>
              <item><trade_country>China</trade_country>
                    <percentage>15%</percentage></item>
              <item><trade_country>Canada</trade_country>
                    <percentage>16.9%</percentage></item>
            </import_partners>
          </economy>
        </country>
    """),
    ("mexico-2003", """
        <country>Mexico
          <year>2003</year>
          <economy>
            <GDP>924.4B</GDP>
            <import_partners>
              <item><trade_country>United States</trade_country>
                    <percentage>70.6%</percentage></item>
              <item><trade_country>Germany</trade_country>
                    <percentage>3.5%</percentage></item>
            </import_partners>
          </economy>
        </country>
    """),
]


def main():
    # 1. Build a SEDA instance over the documents (parses, indexes,
    #    builds the data graph and dataguides).
    seda = Seda.from_documents(DOCUMENTS, name="quickstart")

    # 2. A SEDA query is a set of (context, search) terms.  Context "*"
    #    means anywhere; a tag name restricts by node name.
    session = seda.search(
        [("*", '"United States"'), ("percentage", "*")], k=5
    )

    print("Top-k results:")
    for result in session.results:
        print(" ", result.describe(seda.collection))

    # 3. The context summary shows every path each term matches, with
    #    collection-wide frequencies -- the exploration panel.
    print("\nContext summary:")
    for index, bucket in enumerate(session.context_summary):
        print(f"  term {index}:")
        for entry in bucket:
            print(
                f"    {entry.path}  "
                f"(x{entry.occurrences}, {entry.document_frequency} docs)"
            )

    # 4. The connection summary shows how the matched nodes relate.
    print("\nConnection summary:")
    for (i, j), connection, support in (
        session.connection_summary.all_connections()
    ):
        print(f"  terms {i}-{j} [{support} tuples]: {connection.describe()}")


if __name__ == "__main__":
    main()
