"""Sharded collections: parallel build, scatter-gather top-k, snapshots.

Partitions a Factbook corpus across shards, builds the shards in
parallel worker processes, verifies the merged top-k is byte-identical
to an unsharded build over the same corpus, and round-trips the whole
topology through a sharded snapshot directory (restored lazily).

Run with::

    python examples/sharded_search.py [scale]

``scale`` (default 0.02) sizes the generated corpus.
"""

import os
import sys
import tempfile
import time

from repro import Seda, ShardedSeda
from repro.datasets.factbook import FactbookGenerator

QUERY = [("*", '"United States"'), ("trade_country", "*")]
BATCH = [
    QUERY,
    [("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    QUERY,  # a repeat: served from the result cache
]


def main(scale=0.02):
    # 1. One corpus, two builds.  Sharding partitions the *documents*;
    #    no value links here, so no link edge can cross shards and the
    #    merge-equivalence contract applies (docs/ARCHITECTURE.md).
    corpus = list(FactbookGenerator(scale=scale).documents())
    shards = min(4, max(2, os.cpu_count() or 2))
    print(f"corpus: {len(corpus)} documents, {shards} shards")

    start = time.perf_counter()
    sharded = ShardedSeda.from_documents(corpus, shards=shards)
    build_time = time.perf_counter() - start
    print(f"parallel shard build: {build_time * 1000:.0f}ms  {sharded!r}")
    for entry in sharded.info()["per_shard"]:
        print(f"  shard {entry['shard']}: {entry['documents']} docs, "
              f"{entry['nodes']} nodes")

    # 2. Scatter-gather top-k.  Merged results carry *global* node ids
    #    and are byte-identical to the unsharded system's answers.
    unsharded = Seda.from_documents(corpus)
    merged = sharded.search(QUERY, k=5)
    expected = unsharded.search(QUERY, k=5).results
    identical = [
        (r.node_ids, r.content_scores, r.compactness, r.score)
        for r in merged
    ] == [
        (r.node_ids, r.content_scores, r.compactness, r.score)
        for r in expected
    ]
    assert identical, "merge equivalence regressed"
    print(f"\ntop-5 for {QUERY} (identical to unsharded: {identical}):")
    for result in merged:
        print(f"  {result.describe(sharded.collection)}")

    # 3. Batched serving through the sharded query service: duplicate
    #    queries computed once, per-shard effort reported.
    service = sharded.query_service(workers=2)
    _results, stats = service.execute_batch(BATCH, k=5)
    print(f"\nbatch of {len(BATCH)}: {stats.summary()}")
    for line in stats.shard_summary().splitlines():
        print(f"  {line}")
    answers = sharded.search_many(BATCH, k=5)  # the facade on top
    assert len(answers) == len(BATCH)

    # 4. Snapshot the whole topology: one directory, one file per
    #    shard, a manifest as the commit record.  Restore is lazy --
    #    the topology is served from the manifest; shard files load on
    #    first search.
    with tempfile.TemporaryDirectory() as scratch:
        target = os.path.join(scratch, "factbook.shards")
        sharded.save(target)
        restored = ShardedSeda.load(target)
        print(f"\nrestored (before any search): {restored!r}")
        again = restored.search(QUERY, k=5)
        print(f"restored (after one search):  {restored!r}")
        assert [r.node_ids for r in again] == [r.node_ids for r in merged]
        print("restored answers identical: True")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
