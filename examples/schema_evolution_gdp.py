"""Schema evolution: one logical fact spread over two physical paths.

The World Factbook renamed the GDP element over the years: documents
before 2005 carry ``/country/economy/GDP``, later ones
``/country/economy/GDP_ppp``.  SEDA's facts are *context lists*, so the
GDP fact covers both paths and a single cube spans the evolution --
the Section 7 motivation for making ContextList a relation.

Run with::

    python examples/schema_evolution_gdp.py [scale]
"""

import sys

from repro.cube.extract import parse_measure
from repro.datasets.factbook import FactbookGenerator
from repro.system import Seda


def main(scale=0.02):
    generator = FactbookGenerator(scale=scale)
    seda = Seda(generator.build_collection())
    FactbookGenerator.register_standard_definitions(seda.registry)

    gdp = seda.registry.fact("GDP")
    print("The GDP fact's context list (one logical fact, two paths):")
    for context, key in gdp.context_list:
        print(f"  {context}  key={list(key)}")

    # Search with a context disjunction covering both tag generations.
    session = seda.search([("GDP|GDP_ppp", "*")], k=10)
    print(f"\nTop GDP values found ({len(session.results)}):")
    for result in session.results[:5]:
        print(" ", result.describe(seda.collection))

    # Build one cube per physical context, then merge: the fact tables
    # share the (country, year) key, so the star schema merges them.
    print("\nPer-context complete results:")
    tables = {}
    for context in sorted(gdp.contexts):
        table = session.complete_results(term_paths={0: context})
        tables[context] = table
        print(f"  {context}: {len(table)} rows")

    for context, table in tables.items():
        schema = session.build_cube(table)
        fact = schema.fact("GDP")
        years = sorted({row[1] for row in fact.rows})
        print(f"\nGDP fact rows from {context}: {len(fact)} "
              f"(years {years[0]}..{years[-1]})")
        us_rows = [row for row in fact.rows if row[0] == "United States"]
        for row in us_rows:
            print(f"  {row[0]} {row[1]}: {row[2]:.3e}")

    # The measure parser normalizes the Factbook's value shapes.
    print("\nMeasure parsing examples:")
    for raw in ("10.082T", "924.4B", "16.9%", "1,234.5"):
        print(f"  {raw!r} -> {parse_measure(raw)}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
