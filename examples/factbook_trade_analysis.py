"""The paper's running example, end to end: Query 1 on World Factbook.

Reproduces the Section 1 / Figure 3 walk-through:

1. search ``(*, "United States") AND (trade_country, *) AND
   (percentage, *)``;
2. inspect the context summary (the 27 "United States" contexts);
3. refine to the import-partner contexts;
4. pick the sibling connection between trade_country and percentage;
5. materialize the complete result R(q);
6. build the star schema -- SEDA matches the country/import-country
   dimensions and the import-trade-percentage fact, then adds the year
   key column automatically;
7. aggregate with the OLAP engine.

Run with::

    python examples/factbook_trade_analysis.py [scale]
"""

import sys

from repro.datasets.factbook import FactbookGenerator
from repro.summaries.connection import TreeConnection
from repro.system import Seda

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"


def main(scale=0.05):
    print(f"Generating World Factbook at scale {scale}...")
    generator = FactbookGenerator(scale=scale)
    seda = Seda(
        generator.build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
    )
    FactbookGenerator.register_standard_definitions(seda.registry)
    print(f"  {len(seda.collection)} documents, "
          f"{seda.collection.node_count} nodes, "
          f"{seda.collection.path_count()} distinct paths")

    # Step 1: Query 1.
    session = seda.search(
        [("*", '"United States"'), ("trade_country", "*"),
         ("percentage", "*")],
        k=10,
    )
    print(f"\nTop-{len(session.results)} results (of many combinations):")
    for result in session.results[:5]:
        print(" ", result.describe(seda.collection))

    # Step 2: the context summary.
    summary = session.context_summary
    print(f"\n'United States' matches {len(summary.bucket(0))} contexts; "
          f"{summary.combination_count()} term-context combinations.")
    for entry in summary.bucket(0).entries[:5]:
        print(f"    {entry.path} (x{entry.occurrences})")

    # Step 3: refine to the import-partner interpretation.
    refined = session.refine_contexts({
        0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
    })
    print(f"\nAfter context refinement: {len(refined.results)} top results.")

    # Step 4: the connection summary offers the item-level (sibling)
    # and import_partners-level (cousin) connections; pick siblings,
    # and anchor the country to its own document.
    print("Connections observed in the top-k:")
    for (i, j), connection, support in (
        refined.connection_summary.all_connections()
    ):
        print(f"  {i}-{j} [{support}]: {connection.describe()}")
    chosen = refined.refine_connections([
        ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
        ((1, 2), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)),
    ])

    # Step 5: the complete result set.
    table = chosen.complete_results()
    print(f"\nComplete result R(q): {len(table)} tuples")
    for row in table.display_rows()[:4]:
        print("  ", row)

    # Step 6: the star schema (Figure 3c).
    schema = chosen.build_cube(table)
    fact = schema.fact("import-trade-percentage")
    print(f"\nFact table {fact.name} {fact.columns}:")
    for row in fact.rows:
        print("  ", row)
    for name, dimension in sorted(schema.dimension_tables.items()):
        print(f"Dimension {name}: {list(dimension)}")

    # Step 7: OLAP.
    engine = chosen.olap(schema)
    cube = engine.cube("import-trade-percentage")
    print("\nAverage import share by partner:")
    for row in engine.report(
        "import-trade-percentage", ["import-country"], agg="avg"
    ):
        print(f"  {row[0]}: {row[1]:.2f}%")
    print("\nPivot year x partner:")
    print(engine.render_pivot(cube.pivot("year", "import-country"),
                              row_label="year"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
