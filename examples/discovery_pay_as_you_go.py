"""Pay-as-you-go warehousing: auto-discovering facts, dimensions, keys.

The paper seeds the registry from an administrator and names automatic
discovery as future work (Sections 7-8).  This example starts from an
*empty* registry, profiles the collection, discovers measure-like and
dimension-like paths with verified relative keys, registers them, and
builds a cube a user never had to configure.

Run with::

    python examples/discovery_pay_as_you_go.py [scale]
"""

import sys

from repro.cube.discovery import FactDimensionDiscoverer, discover_key
from repro.cube.registry import Registry
from repro.datasets.factbook import FactbookGenerator
from repro.summaries.connection import TreeConnection
from repro.system import Seda

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"


def main(scale=0.02):
    seda = Seda(FactbookGenerator(scale=scale).build_collection())
    collection, store = seda.collection, seda.node_store
    print(f"{len(collection)} documents, empty registry.\n")

    # Profile a focused slice of paths (profiles over the whole
    # collection work too; this keeps the demo output readable).
    paths_of_interest = [
        PCT_PATH, TC_PATH, "/country/year",
        "/country/economy/export_partners/item/percentage",
        "/country/economy/GDP", "/country/people/population",
    ]
    discoverer = FactDimensionDiscoverer(
        collection, store, dimension_cardinality=0.9
    )
    print("Path profiles:")
    for path, profile in discoverer.profile_paths(paths_of_interest).items():
        print(f"  {path}")
        print(f"    occurrences={profile.count} "
              f"distinct={len(profile.distinct)} "
              f"numeric={profile.numeric_ratio:.0%} "
              f"samples={profile.samples[:3]}")

    # Key discovery (the GORDIAN-style search).
    print("\nDiscovered keys:")
    for path in (PCT_PATH, TC_PATH, "/country/year"):
        key = discover_key(collection, store, path)
        print(f"  {path}\n    -> {list(key) if key else 'none found'}")

    # Fact/dimension discovery + registration.
    facts, dims = discoverer.discover(paths=paths_of_interest)
    print("\nDiscovered facts:")
    for candidate in facts:
        print(f"  {candidate.suggested_name()}: {candidate.path} "
              f"(score {candidate.score:.2f})")
    print("Discovered dimensions:")
    for candidate in dims:
        print(f"  {candidate.suggested_name()}: {candidate.path} "
              f"(score {candidate.score:.2f})")

    registry = discoverer.register(Registry(), facts, dims)
    seda.registry = registry

    # Use the auto-registered definitions exactly like admin-seeded ones.
    session = seda.search([("trade_country", "*"), ("percentage", "*")], k=10)
    table = session.complete_results(
        term_paths={0: TC_PATH, 1: PCT_PATH},
        connections=[((0, 1), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH))],
    )
    schema = session.build_cube(table)
    print(f"\nCube from discovered definitions ({len(table)} result rows):")
    for name, fact_table in schema.fact_tables.items():
        print(f"  fact {name} {fact_table.columns}: {len(fact_table)} rows")
        for row in fact_table.rows[:5]:
            print("    ", row)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
