"""Why SEDA asks the user: flexible-querying heuristics disagree.

Section 2 (citing [22]) argues that SLCA / ELCA / MLCA-style heuristics
"do not work on all data scenarios", which is why SEDA relies on user
feedback instead.  This example runs all three heuristics and SEDA's
compactness ranking on one ambiguous document and shows where each
silently drops a real relationship.

Run with::

    python examples/heuristics_comparison.py
"""

from repro.baselines.compactness import CompactnessRanker
from repro.baselines.elca import elca
from repro.baselines.mlca import mlca
from repro.baselines.slca import slca
from repro.index.builder import IndexBuilder
from repro.model.collection import DocumentCollection

DOCUMENT = """
<country>
  <name>mexico</name>
  <import_partners>
    <item><partner>usa</partner><share>70</share></item>
    <item><partner>germany</partner><share>3</share></item>
  </import_partners>
  <export_partners>
    <item><partner>usa</partner><share>88</share></item>
  </export_partners>
</country>
"""


def main():
    collection = DocumentCollection()
    collection.add_document(DOCUMENT, name="mexico")
    inverted, _paths = IndexBuilder(collection).build()

    def describe(dewey):
        node = collection.document(0).node_at(dewey)
        return f"{node.path} (n{dewey})"

    keywords = ["germany", "usa"]
    print(f"Query keywords: {keywords}")
    print("Ground truth: germany relates to BOTH usa nodes -- as a")
    print("fellow import partner AND via the export side of the same")
    print("country. Which approaches see both?\n")

    answers = slca(collection, inverted, keywords)
    print(f"SLCA -> {len(answers)} answer(s):")
    for doc_id, dewey in answers:
        print(f"  {describe(dewey)}")
    print("  (returns one subtree root; the usa-s are conflated)\n")

    answers = elca(collection, inverted, keywords)
    print(f"ELCA -> {len(answers)} answer(s):")
    for doc_id, dewey in answers:
        print(f"  {describe(dewey)}")
    print()

    answers = mlca(collection, inverted, keywords)
    print(f"MLCA -> {len(answers)} tuple(s):")
    for _doc, lca, nodes in answers:
        pair = ", ".join(f"{n.path}={n.value}" for n in nodes)
        print(f"  lca={lca}: {pair}")
    print("  (the export-side usa is dropped: germany's 'closest' usa")
    print("   wins -- a false negative)\n")

    ranker = CompactnessRanker(collection, inverted)
    ranked = ranker.rank_pairs("germany", "usa")
    print(f"SEDA compactness -> {len(ranked)} ranked pair(s):")
    for node_a, node_b, distance in ranked:
        print(f"  distance {distance}: {node_a.path}={node_a.value} "
              f"<-> {node_b.path}={node_b.value}")
    print("  (nothing is dropped; the user chooses via the context and")
    print("   connection summaries)")


if __name__ == "__main__":
    main()
