"""The serving path end to end: start a server, query it, drain it.

Builds a small Factbook corpus, snapshots it, serves the snapshot over
HTTP with :func:`repro.serving.start_server`, and drives the whole
lifecycle through :class:`repro.serving.ServingClient`: liveness,
search, an online ``add_documents`` (WAL-durable before it is
acknowledged), metrics, and a graceful drain that commits a fresh
snapshot and leaves the directory fsck-clean.

Run with::

    python examples/serve_client.py [scale]

``scale`` (default 0.02) sizes the generated corpus.  The server binds
an ephemeral localhost port; nothing is left listening afterwards.
The same lifecycle is available as a process via
``python -m repro serve --snapshot <path>`` (see docs/OPERATIONS.md,
"Running the server").
"""

import os
import sys
import tempfile

from repro import Seda
from repro.datasets.factbook import FactbookGenerator
from repro.serving import ServingClient, start_server
from repro.storage.snapshot import fsck_report

QUERY = '*:"United States" ;; trade_country:*'


def main(scale=0.02):
    workdir = tempfile.mkdtemp(prefix="serve-example-")
    snapshot = os.path.join(workdir, "factbook.snapshot")

    # 1. Build once, snapshot, and serve the snapshot: the server owns
    #    the system from here on, including its write-ahead log.
    corpus = list(FactbookGenerator(scale=scale).documents())
    Seda.from_documents(
        corpus, value_links=FactbookGenerator.value_link_specs()
    ).save(snapshot)
    server = start_server(snapshot)
    print(f"serving {len(corpus)} documents on {server.url}")

    with ServingClient(server.host, server.port,
                       client_id="example") as client:
        # 2. Liveness and a first query.  The generation token names
        #    the index version the answer was computed against.
        health = client.healthz()
        print(f"healthz: {health['status']}, "
              f"{health['documents']} documents, "
              f"generation {health['generation']}")
        response = client.search(QUERY, k=5)
        print(f"search: {len(response['results'])} results "
              f"at generation {response['generation']}")

        # 3. An online write.  Acknowledged means the batch is already
        #    fsynced into the WAL -- a kill -9 right now loses nothing.
        added = client.add_documents([(
            "freedonia-2026",
            "<country>Freedonia<year>2026</year>"
            "<economy><GDP>1.21T</GDP></economy></country>",
        )])
        print(f"ingested online: now {added['documents']} documents, "
              f"generation {added['generation']}")
        hits = client.search("*:freedonia", k=3)
        print(f"the new document answers: {len(hits['results'])} hit(s)")

        # 4. Metrics ride the same server (JSON here; drop the flag
        #    for Prometheus text exposition).
        metrics = client.metrics(as_json=True)
        print(f"served {metrics['registry']['total_queries']} queries, "
              f"{metrics['admission']['admitted_total']} admitted, "
              f"peak inflight {metrics['admission']['peak_inflight']}")

        # 5. Graceful drain: quiesce, commit a snapshot absorbing the
        #    online write, truncate the WAL, stop listening.
        drained = client.drain()
        print(f"drained: snapshot committed with "
              f"{drained['documents']} documents")

    server.wait(timeout=30)
    report = fsck_report(snapshot)
    print(f"fsck after drain: {'clean' if report['ok'] else report}")

    # 6. The drained snapshot cold-starts with the online write inside.
    reloaded = Seda.load(snapshot)
    print(f"cold start: {len(reloaded.collection.documents)} documents")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
