"""Property-based checks for the observability suite (Hypothesis).

Four properties the ISSUE pins down:

* EXPLAIN's total sorted accesses equal the sum of its per-term stream
  accesses, and every counter matches the searcher's own ``stats``.
* ``tuples_scored + pruned`` never exceeds the candidate cross-product
  bound (every considered combo pairs one candidate per term).
* Fingerprint normalization is idempotent and collapses whitespace,
  case, and term-order variants to one fingerprint.
* Histogram percentile estimates bracket the true (nearest-rank)
  sample percentiles.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LatencyHistogram, explain, query_fingerprint
from repro.query.term import Query
from repro.system import Seda

DOCS = [
    ("a.xml", "<country><name>France Paris</name><gdp>2000</gdp>"
              "<year>2006</year></country>"),
    ("b.xml", "<country><name>Spain Madrid</name><gdp>1400</gdp>"
              "<year>2006</year></country>"),
    ("c.xml", "<country><name>Chile Santiago</name><gdp>300</gdp>"
              "<year>2004</year></country>"),
]

_SEDA = Seda.from_documents(DOCS)

_WORDS = ("france", "spain", "chile", "paris", "gdp", "year", "madrid",
          "santiago", "absent")
_CONTEXTS = ("*", "name", "gdp", "year", "country")

_terms = st.tuples(
    st.sampled_from(_CONTEXTS),
    st.one_of(st.sampled_from(_WORDS), st.just("*")),
)
_queries = st.lists(_terms, min_size=1, max_size=3)


@given(pairs=_queries, k=st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_explain_totals_match_per_term_accesses(pairs, k):
    report = explain(_SEDA.topk, pairs, k=k)
    raw = _SEDA.topk.stats
    assert report.sorted_accesses == sum(
        entry["sorted_accesses"] for entry in report.per_term
    )
    assert report.sorted_accesses == raw["sorted_accesses"]
    assert [entry["candidates"] for entry in report.per_term] \
        == raw["candidates"]
    assert report.stop_reason in (
        "empty-stream", "k-satisfied", "corner-bound", "exhaustion"
    )


@given(pairs=_queries, k=st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_considered_tuples_bounded_by_cross_product(pairs, k):
    report = explain(_SEDA.topk, pairs, k=k)
    bound = math.prod(
        entry["candidates"] for entry in report.per_term
    )
    assert report.tuples_scored + report.pruned <= bound
    if report.path != "single":
        # Every returned tuple was scored; the single-term path streams
        # results directly and never enters the combine stage.
        assert report.tuples_scored >= len(report.results)


@given(
    pairs=st.lists(
        st.tuples(
            st.sampled_from(_CONTEXTS),
            st.sampled_from(_WORDS),
        ),
        min_size=1,
        max_size=3,
    ),
    k=st.integers(min_value=1, max_value=20),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_fingerprint_idempotent_and_collapses_variants(pairs, k, data):
    fingerprint = query_fingerprint(Query.parse(pairs), k)

    # Idempotence: re-parsing the rendered terms reproduces it exactly.
    rendered_pairs = []
    body = fingerprint.rsplit(" [k=", 1)[0]
    for rendered in body.split(" ;; "):
        context, _, search = rendered.partition(":")
        rendered_pairs.append((context, search))
    assert query_fingerprint(Query.parse(rendered_pairs), k) == fingerprint

    # Whitespace / case / term-order variants collapse.
    permuted = data.draw(st.permutations(pairs))
    mangled = [
        (context, f"  {search.upper()}  ") for context, search in permuted
    ]
    assert query_fingerprint(Query.parse(mangled), k) == fingerprint


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
        min_size=1,
        max_size=200,
    ),
    q=st.sampled_from((0.5, 0.9, 0.95, 0.99)),
)
@settings(max_examples=80, deadline=None)
def test_histogram_percentiles_bracket_true_percentiles(samples, q):
    histogram = LatencyHistogram()
    for value in samples:
        histogram.observe(value)
    # True nearest-rank percentile over the raw samples.
    ordered = sorted(samples)
    truth = ordered[max(1, math.ceil(q * len(ordered))) - 1]
    lower, upper = histogram.bracket(q)
    assert lower <= truth <= upper
    assert histogram.quantile(q) == upper
