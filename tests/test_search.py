"""Top-k search: scoring, the TA algorithm, and naive equivalence."""

import pytest

from repro.index.builder import IndexBuilder
from repro.index.streams import ImpactStream, ImpactStreamStore
from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph, EdgeKind
from repro.model.links import LinkDiscoverer
from repro.query.term import Query
from repro.search.naive import NaiveSearcher
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher


@pytest.fixture
def searchers(figure2_collection, figure2_matcher):
    graph = DataGraph(figure2_collection)
    scoring = ScoringModel(
        figure2_collection, figure2_matcher.inverted, graph
    )
    return (
        TopKSearcher(figure2_matcher, scoring),
        NaiveSearcher(figure2_matcher, scoring),
        scoring,
    )


QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


class TestScoring:
    def test_match_all_scores_one(self, figure2_collection, searchers):
        _topk, _naive, scoring = searchers
        query = Query.parse([("percentage", "*")])
        node = next(
            n for n in figure2_collection.iter_nodes() if n.tag == "percentage"
        )
        assert scoring.content_score(node.node_id, query.terms[0]) == 1.0

    def test_content_score_positive_on_match(self, figure2_collection,
                                             searchers):
        _topk, _naive, scoring = searchers
        query = Query.parse([("*", "germany")])
        node = next(
            n for n in figure2_collection.iter_nodes()
            if n.value == "Germany"
        )
        assert scoring.content_score(node.node_id, query.terms[0]) > 0.0

    def test_content_score_zero_without_match(self, figure2_collection,
                                              searchers):
        _topk, _naive, scoring = searchers
        query = Query.parse([("*", "germany")])
        node = next(
            n for n in figure2_collection.iter_nodes() if n.value == "China"
        )
        assert scoring.content_score(node.node_id, query.terms[0]) == 0.0

    def test_compactness_decreases_with_distance(self, figure2_collection,
                                                 searchers):
        _topk, _naive, scoring = searchers
        document = figure2_collection.document(0)
        item = next(n for n in document.nodes if n.tag == "item")
        tc, pct = item.child_ids
        siblings = scoring.compactness([tc, pct])
        far = scoring.compactness([document.root.node_id, pct])
        assert siblings > far

    def test_compactness_singleton_is_one(self, searchers):
        _topk, _naive, scoring = searchers
        assert scoring.compactness([5]) == 1.0

    def test_disconnected_scores_none(self, figure2_collection, searchers):
        _topk, _naive, scoring = searchers
        a = figure2_collection.document(0).root.node_id
        b = figure2_collection.document(1).root.node_id
        assert scoring.compactness([a, b]) is None

    def test_upper_bound_at_perfect_compactness(self, searchers):
        _topk, _naive, scoring = searchers
        assert scoring.upper_bound([2.0, 2.0]) == pytest.approx(2.0)


class TestTopK:
    def test_single_term_ranked_by_content(self, figure2_collection,
                                           searchers):
        topk, _naive, _scoring = searchers
        results = topk.search(Query.parse([("*", '"United States"')]), k=10)
        assert len(results) == 4
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, searchers):
        topk, _naive, _scoring = searchers
        results = topk.search(Query.parse([("*", "canada")]), k=2)
        assert len(results) == 2

    def test_empty_stream_no_results(self, searchers):
        topk, _naive, _scoring = searchers
        assert topk.search(Query.parse([("*", "atlantis")]), k=5) == []

    def test_multi_term_results_connected(self, figure2_collection,
                                          searchers):
        topk, _naive, scoring = searchers
        results = topk.search(Query.parse(QUERY_1), k=10)
        assert results
        for result in results:
            assert scoring.graph.connects(result.node_ids, max_hops=12)

    def test_multi_term_nodes_distinct(self, searchers):
        topk, _naive, _scoring = searchers
        for result in topk.search(Query.parse(QUERY_1), k=10):
            assert len(set(result.node_ids)) == len(result.node_ids)

    def test_sibling_pairs_rank_above_cousins(self, figure2_collection,
                                              searchers):
        """Compactness: trade_country and its sibling percentage must
        outrank a pairing across different items."""
        topk, _naive, _scoring = searchers
        query = Query.parse(
            [("trade_country", "china"), ("percentage", "*")]
        )
        results = topk.search(query, k=10)
        best = results[0]
        tc, pct = (
            figure2_collection.node(best.node_ids[0]),
            figure2_collection.node(best.node_ids[1]),
        )
        assert tc.parent_id == pct.parent_id  # same item
        assert figure2_collection.node(pct.node_id).value == "15%"

    def test_stats_populated(self, searchers):
        topk, _naive, _scoring = searchers
        topk.search(Query.parse(QUERY_1), k=3)
        assert topk.stats["sorted_accesses"] > 0
        assert topk.stats["tuples_scored"] > 0


class _TieShufflingSearcher(TopKSearcher):
    """A searcher whose streams reverse the order of equal-score runs.

    Stream order among tied scores is an implementation accident; the
    top-k answer must not depend on it.
    """

    def _stream(self, term):
        from repro.index.streams import ImpactStream

        pairs = super()._stream(term).pairs()
        shuffled, start = [], 0
        for index in range(1, len(pairs) + 1):
            if index == len(pairs) or pairs[index][0] != pairs[start][0]:
                shuffled.extend(reversed(pairs[start:index]))
                start = index
        return ImpactStream(
            (score for score, _ in shuffled),
            (node_id for _, node_id in shuffled),
        )


class TestDeterminism:
    """Tied scores must resolve identically for any evaluation order."""

    TIED_QUERY = [("trade_country", "*"), ("percentage", "*")]

    def test_tied_scores_survive_eviction_deterministically(
        self, figure2_collection, figure2_matcher
    ):
        """With k below the number of tied sibling pairs, the survivors
        are the lexicographically smallest node-id tuples -- regardless
        of stream arrival order."""
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted,
            DataGraph(figure2_collection),
        )
        plain = TopKSearcher(figure2_matcher, scoring)
        shuffled = _TieShufflingSearcher(figure2_matcher, scoring)
        for k in (1, 2, 3, 5):
            query = Query.parse(self.TIED_QUERY)
            expected = plain.search(query, k=k)
            reordered = shuffled.search(query, k=k)
            assert [r.node_ids for r in expected] == [
                r.node_ids for r in reordered
            ]
            assert [r.score for r in expected] == [
                r.score for r in reordered
            ]

    def test_partner_cap_truncates_ties_deterministically(
        self, figure2_collection, figure2_matcher
    ):
        """Truncation to partner_limit among tied scores must keep the
        same (smallest-id) subset whatever order the nodes arrived in."""
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted,
            DataGraph(figure2_collection),
        )
        searcher = TopKSearcher(figure2_matcher, scoring, partner_limit=3)
        node_ids = [11, 7, 29, 3, 17]
        kept = []
        for arrival in (node_ids, list(reversed(node_ids))):
            seen_by_doc = [{0: list(arrival)}]
            seen_scores = [{node_id: 1.0 for node_id in arrival}]
            kept.append(
                sorted(searcher._partners(0, {0}, seen_by_doc, seen_scores))
            )
        assert kept[0] == kept[1] == [3, 7, 11]

    def test_tied_survivors_prefer_smaller_node_ids(
        self, figure2_collection, figure2_matcher
    ):
        """Among equal-score tuples the kept ones are the smallest by
        node-id order (the documented tie-break)."""
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted,
            DataGraph(figure2_collection),
        )
        searcher = TopKSearcher(figure2_matcher, scoring)
        query = Query.parse(self.TIED_QUERY)
        full = searcher.search(query, k=100)
        truncated = searcher.search(query, k=3)
        best_score = full[0].score
        tied = sorted(
            r.node_ids for r in full if r.score == best_score
        )
        kept = [r.node_ids for r in truncated if r.score == best_score]
        assert kept == tied[: len(kept)]


class TestStatsReset:
    def test_empty_stream_resets_stats(self, searchers):
        """A query that bails out on an empty stream must not leave the
        previous query's counters behind."""
        topk, _naive, _scoring = searchers
        topk.search(Query.parse(QUERY_1), k=5)
        assert topk.stats["sorted_accesses"] > 0
        assert topk.search(Query.parse([("*", "atlantis"), ("year", "*")]),
                           k=5) == []
        assert topk.stats["sorted_accesses"] == 0
        assert topk.stats["tuples_scored"] == 0
        assert topk.stats["early_stop"] is False
        # candidates reflect THIS query's streams: no keyword match, but
        # the match-all year term still has candidates.
        assert topk.stats["candidates"][0] == 0
        assert topk.stats["candidates"][1] > 0

    def test_early_stop_not_sticky(self, searchers):
        """early_stop set by one query must not leak into the next."""
        topk, _naive, _scoring = searchers
        topk.search(Query.parse([("*", "canada")]), k=1)  # truncating
        assert topk.stats["early_stop"] is True
        topk.search(Query.parse([("*", "atlantis")]), k=1)
        assert topk.stats["early_stop"] is False


class TestVersionedCaches:
    def test_reachability_rebuilds_on_version_bump(self, figure2_collection,
                                                   figure2_matcher):
        """bump_version invalidates even when the edge count is
        unchanged -- the failure mode of len(edges) keying."""
        graph = DataGraph(figure2_collection)
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph
        )
        searcher = TopKSearcher(figure2_matcher, scoring)
        reach = searcher._document_reachability()
        assert searcher._document_reachability() is reach  # cached
        edge_index = scoring._edge_index()
        assert scoring._edge_index() is edge_index  # cached
        graph.bump_version()
        assert searcher._document_reachability() is not reach
        assert scoring._edge_index() is not edge_index

    def test_reachability_rebuilds_on_new_edge(self, figure2_collection,
                                               figure2_matcher):
        from repro.model.graph import EdgeKind

        graph = DataGraph(figure2_collection)
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph
        )
        searcher = TopKSearcher(figure2_matcher, scoring)
        reach = searcher._document_reachability()
        nodes = [node.node_id for node in figure2_collection.iter_nodes()]
        graph.add_edge(nodes[0], nodes[-1], EdgeKind.VALUE)
        assert searcher._document_reachability() is not reach

    def test_share_read_caches(self, figure2_collection, figure2_matcher):
        graph = DataGraph(figure2_collection)
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph
        )
        source = TopKSearcher(figure2_matcher, scoring).warm()
        sharer = TopKSearcher(figure2_matcher, scoring)
        sharer.share_read_caches(source)
        assert sharer._document_reachability() is source._doc_reach


def _wire_collection(collection):
    """Matcher + graph over a hand-built collection."""
    from repro.query.matcher import TermMatcher
    from repro.storage.node_store import NodeStore

    inverted, paths = IndexBuilder(collection).build()
    matcher = TermMatcher(collection, inverted, paths, NodeStore(collection))
    return matcher, DataGraph(collection)


class TestPairDistance:
    """Structural distances: best-of-several-links routes, the max_hops
    boundary, and the per-version memo."""

    def _two_documents(self):
        collection = DocumentCollection(name="links")
        collection.add_document("<a><b>left</b><c>mid</c></a>", name="A")
        collection.add_document("<d><e>right</e></d>", name="B")
        tags = {n.tag: n.node_id for n in collection.iter_nodes()}
        return collection, DataGraph(collection), tags

    def _scoring(self, collection, graph, **kwargs):
        inverted, _paths = IndexBuilder(collection).build()
        return ScoringModel(collection, inverted, graph, **kwargs)

    def test_cross_document_takes_best_of_several_links(self):
        collection, graph, tags = self._two_documents()
        # Route via the root link: b -> a (1 hop), link (1), d -> e
        # (1 hop) = 3; the direct b -> e link is 1.  Best must win.
        graph.add_edge(tags["a"], tags["d"], EdgeKind.VALUE)
        graph.add_edge(tags["b"], tags["e"], EdgeKind.VALUE)
        scoring = self._scoring(collection, graph)
        assert scoring.pair_distance(tags["b"], tags["e"]) == 1

    def test_cross_document_single_link_route_length(self):
        collection, graph, tags = self._two_documents()
        graph.add_edge(tags["a"], tags["d"], EdgeKind.VALUE)
        scoring = self._scoring(collection, graph)
        assert scoring.pair_distance(tags["b"], tags["e"]) == 3

    def test_max_hops_boundary_same_document(self):
        collection, graph, tags = self._two_documents()
        # b and c are siblings: tree distance exactly 2.
        at_limit = self._scoring(collection, graph, max_hops=2)
        assert at_limit.pair_distance(tags["b"], tags["c"]) == 2
        past_limit = self._scoring(collection, graph, max_hops=1)
        assert past_limit.pair_distance(tags["b"], tags["c"]) is None

    def test_max_hops_boundary_cross_document(self):
        collection, graph, tags = self._two_documents()
        graph.add_edge(tags["a"], tags["d"], EdgeKind.VALUE)
        at_limit = self._scoring(collection, graph, max_hops=3)
        assert at_limit.pair_distance(tags["b"], tags["e"]) == 3
        past_limit = self._scoring(collection, graph, max_hops=2)
        assert past_limit.pair_distance(tags["b"], tags["e"]) is None

    def test_memoized_and_symmetric(self):
        collection, graph, tags = self._two_documents()
        graph.add_edge(tags["b"], tags["e"], EdgeKind.VALUE)
        scoring = self._scoring(collection, graph)
        first = scoring.pair_distance(tags["b"], tags["e"])
        assert scoring.pair_misses == 1
        # The reversed pair shares the symmetric cache key.
        assert scoring.pair_distance(tags["e"], tags["b"]) == first
        assert scoring.pair_hits == 1
        assert scoring.pair_misses == 1

    def test_disconnected_is_memoized_too(self):
        collection, graph, tags = self._two_documents()
        scoring = self._scoring(collection, graph)
        assert scoring.pair_distance(tags["b"], tags["e"]) is None
        assert scoring.pair_distance(tags["b"], tags["e"]) is None
        assert scoring.pair_hits == 1

    def test_memo_invalidated_by_version_bump(self):
        collection, graph, tags = self._two_documents()
        graph.add_edge(tags["a"], tags["d"], EdgeKind.VALUE)
        scoring = self._scoring(collection, graph)
        assert scoring.pair_distance(tags["b"], tags["e"]) == 3
        # A new, shorter link must be visible immediately: add_edge
        # bumps the graph version, which drops the memo.
        graph.add_edge(tags["b"], tags["e"], EdgeKind.VALUE)
        assert scoring.pair_distance(tags["b"], tags["e"]) == 1

    def test_precomputed_false_bypasses_memo(self):
        collection, graph, tags = self._two_documents()
        graph.add_edge(tags["b"], tags["e"], EdgeKind.VALUE)
        scoring = self._scoring(collection, graph, precomputed=False)
        assert scoring.pair_distance(tags["b"], tags["e"]) == 1
        assert scoring.pair_distance(tags["b"], tags["e"]) == 1
        assert scoring.pair_hits == 0
        assert scoring.pair_misses == 0
        assert scoring._pair_cache == {}


class TestBoundPruning:
    """The content-score upper bound must skip provably losing combos
    without changing any answer."""

    #: ``a`` carries four occurrences of "x" (high tf), its child ``b``
    #: the "y"; the sibling ``c`` carries a single "x".  The (a, b)
    #: pair is parent/child (distance 1, compactness at the 1/m cap),
    #: so the weaker (c, b) combo's bound falls strictly below it.
    DOC = "<root><a>x x x x<b>y</b></a><c>x</c></root>"

    def _searcher(self, precomputed=True):
        collection = DocumentCollection(name="prune")
        collection.add_document(self.DOC, name="doc")
        matcher, graph = _wire_collection(collection)
        scoring = ScoringModel(
            collection, matcher.inverted, graph, precomputed=precomputed
        )
        return TopKSearcher(matcher, scoring)

    def test_prunes_weak_combo(self):
        searcher = self._searcher()
        results = searcher.search(Query.parse([("*", "x"), ("*", "y")]), k=1)
        assert len(results) == 1
        assert searcher.stats["pruned"] == 1

    def test_pruning_changes_no_answer(self):
        query = [("*", "x"), ("*", "y")]
        fast = self._searcher().search(Query.parse(query), k=1)
        slow_searcher = self._searcher(precomputed=False)
        slow = slow_searcher.search(Query.parse(query), k=1)
        assert slow_searcher.stats["pruned"] == 0  # escape hatch: no pruning
        assert [(r.node_ids, r.content_scores, r.compactness, r.score)
                for r in fast] == [
            (r.node_ids, r.content_scores, r.compactness, r.score)
            for r in slow
        ]

    def test_unbounded_k_never_prunes(self):
        searcher = self._searcher()
        searcher.search(Query.parse([("*", "x"), ("*", "y")]), k=None)
        assert searcher.stats["pruned"] == 0


class TestImpactStreams:
    """Stream caching: build-once per graph version, shared stores."""

    def test_stream_cached_per_version(self, figure2_collection,
                                       figure2_matcher):
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted,
            DataGraph(figure2_collection),
        )
        searcher = TopKSearcher(figure2_matcher, scoring)
        term = Query.parse([("*", "canada")]).terms[0]
        stream = searcher._stream(term)
        assert searcher._stream(term) is stream  # cached, same object
        scoring.graph.bump_version()
        rebuilt = searcher._stream(term)
        assert rebuilt is not stream
        assert rebuilt.pairs() == stream.pairs()  # same content

    def test_slow_path_bypasses_store(self, figure2_collection,
                                      figure2_matcher):
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted,
            DataGraph(figure2_collection), precomputed=False,
        )
        searcher = TopKSearcher(figure2_matcher, scoring)
        searcher.search(Query.parse([("*", "canada")]), k=3)
        assert len(searcher.streams) == 0

    def test_streams_equal_across_paths(self, figure2_collection,
                                        figure2_matcher):
        graph = DataGraph(figure2_collection)
        fast = TopKSearcher(figure2_matcher, ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph,
        ))
        slow = TopKSearcher(figure2_matcher, ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph,
            precomputed=False,
        ))
        for pairs in ([("*", "canada")], [("*", '"United States"')],
                      [("trade_country", "*")]):
            term = Query.parse(pairs).terms[0]
            assert fast._stream(term).pairs() == slow._stream(term).pairs()

    def test_store_roundtrip_preserves_bytes(self):
        store = ImpactStreamStore()
        stream = ImpactStream([2.5, 1.0 / 3.0], [4, 9])
        store.put(("ctx", "search"), 7, stream)
        restored = ImpactStreamStore.from_dict(store.to_dict())
        assert restored.get(("ctx", "search"), 7).pairs() == stream.pairs()
        # A different version misses; to_dict can filter stale entries.
        assert restored.get(("ctx", "search"), 8) is None
        assert ImpactStreamStore.from_dict(
            store.to_dict(version=99)
        )._streams == {}

    def test_share_read_caches_adopts_streams_and_scoring(
        self, figure2_collection, figure2_matcher
    ):
        graph = DataGraph(figure2_collection)
        source_scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph
        )
        source = TopKSearcher(figure2_matcher, source_scoring).warm()
        source.search(Query.parse([("*", "canada")]), k=3)
        worker_scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph
        )
        worker = TopKSearcher(figure2_matcher, worker_scoring)
        worker.share_read_caches(source)
        assert worker.streams is source.streams
        assert worker._doc_reach is source._doc_reach
        # A separate scoring model adopts the source's edge index and
        # distance memo instead of building private copies.
        assert worker_scoring._doc_edge_index is (
            source_scoring._doc_edge_index
        )
        assert worker_scoring._pair_cache is source_scoring._pair_cache


class TestTopKAgainstNaive:
    """TA must agree with exhaustive search on its top-k scores."""

    @pytest.mark.parametrize(
        "pairs,k",
        [
            ([("*", '"United States"')], 3),
            ([("trade_country", "*"), ("percentage", "*")], 5),
            ([("*", "canada"), ("year", "*")], 4),
            (QUERY_1, 5),
        ],
    )
    def test_same_scores(self, searchers, pairs, k):
        topk, naive, _scoring = searchers
        query = Query.parse(pairs)
        ta_results = topk.search(query, k=k)
        naive_results = naive.search(query, k=k)
        ta_scores = [round(r.score, 9) for r in ta_results]
        naive_scores = [round(r.score, 9) for r in naive_results]
        assert ta_scores == naive_scores

    def test_same_tuples_when_unique_scores(self, searchers):
        topk, naive, _scoring = searchers
        query = Query.parse([("trade_country", "germany"), ("percentage", "*")])
        ta_results = topk.search(query, k=3)
        naive_results = naive.search(query, k=3)
        assert [r.node_ids for r in ta_results] == [
            r.node_ids for r in naive_results
        ]


class TestNaiveGuards:
    def test_cross_product_cap(self, figure2_matcher, searchers):
        _topk, naive, _scoring = searchers
        naive.max_combinations = 10
        query = Query.parse([("*", "*"), ("*", "*")])
        with pytest.raises(ValueError):
            naive.search(query, k=1)


class TestCrossDocumentSearch:
    def test_link_tuples_found(self, figure2_collection, figure2_matcher):
        """With a trade-partner value link, 'United States' as another
        country's import partner connects to the US documents."""
        from repro.model.links import ValueLinkSpec

        graph = DataGraph(figure2_collection)
        LinkDiscoverer(graph).apply_value_links([
            ValueLinkSpec(
                "/country",
                "/country/economy/import_partners/item/trade_country",
                label="trade partner",
            )
        ])
        scoring = ScoringModel(
            figure2_collection, figure2_matcher.inverted, graph
        )
        topk = TopKSearcher(figure2_matcher, scoring)
        query = Query.parse(
            [("/country", '"United States"'), ("trade_country", '"United States"')]
        )
        results = topk.search(query, k=5)
        assert results
        docs = {
            (figure2_collection.node(r.node_ids[0]).doc_id,
             figure2_collection.node(r.node_ids[1]).doc_id)
            for r in results
        }
        # The US root lives in docs 0/1; the matching trade_country in doc 2.
        assert all(a != b for a, b in docs)
