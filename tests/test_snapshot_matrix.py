"""The snapshot compatibility matrix: versions 1-5 all restore exactly.

Version 5 snapshots add per-record CRCs, a header integrity seal, and
a sidecar checksum; version 4 introduced the binary sidecar; versions
1-3 carried everything as JSON (v1 without streams or node lengths,
v2 adding both, v3 adding the optional ``obs`` record).  The matrix
here hand-writes each legacy format from the same live system -- using
the components' legacy ``to_dict`` forms, which are kept
byte-compatible with the old writers -- and asserts every vintage loads
into a system whose answers are byte-identical to the original, and
that re-saving any of them produces a valid current-version pair (the
upgrade is lossless).
"""

import json
import os

import pytest

from repro.storage.snapshot import (
    SNAPSHOT_VERSION,
    SUPPORTED_VERSIONS,
    read_snapshot,
    sidecar_file_name,
    snapshot_info,
)
from repro.system import Seda

QUERIES = [
    [("*", '"United States"'), ("percentage", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", "canada")],
]

K = 5


def _canonical(results):
    return json.dumps(
        [[list(r.node_ids), list(r.content_scores), r.compactness, r.score]
         for r in results],
        separators=(",", ":"),
    )


def _answers(seda):
    return [_canonical(seda.search(pairs, k=K).results) for pairs in QUERIES]


def _header(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.loads(handle.readline())


@pytest.fixture()
def live(figure2_collection):
    return Seda(figure2_collection)


def _legacy_records(seda, version):
    """The record set a version-``version`` writer would have produced."""
    records = {
        "collection": seda.collection.to_dict(),
        "graph": seda.graph.to_dict(),
        "inverted": seda.inverted.to_dict(),
        "path_index": seda.path_index.to_dict(),
        "node_store": seda.node_store.to_dict(),
        "dataguides": seda.dataguides.to_dict(),
        "registry": seda.registry.to_dict(),
    }
    if version == 1:
        # v1 predates the precomputed node lengths and the streams
        # record; readers derive the lengths lazily.
        records["inverted"].pop("node_lengths", None)
    else:
        records["streams"] = seda.streams.to_dict(
            version=seda.graph.version
        )
    return records


def _write_legacy(path, seda, version):
    """Write ``seda`` in the legacy all-JSON format of ``version``."""
    meta = {
        "collection": seda.collection.name,
        "max_hops": seda.max_hops,
        "dataguide_threshold": seda.dataguides.threshold,
        "analyzer": seda.analyzer.to_dict(),
        "value_links": [],
    }
    lines = [json.dumps({
        "record": "header", "format": "seda-snapshot",
        "version": version, "meta": meta,
    }, separators=(",", ":"))]
    for name, payload in _legacy_records(seda, version).items():
        lines.append(json.dumps(
            {"record": name, "payload": payload}, separators=(",", ":")
        ))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


class TestVersionMatrix:
    def test_current_version_is_five(self):
        assert SNAPSHOT_VERSION == 5
        assert SUPPORTED_VERSIONS == (1, 2, 3, 4, 5)

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_legacy_versions_load_byte_identically(
        self, live, tmp_path, version
    ):
        # Warm the streams so v2/v3 files carry a materialized record.
        expected = _answers(live)
        path = tmp_path / f"v{version}.snapshot"
        _write_legacy(str(path), live, version)

        restored = Seda.load(str(path))
        assert _answers(restored) == expected
        assert not os.path.exists(sidecar_file_name(str(path)))

    def test_current_save_load_round_trip(self, live, tmp_path):
        expected = _answers(live)
        path = tmp_path / "current.snapshot"
        live.save(str(path))

        info = snapshot_info(str(path))
        assert _header(str(path))["version"] == SNAPSHOT_VERSION
        assert os.path.exists(sidecar_file_name(str(path)))
        assert info["sidecar_bytes"] == os.path.getsize(
            sidecar_file_name(str(path))
        )
        assert info["sidecar_bytes"] > 0

        restored = Seda.load(str(path))
        assert _answers(restored) == expected

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_resaving_a_legacy_snapshot_upgrades_losslessly(
        self, live, tmp_path, version
    ):
        expected = _answers(live)
        old = tmp_path / f"v{version}.snapshot"
        _write_legacy(str(old), live, version)

        upgraded = tmp_path / "upgraded.snapshot"
        Seda.load(str(old)).save(str(upgraded))

        _meta, records = read_snapshot(str(upgraded))
        assert _header(str(upgraded))["version"] == SNAPSHOT_VERSION
        assert os.path.exists(sidecar_file_name(str(upgraded)))
        assert "columns" in records["inverted"]

        assert _answers(Seda.load(str(upgraded))) == expected

    def test_legacy_v4_without_checksums_loads(self, live, tmp_path):
        """A pre-checksum version-4 pair (sidecar, but no crcs table,
        no integrity seal, no sidecar crc32) still restores exactly."""
        expected = _answers(live)
        path = tmp_path / "v4.snapshot"
        live.save(str(path))
        lines = [
            line for line in path.read_text().splitlines()
            if not line.startswith('{"record":"integrity"')
        ]
        header = json.loads(lines[0])
        header["version"] = 4
        header.pop("crcs", None)
        header.get("sidecar", {}).pop("crc32", None)
        lines[0] = json.dumps(header, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")

        assert _header(str(path))["version"] == 4
        restored = Seda.load(str(path))
        assert _answers(restored) == expected

    def test_v1_snapshot_derives_node_lengths(self, live, tmp_path):
        path = tmp_path / "v1.snapshot"
        _write_legacy(str(path), live, 1)
        restored = Seda.load(str(path))
        # node_length is what the scoring normalization reads; a wrong
        # lazy derivation would skew every content score.
        posting = restored.inverted.postings("united")[0]
        assert restored.inverted.node_length(posting.node_id) == (
            live.inverted.node_length(posting.node_id)
        )

    def test_legacy_payloads_carry_no_columns(self, live):
        for name, payload in _legacy_records(live, 3).items():
            assert "columns" not in payload, name
            assert "columns_inline" not in payload, name
