"""Property test: a live server's answers == an offline rebuild, always.

The serving consistency contract (``repro.serving.app``): answers
served *while documents stream in over HTTP* are byte-identical to
what a fresh offline build over the same document sequence computes.
Hypothesis generates a random seed corpus plus a random interleaving
of online ``add_documents`` batches and searches, runs the whole plan
against a real listening server, then replays every search against an
offline :class:`~repro.system.Seda` built from exactly the documents
the server held at that moment.  Equality is on the serialized wire
form (``result_to_dict`` dictionaries, compared as canonical JSON), so
"byte-identical" means the actual response bytes, not a rounded
approximation.

Both server shapes run the same plans: single-file and sharded (two
shards; the corpora carry no cross-document links, the regime where
sharded answers equal unsharded ones exactly -- so one unsharded
oracle serves both).  Every example also drains its server and checks
the directory left behind is fsck-clean with an empty WAL: the
property covers the full lifecycle, not just the steady state.

Servers are started per example, so ``max_examples`` stays small; the
derandomized "ci" profile (see ``conftest.py``) keeps the corpus set
stable run to run.
"""

import json
import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.query.term import Query
from repro.serving import ServingClient, start_server
from repro.serving.app import result_to_dict
from repro.storage.snapshot import fsck_report
from repro.storage.wal import (
    sharded_wal_file_name,
    verify_wal,
    wal_file_name,
)
from repro.system import Seda

_TAGS = ("a", "b", "c")
_WORDS = (
    "red", "blue", "green", "red blue", "blue green red",
    "red " * 12, "blue blue blue blue", "green pad pad",
)

_QUERIES = (
    [("*", "red"), ("*", "blue")],
    [("*", "blue"), ("*", "green")],
    [("a", "*"), ("*", "red")],
    [("*", "green")],
)


@st.composite
def _document_body(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        tag = draw(st.sampled_from(_TAGS))
        words = draw(st.sampled_from(_WORDS))
        parts.append(f"<{tag}>{words}</{tag}>")
    return "<r>" + "".join(parts) + "</r>"


@st.composite
def _plan(draw):
    """A seed corpus plus an interleaved add/search operation list."""
    seed = [
        (f"seed-{index}", draw(_document_body()))
        for index in range(draw(st.integers(min_value=1, max_value=4)))
    ]
    operations = []
    live = 0
    for _ in range(draw(st.integers(min_value=2, max_value=7))):
        if draw(st.booleans()):
            batch = []
            for _ in range(draw(st.integers(min_value=1, max_value=2))):
                batch.append((f"live-{live}", draw(_document_body())))
                live += 1
            operations.append(("add", batch))
        else:
            operations.append((
                "search",
                draw(st.integers(min_value=0,
                                 max_value=len(_QUERIES) - 1)),
                draw(st.integers(min_value=1, max_value=12)),
            ))
    # Every plan ends with one search per query shape, so even
    # add-heavy draws check the final corpus from every angle.
    for index in range(len(_QUERIES)):
        operations.append(("search", index, 10))
    return seed, operations


def _offline_answer(cache, documents, query_index, k):
    """Wire-form results from a fresh offline build (memoized)."""
    key = (len(documents), query_index, k)
    if key not in cache:
        system = cache.get(("system", len(documents)))
        if system is None:
            system = Seda.from_documents(list(documents))
            cache[("system", len(documents))] = system
        results = system.topk.search(
            Query.parse(_QUERIES[query_index]), k=k
        )
        cache[key] = json.dumps(
            [result_to_dict(result) for result in results],
            sort_keys=True, separators=(",", ":"),
        )
    return cache[key]


def _run_plan(seed, operations, sharded):
    workdir = tempfile.mkdtemp(prefix="serving-props-")
    try:
        if sharded:
            from repro.shard import ShardedSeda

            snapshot = f"{workdir}/seda.shards"
            ShardedSeda.from_documents(
                list(seed), shards=2, parallel=False
            ).save(snapshot)
            wal_path = sharded_wal_file_name(snapshot)
        else:
            snapshot = f"{workdir}/seda.snapshot"
            Seda.from_documents(list(seed)).save(snapshot)
            wal_path = wal_file_name(snapshot)

        documents = list(seed)
        observed = []          # (document_count, query_index, k, wire_json)
        server = start_server(snapshot)
        try:
            with ServingClient(server.host, server.port) as client:
                for operation in operations:
                    if operation[0] == "add":
                        _, batch = operation
                        response = client.add_documents(
                            [list(pair) for pair in batch]
                        )
                        documents.extend(batch)
                        assert response["documents"] == len(documents)
                    else:
                        _, query_index, k = operation
                        wire = " ;; ".join(
                            f"{context}:{search}"
                            for context, search in _QUERIES[query_index]
                        )
                        response = client.search(wire, k=k)
                        observed.append((
                            len(documents), query_index, k,
                            json.dumps(response["results"],
                                       sort_keys=True,
                                       separators=(",", ":")),
                        ))
                client.drain()
            assert server.wait(timeout=30)
        finally:
            server.stop()

        # Lifecycle epilogue: the drained directory cold-starts clean.
        assert fsck_report(snapshot)["ok"]
        wal = verify_wal(wal_path)
        assert wal["records"] == 0 and wal["error"] is None

        # The property: every answer equals the offline rebuild over
        # the exact documents the server held when it answered.
        cache = {}
        prefix = {len(seed): list(seed)}
        running = list(seed)
        for operation in operations:
            if operation[0] == "add":
                running = running + list(operation[1])
                prefix[len(running)] = running
        for count, query_index, k, wire_json in observed:
            expected = _offline_answer(cache, prefix[count],
                                       query_index, k)
            assert wire_json == expected, (
                f"live answer diverged from offline rebuild at "
                f"{count} documents (query {query_index}, k={k})"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@given(plan=_plan())
@settings(max_examples=12, deadline=None)
def test_live_server_matches_offline_rebuild(plan):
    seed, operations = plan
    _run_plan(seed, operations, sharded=False)


@given(plan=_plan())
@settings(max_examples=8, deadline=None)
def test_live_sharded_server_matches_offline_rebuild(plan):
    seed, operations = plan
    _run_plan(seed, operations, sharded=True)
