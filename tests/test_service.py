"""The query service: concurrency, result caching, invalidation."""

import json

import pytest

from repro.model.graph import EdgeKind
from repro.query.term import Query
from repro.service.cache import ResultCache
from repro.service.query_service import QueryService
from repro.system import Seda

BATCH = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],  # all scores tied
    [("*", "canada")],
    [("trade_country", "*"), ("percentage", "*")],  # duplicate of #2
    [("*", '"United States"')],
]


def _canonical(results):
    return json.dumps(
        [[list(r.node_ids), round(r.score, 12)] for r in results],
        separators=(",", ":"),
    )


@pytest.fixture
def seda(figure2_collection):
    return Seda(figure2_collection)


class TestQueryServiceConcurrency:
    def test_one_vs_many_workers_identical(self, figure2_collection):
        """The same batch must yield byte-identical results for any
        worker count (tied-score queries included)."""
        single = QueryService(Seda(figure2_collection), workers=1)
        multi = QueryService(Seda(figure2_collection), workers=4)
        sequential, _ = single.execute_batch(BATCH, k=5)
        parallel, _ = multi.execute_batch(BATCH, k=5)
        assert [_canonical(r) for r in sequential] == [
            _canonical(r) for r in parallel
        ]

    def test_batch_matches_plain_search(self, seda):
        service = QueryService(seda, workers=4)
        batched, _ = service.execute_batch(BATCH, k=5)
        direct = [seda.topk.search(Query.parse(q), k=5) for q in BATCH]
        assert [_canonical(r) for r in batched] == [
            _canonical(r) for r in direct
        ]

    def test_duplicates_computed_once(self, seda):
        service = QueryService(seda, workers=4)
        _, stats = service.execute_batch(BATCH, k=5)
        # BATCH has 5 entries, 4 distinct: exactly one in-batch hit.
        assert stats.queries == 5
        assert stats.computed == 4
        assert stats.cache_hits == 1

    def test_search_many_sessions(self, seda):
        sessions = seda.search_many(BATCH, k=5, workers=3)
        assert len(sessions) == len(BATCH)
        for pairs, session in zip(BATCH, sessions):
            expected = seda.topk.search(Query.parse(pairs), k=5)
            assert _canonical(session.results) == _canonical(expected)

    def test_empty_batch(self, seda):
        results, stats = QueryService(seda, workers=2).execute_batch([])
        assert results == []
        assert stats.queries == 0
        assert stats.hit_rate == 0.0


class TestResultCaching:
    def test_repeat_query_hits_cache(self, seda):
        service = QueryService(seda, workers=2)
        first, stats1 = service.execute(BATCH[0], k=5)
        second, stats2 = service.execute(BATCH[0], k=5)
        assert not stats1.cache_hit
        assert stats2.cache_hit
        assert _canonical(first) == _canonical(second)
        assert service.cache.hits == 1

    def test_cached_batch_identical(self, seda):
        service = QueryService(seda, workers=4)
        cold, _ = service.execute_batch(BATCH, k=5)
        warm, stats = service.execute_batch(BATCH, k=5)
        assert stats.cache_hits == len(BATCH)
        assert [_canonical(r) for r in cold] == [_canonical(r) for r in warm]

    def test_key_includes_k(self, seda):
        service = QueryService(seda, workers=1)
        top2, _ = service.execute(BATCH[1], k=2)
        top5, stats = service.execute(BATCH[1], k=5)
        assert not stats.cache_hit
        assert len(top2) == 2 and len(top5) > 2

    def test_normalized_spellings_share_entry(self, seda):
        service = QueryService(seda, workers=1)
        _, stats1 = service.execute([("*", "canada")], k=5)
        _, stats2 = service.execute([("", "canada")], k=5)
        assert not stats1.cache_hit
        assert stats2.cache_hit

    def test_lru_eviction(self, seda):
        service = QueryService(seda, workers=1, cache_size=2)
        for query in BATCH[:3]:
            service.execute(query, k=5)
        assert len(service.cache) == 2

    def test_cache_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestInvalidation:
    def test_add_documents_invalidates(self, figure2_collection):
        """After ingestion the same query must be recomputed and see the
        new documents."""
        seda = Seda(figure2_collection)
        service = seda.query_service(workers=2)
        before, stats1 = service.execute([("*", "canada")], k=10)
        version_before = seda.graph.version
        seda.add_documents(
            ["<country>Canada<year>2006</year></country>"]
        )
        assert seda.graph.version > version_before
        assert len(service.cache) == 0
        after, stats2 = service.execute([("*", "canada")], k=10)
        assert not stats2.cache_hit
        new_root = seda.collection.documents[-1].root.node_id
        assert any(new_root in r.node_ids for r in after)
        assert len(after) > len(before)

    def test_version_keyed_entries_unreachable_after_bump(self, seda):
        service = QueryService(seda, workers=1)
        service.execute([("*", "canada")], k=5)
        seda.graph.bump_version()
        _, stats = service.execute([("*", "canada")], k=5)
        assert not stats.cache_hit

    def test_shared_caches_rewarmed_after_mutation(self, figure2_collection):
        """After add_documents the workers must share one freshly
        computed reachability map, not rebuild private copies."""
        seda = Seda(figure2_collection)
        service = seda.query_service(workers=3)
        before = service._pool[0]._doc_reach
        assert all(
            searcher._doc_reach is before for searcher in service._pool
        )
        seda.add_documents(["<country>Canada<year>2006</year></country>"])
        service.execute_batch(BATCH, k=5)
        after = service._pool[0]._doc_reach
        assert after is not before
        assert all(
            searcher._doc_reach is after for searcher in service._pool
        )
        assert all(
            searcher._reach_version == seda.graph.version
            for searcher in service._pool
        )

    def test_version_bumps_on_add_edge(self, seda):
        before = seda.graph.version
        nodes = [node.node_id for node in seda.collection.iter_nodes()]
        seda.graph.add_edge(nodes[0], nodes[-1], EdgeKind.VALUE)
        assert seda.graph.version == before + 1


class TestStats:
    def test_batch_stats_aggregates(self, seda):
        service = QueryService(seda, workers=2)
        _, stats = service.execute_batch(BATCH, k=5)
        assert stats.queries == len(BATCH)
        assert stats.throughput > 0
        assert stats.sorted_accesses > 0
        assert 0.0 <= stats.hit_rate <= 1.0
        assert str(stats.queries) in stats.summary()

    def test_query_stats_record(self, seda):
        service = QueryService(seda, workers=1)
        _, stats = service.execute(BATCH[0], k=5)
        payload = stats.as_dict()
        assert payload["k"] == 5
        assert payload["latency"] >= 0.0
        assert payload["sorted_accesses"] > 0

    def test_rejects_bad_worker_count(self, seda):
        with pytest.raises(ValueError):
            QueryService(seda, workers=0)

    def test_scoring_cache_counters_surfaced(self, seda):
        """Batch stats report the scoring pipeline's shared-cache work:
        impact-stream and pair-distance hit rates, and pruned combos."""
        service = QueryService(seda, workers=2)
        _, first = service.execute_batch(BATCH, k=5)
        assert first.pruned >= 0
        assert "stream cache" in first.summary()
        assert "distance cache" in first.summary()
        assert "pruned" in first.summary()
        # A second pass over the same workload after dropping the result
        # cache recomputes every query; by then every stream is
        # materialized, so the store must answer without a single miss.
        service.invalidate()
        _, second = service.execute_batch(BATCH, k=5)
        assert second.scoring_caches["stream_misses"] == 0
        assert second.scoring_caches["stream_hits"] > 0
        assert second.stream_hit_rate == 1.0
        assert second.distance_hit_rate > 0.0

    def test_workers_share_one_stream_store(self, seda):
        service = QueryService(seda, workers=3)
        assert all(
            searcher.streams is seda.streams
            for searcher in service._pool
        )
        assert seda.topk.streams is seda.streams


class TestServiceReuse:
    def test_defaults_reuse_configured_service(self, seda):
        """search_many and parameterless query_service must not clobber
        an explicitly configured service (its warm cache included)."""
        configured = seda.query_service(workers=8, cache_size=1024)
        assert seda.query_service() is configured
        seda.search_many(BATCH[:2], k=5)
        assert seda._service is configured
        assert len(configured.cache) > 0  # warmed by search_many

    def test_explicit_reconfiguration_replaces(self, seda):
        first = seda.query_service(workers=2)
        second = seda.query_service(workers=3)
        assert second is not first
        assert second.workers == 3
        assert seda.query_service(workers=3) is second
