"""XML lexer and parser behaviour."""

import pytest

from repro.xmlio import parse, XMLSyntaxError
from repro.xmlio.dom import Comment, Element, ProcessingInstruction


class TestBasicParsing:
    def test_single_element(self):
        root = parse("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_text_content(self):
        root = parse("<a>hello</a>")
        assert root.text == "hello"

    def test_nested_elements(self):
        root = parse("<a><b><c>x</c></b></a>")
        assert root.find("b").find("c").text == "x"

    def test_attributes(self):
        root = parse('<a x="1" y="two"/>')
        assert root.attributes == {"x": "1", "y": "two"}

    def test_single_quoted_attributes(self):
        root = parse("<a x='1'/>")
        assert root.attributes == {"x": "1"}

    def test_entity_in_text(self):
        root = parse("<a>x &amp; y</a>")
        assert root.text == "x & y"

    def test_entity_in_attribute(self):
        root = parse('<a v="&lt;3"/>')
        assert root.attributes["v"] == "<3"

    def test_cdata_preserved_verbatim(self):
        root = parse("<a><![CDATA[<not-a-tag> & raw]]></a>")
        assert root.text == "<not-a-tag> & raw"

    def test_mixed_content_order(self):
        root = parse("<a>one<b/>two</a>")
        assert root.children[0] == "one"
        assert isinstance(root.children[1], Element)
        assert root.children[2] == "two"

    def test_whitespace_between_elements_stripped(self):
        root = parse("<a>\n  <b/>\n  <c/>\n</a>")
        assert all(not isinstance(child, str) for child in root.children)

    def test_whitespace_kept_when_disabled(self):
        root = parse("<a>\n  <b/>\n</a>", strip_whitespace=False)
        assert any(isinstance(child, str) for child in root.children)

    def test_xml_declaration_pi(self):
        root = parse('<?xml version="1.0"?><a/>')
        assert root.tag == "a"

    def test_doctype_skipped(self):
        root = parse("<!DOCTYPE a><a/>")
        assert root.tag == "a"

    def test_doctype_with_internal_subset(self):
        root = parse("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")
        assert root.tag == "a"

    def test_comment_kept(self):
        root = parse("<a><!--note--></a>")
        assert isinstance(root.children[0], Comment)
        assert root.children[0].text == "note"

    def test_comment_dropped_when_disabled(self):
        root = parse("<a><!--note--></a>", keep_comments=False)
        assert root.children == []

    def test_processing_instruction_kept(self):
        root = parse('<a><?target data="1"?></a>')
        pi = root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "target"

    def test_tag_names_with_punctuation(self):
        root = parse("<ns:a-b._c/>")
        assert root.tag == "ns:a-b._c"


class TestParserErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "<a>",                      # unclosed
            "<a></b>",                  # mismatch
            "</a>",                     # close without open
            "<a/><b/>",                 # two roots
            "",                         # empty
            "just text",                # no element
            "<a x=1/>",                 # unquoted attribute
            '<a x="1" x="2"/>',         # duplicate attribute
            "<a><!--unterminated</a>",  # comment
            "<a><![CDATA[open</a>",     # cdata
            '<a x="<"/>',               # < in attribute
            "<a>&unknown;</a>",         # entity
            "<1tag/>",                  # bad name start
        ],
    )
    def test_malformed_raises(self, source):
        with pytest.raises(XMLSyntaxError):
            parse(source)

    def test_error_carries_location(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse("<a>\n<b></c></a>")
        assert excinfo.value.line == 2


class TestElementNavigation:
    def test_find_returns_first(self):
        root = parse("<a><b>1</b><b>2</b></a>")
        assert root.find("b").text == "1"

    def test_find_missing_returns_none(self):
        assert parse("<a/>").find("zzz") is None

    def test_find_all(self):
        root = parse("<a><b>1</b><c/><b>2</b></a>")
        assert [element.text for element in root.find_all("b")] == ["1", "2"]

    def test_iter_descendants_preorder(self):
        root = parse("<a><b><c/></b><d/></a>")
        tags = [element.tag for element in root.iter_descendants()]
        assert tags == ["a", "b", "c", "d"]

    def test_text_content_concatenates_descendants(self):
        root = parse("<a>x<b>y<c>z</c></b>w</a>")
        assert root.text_content() == "xyzw"

    def test_parent_links(self):
        root = parse("<a><b/></a>")
        assert root.find("b").parent is root
