"""Whole-system snapshots: per-component round-trips, ``Seda.save`` /
``Seda.load`` equivalence, version gating, and incremental ingestion."""

import json

import pytest

from repro.cube.registry import Registry
from repro.datasets.factbook import FactbookGenerator
from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.path_index import PathIndex
from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph, EdgeKind
from repro.model.links import ValueLinkSpec
from repro.storage.node_store import NodeStore
from repro.storage.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    read_snapshot,
    snapshot_info,
)
from repro.summaries.dataguide import DataguideSet
from repro.system import Seda
from repro.text import Analyzer

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"

QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


@pytest.fixture(scope="module")
def seda():
    generator = FactbookGenerator(scale=0.02)
    system = Seda(
        generator.build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
    )
    FactbookGenerator.register_standard_definitions(system.registry)
    return system


@pytest.fixture(scope="module")
def loaded(seda, tmp_path_factory):
    path = tmp_path_factory.mktemp("snapshot") / "factbook.snapshot"
    seda.save(path)
    return Seda.load(path)


def _topk_bytes(system, k=10):
    results = system.search(QUERY_1, k=k).results
    return json.dumps([
        [list(r.node_ids), list(r.content_scores), r.compactness, r.score]
        for r in results
    ]).encode("utf-8")


class TestComponentRoundTrips:
    def test_collection(self, seda):
        restored = DocumentCollection.from_dict(seda.collection.to_dict())
        original = seda.collection
        assert restored.name == original.name
        assert len(restored) == len(original)
        assert restored.node_count == original.node_count
        assert restored.paths() == original.paths()
        for node_id in range(original.node_count):
            mine, theirs = original.node(node_id), restored.node(node_id)
            assert mine.tag == theirs.tag
            assert mine.path == theirs.path
            assert mine.dewey == theirs.dewey
            assert mine.kind == theirs.kind
            assert mine.parent_id == theirs.parent_id
            assert mine.child_ids == theirs.child_ids
            assert mine.direct_text == theirs.direct_text

    def test_collection_path_stats(self, seda):
        restored = DocumentCollection.from_dict(seda.collection.to_dict())
        for path in seda.collection.paths():
            assert restored.path_occurrences(path) == (
                seda.collection.path_occurrences(path)
            )
            assert restored.path_document_frequency(path) == (
                seda.collection.path_document_frequency(path)
            )

    def test_collection_node_at(self, seda):
        restored = DocumentCollection.from_dict(seda.collection.to_dict())
        node = seda.collection.documents[0].nodes[-1]
        assert restored.node_by_ref(0, node.dewey).tag == node.tag

    def test_graph(self, seda):
        restored = DataGraph.from_dict(seda.graph.to_dict(), seda.collection)
        assert restored.edges == seda.graph.edges
        sample = seda.graph.edges[0]
        assert restored.out_edges(sample.source_id) == (
            seda.graph.out_edges(sample.source_id)
        )
        assert restored.in_edges(sample.target_id) == (
            seda.graph.in_edges(sample.target_id)
        )

    def test_inverted_index(self, seda):
        restored = InvertedIndex.from_dict(
            seda.inverted.to_dict(), seda.analyzer
        )
        assert restored.indexed_nodes == seda.inverted.indexed_nodes
        assert restored.vocabulary() == seda.inverted.vocabulary()
        for term in seda.inverted.vocabulary():
            assert restored.postings(term) == seda.inverted.postings(term)
            assert restored.document_frequency(term) == (
                seda.inverted.document_frequency(term)
            )

    def test_inverted_index_resave_keeps_raw_terms(self, seda):
        restored = InvertedIndex.from_dict(
            seda.inverted.to_dict(), seda.analyzer
        )
        restored.postings("united")  # materialize one term only
        again = InvertedIndex.from_dict(restored.to_dict(), seda.analyzer)
        assert again.vocabulary() == seda.inverted.vocabulary()
        for term in ("united", "china", "mexico"):
            assert again.postings(term) == seda.inverted.postings(term)

    def test_path_index(self, seda):
        restored = PathIndex.from_dict(
            seda.path_index.to_dict(), seda.analyzer
        )
        assert restored.all_paths() == seda.path_index.all_paths()
        assert restored.tags() == seda.path_index.tags()
        assert restored.vocabulary() == seda.path_index.vocabulary()
        for term in seda.path_index.vocabulary():
            assert restored.paths_for_term(term) == (
                seda.path_index.paths_for_term(term)
            )
        for tag in seda.path_index.tags():
            assert restored.paths_for_tag(tag) == (
                seda.path_index.paths_for_tag(tag)
            )
        assert restored.paths_for_tag("trade*") == (
            seda.path_index.paths_for_tag("trade*")
        )
        assert restored.paths_for_path(TC_PATH) == (
            seda.path_index.paths_for_path(TC_PATH)
        )

    def test_node_store(self, seda):
        restored = NodeStore.from_dict(
            seda.node_store.to_dict(), seda.collection
        )
        assert restored.tags() == seda.node_store.tags()
        assert restored.paths() == seda.node_store.paths()
        for tag in seda.node_store.tags():
            assert restored.by_tag(tag) == seda.node_store.by_tag(tag)
        for path in seda.node_store.paths():
            assert restored.by_path(path) == seda.node_store.by_path(path)
        root = seda.collection.document(0).root
        assert restored.descendants_in_path(root.node_id, TC_PATH) == (
            seda.node_store.descendants_in_path(root.node_id, TC_PATH)
        )

    def test_dataguides(self, seda):
        restored = DataguideSet.from_dict(seda.dataguides.to_dict())
        assert restored.threshold == seda.dataguides.threshold
        assert len(restored) == len(seda.dataguides)
        for mine, theirs in zip(seda.dataguides, restored):
            assert mine.guide_id == theirs.guide_id
            assert mine.paths == theirs.paths
            assert mine.document_ids == theirs.document_ids
            assert set(mine.source_path_sets) == set(theirs.source_path_sets)
        assert len(restored.links) == len(seda.dataguides.links)
        mine = {
            (sg.guide_id, sp, tg.guide_id, tp, kind, label)
            for sg, sp, tg, tp, kind, label in seda.dataguides.links
        }
        theirs = {
            (sg.guide_id, sp, tg.guide_id, tp, kind, label)
            for sg, sp, tg, tp, kind, label in restored.links
        }
        assert mine == theirs
        assert restored.false_positive_pairs() == (
            seda.dataguides.false_positive_pairs()
        )

    def test_registry(self, seda):
        restored = Registry.from_dict(seda.registry.to_dict())
        for definition in seda.registry.facts:
            twin = restored.fact(definition.name)
            assert twin.contexts == definition.contexts
            assert twin.context_list == definition.context_list
        for definition in seda.registry.dimensions:
            twin = restored.dimension(definition.name)
            assert twin.contexts == definition.contexts
            assert twin.context_list == definition.context_list

    def test_analyzer(self):
        analyzer = Analyzer(lowercase=False, remove_stopwords=True, stem=True)
        restored = Analyzer.from_dict(analyzer.to_dict())
        text = "The Quick Brown Foxes Jumped"
        assert restored.terms(text) == analyzer.terms(text)

    def test_analyzer_custom_stopwords(self):
        analyzer = Analyzer(remove_stopwords=True,
                            stopwords=frozenset({"qqq"}))
        restored = Analyzer.from_dict(analyzer.to_dict())
        assert restored.terms("qqq zzz") == ["zzz"]

    def test_value_link_spec(self):
        spec = ValueLinkSpec("/a/b", "/c/d", label="x")
        restored = ValueLinkSpec.from_dict(spec.to_dict())
        assert restored.primary_path == spec.primary_path
        assert restored.foreign_path == spec.foreign_path
        assert restored.label == spec.label


class TestSystemSnapshot:
    def test_topk_identical(self, seda, loaded):
        assert _topk_bytes(loaded) == _topk_bytes(seda)

    def test_context_summary_identical(self, seda, loaded):
        mine = seda.search(QUERY_1).context_summary
        theirs = loaded.search(QUERY_1).context_summary
        assert len(mine) == len(theirs)
        for index in range(len(mine)):
            assert list(mine.bucket(index)) == list(theirs.bucket(index))

    def test_connection_summary_identical(self, seda, loaded):
        mine = seda.search(QUERY_1).connection_summary
        theirs = loaded.search(QUERY_1).connection_summary
        assert {
            (pair, connection.describe(), support)
            for pair, connection, support in mine.all_connections()
        } == {
            (pair, connection.describe(), support)
            for pair, connection, support in theirs.all_connections()
        }

    def test_figure6_flow_on_loaded_system(self, loaded):
        from repro.summaries.connection import TreeConnection

        item = "/country/economy/import_partners/item"
        session = loaded.search(QUERY_1, k=10)
        refined = session.refine_contexts({
            0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
        })
        chosen = refined.refine_connections([
            ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
            ((1, 2), TreeConnection(TC_PATH, PCT_PATH, item)),
        ])
        table = chosen.complete_results()
        assert len(table) > 0
        schema = chosen.build_cube(table)
        assert len(schema.fact("import-trade-percentage")) > 0

    def test_registry_and_config_survive(self, seda, loaded):
        assert loaded.max_hops == seda.max_hops
        assert loaded.dataguides.threshold == seda.dataguides.threshold
        assert loaded.collection.name == seda.collection.name
        assert loaded.registry.has_fact("import-trade-percentage")
        assert [spec.label for spec in loaded.value_links] == (
            [spec.label for spec in seda.value_links]
        )

    def test_snapshot_info(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        info = snapshot_info(path)
        assert info["meta"]["collection"] == seda.collection.name
        assert {name for name, _size in info["records"]} == {
            "collection", "graph", "inverted", "path_index", "node_store",
            "dataguides", "registry", "streams",
        }
        assert info["total_bytes"] == path.stat().st_size

    def test_save_is_atomic(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        assert not (tmp_path / "sys.snapshot.tmp").exists()

    def test_graph_version_survives_round_trip(self, seda, loaded):
        assert loaded.graph.version == seda.graph.version

    def test_graph_version_persists_bumps(self, seda, tmp_path):
        """A version bumped past the edge count (e.g. by ingestion) must
        restore exactly, not re-derive from len(edges)."""
        graph = DataGraph.from_dict(seda.graph.to_dict(), seda.collection)
        graph.bump_version()
        assert graph.version == seda.graph.version + 1
        restored = DataGraph.from_dict(graph.to_dict(), seda.collection)
        assert restored.version == graph.version
        assert restored.version != len(restored.edges)

    def test_pre_version_snapshot_defaults_to_edge_count(self, seda):
        payload = seda.graph.to_dict()
        del payload["version"]
        restored = DataGraph.from_dict(payload, seda.collection)
        assert restored.version == len(restored.edges)


class TestImpactStreamPersistence:
    """Materialized per-term streams survive save/load (version 2)."""

    def test_streams_persist_and_serve_identically(self, seda, tmp_path):
        seda.search(QUERY_1, k=10)  # materialize the query's streams
        assert len(seda.streams) >= len(QUERY_1)
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        loaded = Seda.load(path)
        # Only the scored (non-match-all) streams persist: QUERY_1 has
        # one phrase term and two match-all terms, whose streams are
        # cheap to rebuild and large to store.
        assert 1 <= len(loaded.streams) < len(seda.streams)
        # The restored streams serve the exact bytes the saving system
        # computed; only the match-all streams rebuild.
        assert _topk_bytes(loaded) == _topk_bytes(seda)
        assert loaded.streams.hits >= 1
        assert loaded.streams.misses <= 2

    def test_version1_snapshot_without_streams_loads(self, seda, tmp_path):
        """Old snapshots (no streams record, no node lengths) restore
        with an empty store and identical answers."""
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        # A genuine version-1 file has no streams record, no integrity
        # seal, and no crcs table -- strip all three, not just streams.
        lines = [
            line for line in path.read_text().splitlines()
            if not line.startswith('{"record":"streams"')
            and not line.startswith('{"record":"integrity"')
        ]
        header = json.loads(lines[0])
        header["version"] = 1
        header.pop("crcs", None)
        lines[0] = json.dumps(header, separators=(",", ":"))
        old = tmp_path / "old.snapshot"
        old.write_text("\n".join(lines) + "\n")
        loaded = Seda.load(old)
        assert len(loaded.streams) == 0
        assert _topk_bytes(loaded) == _topk_bytes(seda)

    def test_streams_of_stale_versions_not_persisted(self, seda, tmp_path):
        seda.search(QUERY_1, k=10)
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        _meta, records = read_snapshot(path)
        versions = {
            record["version"] for record in records["streams"]["streams"]
        }
        assert versions <= {seda.graph.version}


class TestSnapshotErrors:
    def _tamper_header(self, path, out_path, **overrides):
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header.update(overrides)
        lines[0] = json.dumps(header)
        out_path.write_text("\n".join(lines) + "\n")

    def test_version_mismatch_rejected(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        bad = tmp_path / "bad.snapshot"
        self._tamper_header(path, bad, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotError, match="version"):
            Seda.load(bad)

    def test_wrong_format_rejected(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        bad = tmp_path / "bad.snapshot"
        self._tamper_header(path, bad, format="other-format")
        with pytest.raises(SnapshotError, match="format"):
            Seda.load(bad)

    def test_missing_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.snapshot"
        bad.write_text('{"record": "collection", "payload": {}}\n')
        with pytest.raises(SnapshotError, match="header"):
            read_snapshot(bad)

    def test_truncated_snapshot_rejected(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        lines = path.read_text().splitlines()
        bad = tmp_path / "bad.snapshot"
        bad.write_text("\n".join(lines[:3]) + "\n")
        with pytest.raises(SnapshotError, match="missing"):
            Seda.load(bad)

    def test_midline_truncation_rejected(self, seda, tmp_path):
        # A torn copy/download can cut a record mid-line, not at a
        # line boundary; that must also surface as a SnapshotError.
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        bad = tmp_path / "bad.snapshot"
        bad.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(SnapshotError, match="torn record"):
            Seda.load(bad)
        with pytest.raises(SnapshotError, match="torn record"):
            snapshot_info(bad)

    def test_record_without_payload_rejected(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        lines = path.read_text().splitlines()
        bad = tmp_path / "bad.snapshot"
        bad.write_text(
            "\n".join(lines) + '\n{"record": "registry"}\n'
        )
        with pytest.raises(SnapshotError, match="no payload"):
            Seda.load(bad)

    def test_unknown_record_rejected(self, seda, tmp_path):
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        bad = tmp_path / "bad.snapshot"
        bad.write_text(
            path.read_text()
            + '{"record": "mystery", "payload": {}}\n'
        )
        with pytest.raises(SnapshotError, match="unknown record"):
            Seda.load(bad)

    def test_empty_file_rejected(self, tmp_path):
        bad = tmp_path / "empty.snapshot"
        bad.write_text("")
        with pytest.raises(SnapshotError, match="empty"):
            read_snapshot(bad)


class TestIncrementalAddDocuments:
    DOCS_A = [
        ("usa", """<country>United States
            <economy><import_partners>
              <item><trade_country>China</trade_country>
                    <percentage>15</percentage></item>
            </import_partners></economy></country>"""),
        ("mexico", """<country>Mexico
            <economy><import_partners>
              <item><trade_country>United States</trade_country>
                    <percentage>70.6</percentage></item>
            </import_partners></economy></country>"""),
    ]
    DOCS_B = [
        ("canada", """<country>Canada
            <economy><import_partners>
              <item><trade_country>United States</trade_country>
                    <percentage>54</percentage></item>
            </import_partners></economy></country>"""),
    ]
    SPECS = (
        ValueLinkSpec(
            "/country",
            "/country/economy/import_partners/item/trade_country",
            label="trade partner",
        ),
    )

    def _full(self):
        return Seda.from_documents(
            self.DOCS_A + self.DOCS_B, value_links=self.SPECS
        )

    def _incremental(self):
        seda = Seda.from_documents(self.DOCS_A, value_links=self.SPECS)
        seda.add_documents(self.DOCS_B)
        return seda

    def test_matches_full_rebuild(self):
        full, incremental = self._full(), self._incremental()
        query = [("trade_country", '"United States"'), ("percentage", "*")]
        mine = [
            (r.node_ids, r.score) for r in full.search(query).results
        ]
        theirs = [
            (r.node_ids, r.score) for r in incremental.search(query).results
        ]
        assert mine == theirs
        assert len(full.graph.edges) == len(incremental.graph.edges)
        assert full.collection.paths() == incremental.collection.paths()

    def test_no_duplicate_edges(self):
        incremental = self._incremental()
        assert len(set(incremental.graph.edges)) == (
            len(incremental.graph.edges)
        )

    def test_search_finds_new_document(self):
        seda = Seda.from_documents(self.DOCS_A, value_links=self.SPECS)
        assert not seda.search([("*", "canada")]).results
        seda.add_documents(self.DOCS_B)
        results = seda.search([("*", "canada")]).results
        assert results
        node = seda.collection.node(results[0].node_ids[0])
        assert node.doc_id == 2

    def test_dataguides_extended(self):
        seda = Seda.from_documents(self.DOCS_A, value_links=self.SPECS)
        before = len(seda.dataguides)
        seda.add_documents([("weird", "<thing><part>bolt</part></thing>")])
        assert len(seda.dataguides) == before + 1
        assert seda.dataguides.guide_for_document(2) is not None

    def test_add_documents_after_load(self, tmp_path):
        seda = Seda.from_documents(self.DOCS_A, value_links=self.SPECS)
        path = tmp_path / "sys.snapshot"
        seda.save(path)
        loaded = Seda.load(path)
        loaded.add_documents(self.DOCS_B)
        full = self._full()
        query = [("trade_country", '"United States"'), ("percentage", "*")]
        assert [
            (r.node_ids, r.score) for r in loaded.search(query).results
        ] == [
            (r.node_ids, r.score) for r in full.search(query).results
        ]
        assert len(loaded.graph.edges) == len(full.graph.edges)

    def test_reachability_cache_invalidated(self):
        seda = Seda.from_documents(self.DOCS_A, value_links=self.SPECS)
        query = [("trade_country", '"United States"'), ("percentage", "*")]
        seda.search(query)
        cached = seda.topk._doc_reach
        assert cached is not None
        seda.search(query)
        assert seda.topk._doc_reach is cached  # reused between searches
        seda.add_documents(self.DOCS_B)
        seda.search(query)
        assert seda.topk._doc_reach is not cached  # invalidated by new edges
