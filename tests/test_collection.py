"""Document collections, data nodes, and path statistics."""

import pytest

from repro.model.collection import DocumentCollection
from repro.model.dewey import DeweyID
from repro.model.node import NodeKind


class TestDocumentConstruction:
    def test_nodes_in_document_order(self, figure2_collection):
        document = figure2_collection.document(0)
        deweys = [node.dewey for node in document.nodes]
        assert deweys == sorted(deweys)

    def test_root_is_first(self, figure2_collection):
        document = figure2_collection.document(0)
        assert document.root.tag == "country"
        assert document.root.dewey == DeweyID.root()

    def test_node_paths(self, figure2_collection):
        document = figure2_collection.document(0)
        assert "/country/economy/import_partners/item/percentage" in (
            document.paths()
        )

    def test_attributes_become_nodes(self):
        collection = DocumentCollection()
        collection.add_document('<a x="1"><b y="2">t</b></a>')
        paths = collection.paths()
        assert "/a/@x" in paths
        assert "/a/b/@y" in paths

    def test_attribute_kind_and_value(self):
        collection = DocumentCollection()
        document = collection.add_document('<a x="1"/>')
        attribute = document.nodes[1]
        assert attribute.kind is NodeKind.ATTRIBUTE
        assert attribute.value == "1"

    def test_node_at_dewey(self, figure2_collection):
        document = figure2_collection.document(0)
        node = document.node_at(DeweyID.parse("1.2"))
        assert node is not None
        assert node.parent_id == document.root.node_id

    def test_node_at_missing_dewey(self, figure2_collection):
        document = figure2_collection.document(0)
        assert document.node_at(DeweyID.parse("1.9.9")) is None


class TestGlobalAddressing:
    def test_node_ids_unique_across_documents(self, figure2_collection):
        seen = set()
        for node in figure2_collection.iter_nodes():
            assert node.node_id not in seen
            seen.add(node.node_id)

    def test_node_ids_follow_document_order(self, figure2_collection):
        """Global ids must increase in (doc, document-order): the index
        and twig layers rely on id order == Dewey order."""
        previous = None
        for node in figure2_collection.iter_nodes():
            key = (node.doc_id, node.dewey)
            if previous is not None:
                assert previous < key
            previous = key

    def test_node_lookup_roundtrip(self, figure2_collection):
        for node in figure2_collection.iter_nodes():
            assert figure2_collection.node(node.node_id) is node

    def test_unknown_node_raises(self, figure2_collection):
        with pytest.raises(KeyError):
            figure2_collection.node(10**9)

    def test_node_by_ref(self, figure2_collection):
        node = figure2_collection.document(1).nodes[3]
        assert figure2_collection.node_by_ref(1, node.dewey) is node

    def test_node_by_ref_bad_doc(self, figure2_collection):
        assert figure2_collection.node_by_ref(99, DeweyID.root()) is None


class TestContent:
    def test_leaf_content_is_direct_text(self, figure2_collection):
        document = figure2_collection.document(0)
        year = next(n for n in document.nodes if n.tag == "year")
        assert figure2_collection.content(year.node_id) == "2006"

    def test_root_content_concatenates(self, figure2_collection):
        document = figure2_collection.document(2)
        content = figure2_collection.content(document.root.node_id)
        assert "Mexico" in content
        assert "70.6%" in content
        assert "United States" in content

    def test_content_cached(self, figure2_collection):
        document = figure2_collection.document(0)
        root_id = document.root.node_id
        first = figure2_collection.content(root_id)
        assert figure2_collection.content(root_id) is first

    def test_value_is_own_text_only(self, figure2_collection):
        document = figure2_collection.document(0)
        assert document.root.value == "United States"


class TestPathStatistics:
    def test_distinct_path_count(self, figure2_collection):
        assert figure2_collection.path_count() == len(
            set(figure2_collection.paths())
        )

    def test_occurrences_count_nodes(self, figure2_collection):
        path = "/country/economy/import_partners/item"
        # usa-2006 has 2 items, usa-2002 has 1, mexico-2003 has 2.
        assert figure2_collection.path_occurrences(path) == 5

    def test_document_frequency(self, figure2_collection):
        path = "/country/economy/export_partners"
        # Only usa-2006 and mexico-2003 have export partners.
        assert figure2_collection.path_document_frequency(path) == 2

    def test_unseen_path_zero(self, figure2_collection):
        assert figure2_collection.path_occurrences("/nope") == 0
        assert figure2_collection.path_document_frequency("/nope") == 0

    def test_schema_evolution_paths_coexist(self, figure2_collection):
        paths = set(figure2_collection.paths())
        assert "/country/economy/GDP" in paths        # 2002-style
        assert "/country/economy/GDP_ppp" in paths    # 2006-style


class TestInputValidation:
    def test_bad_source_type(self):
        with pytest.raises(TypeError):
            DocumentCollection().add_document(42)

    def test_auto_names(self):
        collection = DocumentCollection()
        collection.add_document("<a/>")
        assert collection.document(0).name == "doc-0"
