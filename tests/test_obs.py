"""The observability suite: fingerprints, histograms, the registry,
EXPLAIN, and their integration with both serving facades."""

import json

import pytest

from repro.obs import (
    LatencyHistogram,
    StatsRegistry,
    explain,
    query_fingerprint,
    term_fingerprint,
)
from repro.obs.registry import FingerprintStats
from repro.query.term import Query
from repro.search.topk import TopKSearcher
from repro.service.stats import QueryStats, ShardedQueryStats
from repro.system import Seda

DOCS = [
    ("a.xml", "<country><name>France</name><gdp>2000</gdp></country>"),
    ("b.xml", "<country><name>Spain</name><gdp>1400</gdp></country>"),
    ("c.xml", "<country><name>Chile</name><gdp>300</gdp></country>"),
    ("d.xml", "<country><name>Japan</name><gdp>5000</gdp></country>"),
]


@pytest.fixture(scope="module")
def seda():
    return Seda.from_documents(DOCS)


def _stats(latency=0.0, cache_hit=False, **kwargs):
    defaults = dict(sorted_accesses=0, tuples_scored=0, pruned=0,
                    early_stop=False)
    defaults.update(kwargs)
    return QueryStats(("key",), 10, latency, cache_hit=cache_hit, **defaults)


class TestFingerprint:
    def test_collapses_term_order(self):
        a = query_fingerprint(Query.parse([("*", "x"), ("gdp", "*")]), 5)
        b = query_fingerprint(Query.parse([("gdp", "*"), ("*", "x")]), 5)
        assert a == b

    def test_collapses_case_and_whitespace(self):
        a = query_fingerprint(Query.parse([("*", "  France  ")]), 5)
        b = query_fingerprint(Query.parse([("*", "france")]), 5)
        assert a == b

    def test_k_distinguishes(self):
        query = Query.parse([("*", "x")])
        assert query_fingerprint(query, 5) != query_fingerprint(query, 10)

    def test_boolean_operands_sorted(self):
        a = term_fingerprint(Query.parse([("*", "b AND a")]).terms[0])
        b = term_fingerprint(Query.parse([("*", "a AND b")]).terms[0])
        assert a == b

    def test_reserved_words_render_reparsable(self):
        term = Query.parse([("*", '"and"')]).terms[0]
        rendered = term_fingerprint(term)
        context, _, search = rendered.partition(":")
        reparsed = Query.parse([(context, search)]).terms[0]
        assert term_fingerprint(reparsed) == rendered

    def test_idempotent_roundtrip(self):
        for search in ("x", "a AND b", "a OR b", "NOT a", '"two words"',
                       "*", "(a OR b) AND c"):
            term = Query.parse([("*", search)]).terms[0]
            rendered = term_fingerprint(term)
            context, _, body = rendered.partition(":")
            again = term_fingerprint(
                Query.parse([(context, body)]).terms[0]
            )
            assert again == rendered, search


class TestHistogram:
    def test_bucket_bounds_contain_observation(self):
        for seconds in (0.0, 1e-7, 1e-6, 3e-6, 0.1, 5.0, 1e9):
            index = LatencyHistogram.bucket_index(seconds)
            lower, upper = LatencyHistogram.bucket_bounds(index)
            assert lower <= seconds or seconds > upper  # clamped tails
            if seconds <= upper:
                assert lower < seconds or seconds == 0.0 or index == 0

    def test_quantiles_empty(self):
        histogram = LatencyHistogram()
        assert histogram.p50 == 0.0
        assert histogram.bracket(0.5) is None

    def test_single_observation(self):
        histogram = LatencyHistogram()
        histogram.observe(0.003)
        lower, upper = histogram.bracket(0.5)
        assert lower < 0.003 <= upper
        assert histogram.p50 == upper

    def test_merge_adds_counts(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.001)
        b.observe(0.1)
        a.merge(b)
        assert a.total == 2

    def test_dict_roundtrip_trims_trailing_zeros(self):
        histogram = LatencyHistogram()
        histogram.observe(1e-6)
        payload = histogram.to_dict()
        assert payload["counts"][-1] != 0
        restored = LatencyHistogram.from_dict(payload)
        assert restored.counts == histogram.counts
        assert restored.total == histogram.total

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            LatencyHistogram(counts=[-1])
        with pytest.raises(ValueError):
            LatencyHistogram(counts=[0] * 41)


class TestRegistry:
    def test_counts_and_rates(self):
        registry = StatsRegistry(slow_threshold=10.0)
        registry.record("fp", _stats(sorted_accesses=4, tuples_scored=2,
                                     pruned=2, early_stop=True))
        registry.record("fp", _stats(cache_hit=True))
        entry = registry.fingerprint_stats()["fp"]
        assert entry.count == 2
        assert entry.cache_hit_rate == 0.5
        assert entry.early_stop_rate == 0.5
        assert entry.prune_rate == 0.5
        assert registry.total_queries == 2

    def test_slow_log_threshold_and_bound(self):
        registry = StatsRegistry(slow_threshold=0.05, slow_log_size=2)
        registry.record("fast", _stats(latency=0.01))
        for index in range(3):
            registry.record(f"slow-{index}", _stats(latency=0.1))
        slow = registry.slow_queries()
        assert [entry["fingerprint"] for entry in slow] == [
            "slow-1", "slow-2"
        ]

    def test_per_shard_skew(self):
        registry = StatsRegistry()
        stats = ShardedQueryStats(
            ("key",), 10, 0.0, cache_hit=False,
            sorted_accesses=5, tuples_scored=3, pruned=1, early_stop=True,
            per_shard=[
                {"shard": 0, "sorted_accesses": 5, "tuples_scored": 3,
                 "pruned": 1, "early_stop": True},
                {"shard": 1, "sorted_accesses": 0, "tuples_scored": 0,
                 "pruned": 0, "early_stop": False},
            ],
        )
        registry.record("fp", stats)
        per_shard = registry.fingerprint_stats()["fp"].per_shard
        assert per_shard["0"]["sorted_accesses"] == 5
        assert per_shard["0"]["early_stops"] == 1
        assert per_shard["1"]["tuples_scored"] == 0

    def test_dict_roundtrip(self):
        registry = StatsRegistry(slow_threshold=0.0, slow_log_size=4)
        registry.record("fp", _stats(latency=0.2, sorted_accesses=7))
        registry.record("other", _stats(cache_hit=True))
        restored = StatsRegistry.from_dict(registry.to_dict())
        assert restored.to_dict() == registry.to_dict()
        assert restored.total_queries == 2
        assert restored.slow_log_size == 4

    def test_clear(self):
        registry = StatsRegistry(slow_threshold=0.0)
        registry.record("fp", _stats(latency=1.0))
        registry.clear()
        assert registry.total_queries == 0
        assert registry.fingerprint_stats() == {}
        assert registry.slow_queries() == []

    def test_validates_configuration(self):
        with pytest.raises(ValueError):
            StatsRegistry(slow_log_size=0)
        with pytest.raises(ValueError):
            StatsRegistry(slow_threshold=-1)

    def test_render_table_smoke(self):
        registry = StatsRegistry(slow_threshold=0.0)
        registry.record("fp", _stats(latency=0.2))
        text = registry.render_table()
        assert "query statistics: 1 served" in text
        assert "fp" in text
        assert "slow queries" in text


class TestServiceIntegration:
    def test_registry_counts_equal_served_queries(self, seda):
        registry = seda.enable_observability(slow_threshold=10.0)
        registry.clear()
        service = seda.query_service(workers=2)
        service.cache.invalidate()
        query = [("*", "france"), ("gdp", "*")]
        service.execute(query, k=5)          # computed
        service.execute(query, k=5)          # cache hit
        service.execute_batch(                # 1 computed, 2 duplicates,
            [query, query, [("*", "spain")]], k=5
        )                                     # 1 cache hit for `query`
        assert registry.total_queries == 5
        stats = registry.fingerprint_stats()
        fingerprint = query_fingerprint(Query.parse(query), 5)
        assert stats[fingerprint].count == 4
        assert stats[fingerprint].cache_hits == 3
        assert sum(entry.count for entry in stats.values()) == 5

    def test_results_identical_with_observability_on_and_off(self):
        query = [("*", "france"), ("gdp", "*")]
        plain = Seda.from_documents(DOCS)
        observed = Seda.from_documents(DOCS)
        observed.enable_observability()
        baseline, _ = plain.query_service().execute(query, k=5)
        recorded, _ = observed.query_service().execute(query, k=5)
        assert [(r.node_ids, r.score) for r in baseline] == [
            (r.node_ids, r.score) for r in recorded
        ]

    def test_enable_is_idempotent(self, seda):
        first = seda.enable_observability()
        second = seda.enable_observability(slow_threshold=9.9)
        assert first is second

    def test_sharded_service_records_per_shard_skew(self):
        from repro.shard import ShardedSeda

        sharded = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        registry = sharded.enable_observability(slow_threshold=10.0)
        query = [("*", "france"), ("gdp", "*")]
        sharded.search_many([query, query], k=5)
        assert registry.total_queries == 2
        entry = registry.fingerprint_stats()[
            query_fingerprint(Query.parse(query), 5)
        ]
        assert entry.count == 2
        assert set(entry.per_shard) == {"0", "1"}


class TestExplain:
    def test_counters_match_searcher_stats(self, seda):
        searcher = seda.topk
        for pairs in ([("*", "france")],
                      [("*", "france"), ("gdp", "*")],
                      [("name", "*"), ("gdp", "*"), ("*", "chile")]):
            report = explain(searcher, pairs, k=5)
            raw = searcher.stats
            assert report.sorted_accesses == raw["sorted_accesses"]
            assert report.tuples_scored == raw["tuples_scored"]
            assert report.pruned == raw["pruned"]
            assert report.early_stop == raw["early_stop"]
            assert report.path == raw["path"]
            assert report.stop_reason == raw["stop_reason"]
            assert [entry["sorted_accesses"] for entry in report.per_term] \
                == raw["per_term_accesses"]
            assert [entry["candidates"] for entry in report.per_term] \
                == raw["candidates"]

    def test_paths_by_arity(self, seda):
        assert explain(seda.topk, [("*", "france")]).path == "single"
        assert explain(
            seda.topk, [("*", "france"), ("gdp", "*")]
        ).path == "pair"
        assert explain(
            seda.topk, [("name", "*"), ("gdp", "*"), ("*", "chile")]
        ).path == "triple"

    def test_general_path_when_repeats_allowed(self, seda):
        searcher = TopKSearcher(seda.matcher, seda.scoring,
                                allow_repeats=True, streams=seda.streams)
        report = explain(searcher, [("*", "france"), ("gdp", "*")], k=5)
        assert report.path == "general"

    def test_stop_reason_empty_stream(self, seda):
        report = explain(seda.topk, [("*", "zzz-missing"), ("gdp", "*")])
        assert report.stop_reason == "empty-stream"
        assert report.results == []

    def test_stop_reason_exhaustion(self, seda):
        report = explain(seda.topk, [("name", "*"), ("gdp", "*")], k=50)
        assert report.stop_reason == "exhaustion"
        assert report.early_stop is False

    def test_stop_reason_corner_bound(self):
        # A repeat-allowed search can realize the compactness cap (both
        # slots on one node), so once the hub document is consumed the
        # corner bound certifies the winner against the low-score tail.
        filler = " ".join(f"pad{j}" for j in range(100))
        docs = [("hub.xml", "<r><t>alpha beta alpha beta alpha</t></r>")]
        docs += [
            (f"w{i}.xml", f"<r><t>alpha beta {filler}</t></r>")
            for i in range(10)
        ]
        system = Seda.from_documents(docs)
        searcher = TopKSearcher(system.matcher, system.scoring,
                                allow_repeats=True, streams=system.streams)
        report = explain(searcher, [("*", "alpha"), ("*", "beta")], k=1)
        assert report.stop_reason == "corner-bound"
        assert report.early_stop is True
        assert report.sorted_accesses < 22  # streams were not drained

    def test_single_term_k_satisfied(self, seda):
        report = explain(seda.topk, [("name", "*")], k=1)
        assert report.stop_reason == "k-satisfied"
        assert report.early_stop is True

    def test_report_render_and_json(self, seda):
        report = explain(seda.topk, [("*", "france"), ("gdp", "*")], k=5)
        text = report.render()
        assert text.startswith("EXPLAIN ")
        assert "combine path: pair" in text
        assert "stopped:" in text
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["k"] == 5
        assert len(payload["per_term"]) == 2

    def test_explain_results_match_plain_search(self, seda):
        pairs = [("*", "france"), ("gdp", "*")]
        report = explain(seda.topk, pairs, k=5)
        plain = seda.topk.search(Query.parse(pairs), k=5)
        assert [(r.node_ids, r.score) for r in report.results] == [
            (r.node_ids, r.score) for r in plain
        ]


class TestPersistence:
    def test_snapshot_roundtrip_keeps_registry(self, tmp_path):
        seda = Seda.from_documents(DOCS)
        registry = seda.enable_observability(slow_threshold=0.0)
        seda.query_service().execute([("*", "france")], k=5)
        path = tmp_path / "obs.snapshot"
        seda.save(str(path))
        loaded = Seda.load(str(path))
        assert loaded.obs is not None
        assert loaded.obs.to_dict() == registry.to_dict()
        # the restored registry keeps recording through the service
        loaded.query_service().execute([("*", "france")], k=5)
        assert loaded.obs.total_queries == registry.total_queries + 1

    def test_snapshot_without_observability_has_no_obs(self, tmp_path):
        seda = Seda.from_documents(DOCS)
        path = tmp_path / "plain.snapshot"
        seda.save(str(path))
        assert Seda.load(str(path)).obs is None

    def test_sharded_roundtrip_keeps_registry(self, tmp_path):
        from repro.shard import ShardedSeda

        sharded = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        registry = sharded.enable_observability(slow_threshold=0.0)
        sharded.search_many([[("*", "france")]], k=5)
        directory = tmp_path / "shards"
        sharded.save(str(directory))
        assert (directory / "obs.json").exists()
        loaded = ShardedSeda.load(str(directory))
        assert loaded.obs is not None
        assert loaded.obs.to_dict() == registry.to_dict()

    def test_sharded_resave_without_observability_clears(self, tmp_path):
        from repro.shard import ShardedSeda

        sharded = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        sharded.enable_observability()
        directory = tmp_path / "shards"
        sharded.save(str(directory))
        reloaded = ShardedSeda.load(str(directory))
        reloaded.obs = None
        reloaded.save(str(directory))
        assert not (directory / "obs.json").exists()
