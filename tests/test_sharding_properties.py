"""Property test: sharded top-k == unsharded top-k, always.

Hypothesis generates small random collections in the document shape
the cross-implementation suite in ``test_properties_random.py`` uses
(a tiny tag alphabet and a tiny vocabulary, so score ties are common
and the deterministic tie-break is genuinely exercised) **plus
skewed-frequency texts** -- nodes whose term repeats dozens of times.
The skew matters: near-uniform scores keep every stream frontier close
to its maximum, which structurally hides early-termination bugs (a
tuple pairing a seen high scorer with an unseen partner is exactly
what the frontier-only TA threshold failed to bound).  The suite then
asserts the headline sharding contract for random shard counts,
partitioning policies, and k -- including k larger than the corpus can
satisfy.

Equality here is exact: node ids (global), content scores,
compactness, and the combined score must be the identical floats the
unsharded system produces.  The corpora carry no cross-document links
(no IDREF/XLink attributes, no value-link specs), which is precisely
the regime the merge-equivalence contract covers -- see
``docs/ARCHITECTURE.md``, "Sharding".
"""

import random

from hypothesis import given, settings, strategies as st

from repro.query.term import Query
from repro.shard import ShardedSeda
from repro.system import Seda
from repro.xmlio.dom import Element
from repro.xmlio.writer import serialize

_TAGS = ("a", "b", "c", "d")
_WORDS = (
    "red", "blue", "green", "red blue", "blue green red",
    # Skewed frequencies: high-tf nodes push stream maxima far above
    # the frontiers, the regime where an unsound stopping rule shows.
    "red " * 20, "blue " * 12, "red red red red red red red red",
    "blue pad pad pad pad", "green " * 30,
)


@st.composite
def _random_element(draw, depth=0):
    element = Element(draw(st.sampled_from(_TAGS)))
    if draw(st.booleans()):
        element.append(draw(st.sampled_from(_WORDS)))
    if depth < 3:
        for child in draw(
            st.lists(
                st.deferred(lambda: _random_element(depth + 1)),  # noqa: B023
                max_size=3,
            )
        ):
            element.append(child)
    return element


@st.composite
def _random_corpus(draw):
    roots = draw(st.lists(_random_element(), min_size=1, max_size=6))
    return [
        (f"doc-{index}", serialize(root))
        for index, root in enumerate(roots)
    ]


_QUERIES = (
    [("*", "red"), ("*", "blue")],
    [("*", "blue"), ("*", "green"), ("*", "red")],
    [("a", "*"), ("*", "red")],
    [("*", "blue")],
)


def _canon(results):
    return [
        (r.node_ids, r.content_scores, r.compactness, r.score)
        for r in results
    ]


@given(
    corpus=_random_corpus(),
    shards=st.integers(min_value=1, max_value=5),
    k=st.one_of(st.integers(min_value=1, max_value=40), st.none()),
    partitioner=st.sampled_from(["hash", "round-robin"]),
    query=st.sampled_from(_QUERIES),
)
@settings(max_examples=60, deadline=None)
def test_sharded_topk_equals_unsharded(corpus, shards, k, partitioner,
                                       query):
    unsharded = Seda.from_documents(corpus)
    sharded = ShardedSeda.from_documents(
        corpus, shards=shards, parallel=False, partitioner=partitioner
    )
    expected = unsharded.topk.search(Query.parse(query), k=k)
    merged = sharded.search(query, k=k)
    assert _canon(merged) == _canon(expected)


def test_skewed_frequency_fuzz_matches_unsharded_and_naive():
    """Deterministic fuzz over frontier-collapsing corpora.

    This is the regression net for the early-termination bug class:
    documents mix single-occurrence words with 8-50x repeated runs, so
    stream maxima tower over frontiers and shard streams collapse at
    different rates than the global ones.  Sharded must equal
    unsharded on every seed -- and unsharded must equal the exhaustive
    oracle, pinning the corner-bound stop itself.
    """
    from repro.search.naive import NaiveSearcher

    queries = [
        [("*", "red"), ("*", "blue")],
        [("*", "red"), ("*", "blue"), ("*", "green")],
    ]
    for seed in range(25):
        rng = random.Random(seed)
        docs = []
        for index in range(rng.randint(4, 12)):
            parts = []
            for _ in range(rng.randint(1, 4)):
                word = rng.choice(["red", "blue", "green"])
                reps = rng.choice([1, 1, 2, 3, 8, 20, 50])
                filler = "pad " * rng.randint(0, 6)
                tag = rng.choice(_TAGS)
                parts.append(
                    f"<{tag}>{(word + ' ') * reps}{filler}</{tag}>"
                )
            docs.append((f"d{index}", "<r>" + "".join(parts) + "</r>"))
        unsharded = Seda.from_documents(docs)
        oracle = NaiveSearcher(unsharded.matcher, unsharded.scoring)
        systems = [
            ShardedSeda.from_documents(
                docs, shards=shards, parallel=False,
                partitioner="round-robin",
            )
            for shards in (2, 3)
        ]
        for pairs in queries:
            query = Query.parse(pairs)
            for k in (1, 2, 5):
                expected = _canon(unsharded.topk.search(query, k=k))
                assert expected == _canon(oracle.search(query, k=k)), (
                    f"TA diverged from the oracle on seed {seed}"
                )
                for system in systems:
                    assert _canon(system.search(pairs, k=k)) == expected, (
                        f"sharded diverged on seed {seed}"
                    )


@given(
    corpus=_random_corpus(),
    shards=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_ingestion_preserves_equivalence(corpus, shards):
    """Adding documents keeps the corpus-wide statistics exact: the
    mutated sharded system still answers like the mutated unsharded
    one (idf shifts with every added node, so stale per-shard caches
    would surface here immediately)."""
    seed, extra = corpus[: len(corpus) // 2 + 1], corpus[len(corpus) // 2 + 1:]
    unsharded = Seda.from_documents(seed)
    sharded = ShardedSeda.from_documents(seed, shards=shards, parallel=False)
    # Warm caches on the pre-mutation corpus so stale entries would
    # be observable if invalidation were wrong.
    sharded.search(_QUERIES[0], k=5)
    unsharded.topk.search(Query.parse(_QUERIES[0]), k=5)
    if extra:
        unsharded.add_documents(extra)
        sharded.add_documents(extra)
    for query in _QUERIES:
        expected = unsharded.topk.search(Query.parse(query), k=10)
        assert _canon(sharded.search(query, k=10)) == _canon(expected)
