"""Additional OLAP invariants (property-based) and star-schema checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cube.star import FactTable
from repro.olap.cube import Cube

_members = st.sampled_from(["a", "b", "c", "d"])
_rows = st.lists(
    st.tuples(_members, _members, st.floats(
        min_value=-1000, max_value=1000, allow_nan=False
    )),
    min_size=1,
    max_size=30,
)


def _cube(rows):
    return Cube.from_fact_table(
        FactTable("f", ["x", "y"], ["f"], rows)
    )


class TestCubeInvariants:
    @given(_rows)
    @settings(max_examples=60, deadline=None)
    def test_group_sums_add_to_total(self, rows):
        cube = _cube(rows)
        total = cube.aggregate("sum")
        grouped = cube.aggregate("sum", group_by=["x"])
        assert sum(grouped.values()) == pytest.approx(total)

    @given(_rows)
    @settings(max_examples=60, deadline=None)
    def test_rollup_preserves_sum(self, rows):
        cube = _cube(rows)
        assert cube.rollup(["x"]).aggregate("sum") == pytest.approx(
            cube.aggregate("sum")
        )

    @given(_rows)
    @settings(max_examples=60, deadline=None)
    def test_slices_partition_the_cube(self, rows):
        cube = _cube(rows)
        total = cube.aggregate("count")
        slice_total = sum(
            cube.slice("x", member).aggregate("count")
            for member in cube.members("x")
        )
        assert slice_total == total

    @given(_rows)
    @settings(max_examples=60, deadline=None)
    def test_dice_with_all_members_is_identity(self, rows):
        cube = _cube(rows)
        diced = cube.dice("y", cube.members("y"))
        assert diced.aggregate("sum") == pytest.approx(cube.aggregate("sum"))
        assert diced.cell_count() == cube.cell_count()

    @given(_rows)
    @settings(max_examples=60, deadline=None)
    def test_min_max_bound_avg(self, rows):
        cube = _cube(rows)
        low = cube.aggregate("min")
        high = cube.aggregate("max")
        mean = cube.aggregate("avg")
        assert low - 1e-9 <= mean <= high + 1e-9

    @given(_rows)
    @settings(max_examples=40, deadline=None)
    def test_pivot_cells_match_grouped_aggregate(self, rows):
        cube = _cube(rows)
        pivot = cube.pivot("x", "y")
        grouped = cube.aggregate("sum", group_by=["x", "y"])
        for (x, y), value in grouped.items():
            assert pivot[x][y] == pytest.approx(value)


class TestFactTableInvariants:
    @given(_rows)
    @settings(max_examples=40, deadline=None)
    def test_merge_with_self_preserves_keys(self, rows):
        table = FactTable("f", ["x", "y"], ["f"], rows)
        merged = table.merge_with(
            FactTable("g", ["x", "y"], ["g"], rows)
        )
        assert set(merged.key_of(row) for row in merged.rows) == set(
            table.key_of(row) for row in table.rows
        )

    @given(_rows)
    @settings(max_examples=40, deadline=None)
    def test_primary_key_detection_matches_definition(self, rows):
        table = FactTable("f", ["x", "y"], ["f"], rows)
        keys = [table.key_of(row) for row in table.rows]
        assert table.has_primary_key() == (len(keys) == len(set(keys)))
