"""Dewey ID ordering, ancestry, and distance (with hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.model.dewey import DeweyID

_components = st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                       max_size=6).map(tuple)


class TestConstruction:
    def test_root(self):
        assert DeweyID.root().components == (1,)

    def test_parse_roundtrip(self):
        assert DeweyID.parse("1.2.3") == DeweyID((1, 2, 3))
        assert str(DeweyID((1, 2, 3))) == "1.2.3"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DeweyID(())

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            DeweyID((1, 0))

    def test_parse_garbage_rejected(self):
        with pytest.raises(ValueError):
            DeweyID.parse("1.x.3")


class TestRelationships:
    def test_child_and_parent(self):
        node = DeweyID.root().child(2).child(1)
        assert node.components == (1, 2, 1)
        assert node.parent().components == (1, 2)

    def test_root_parent_is_none(self):
        assert DeweyID.root().parent() is None

    def test_ancestor_is_proper(self):
        a = DeweyID((1, 2))
        assert a.is_ancestor_of(DeweyID((1, 2, 3)))
        assert not a.is_ancestor_of(a)
        assert not a.is_ancestor_of(DeweyID((1, 3)))

    def test_document_order_ancestor_first(self):
        assert DeweyID((1, 2)) < DeweyID((1, 2, 1))

    def test_document_order_siblings(self):
        assert DeweyID((1, 1)) < DeweyID((1, 2))

    def test_common_ancestor(self):
        a = DeweyID((1, 2, 2, 1))
        b = DeweyID((1, 2, 3))
        assert a.common_ancestor(b) == DeweyID((1, 2))

    def test_common_ancestor_of_ancestor_pair(self):
        a = DeweyID((1, 2))
        b = DeweyID((1, 2, 5))
        assert a.common_ancestor(b) == a

    def test_tree_distance_siblings(self):
        assert DeweyID((1, 1)).tree_distance(DeweyID((1, 2))) == 2

    def test_tree_distance_parent_child(self):
        assert DeweyID((1, 2)).tree_distance(DeweyID((1,))) == 1

    def test_tree_distance_self(self):
        assert DeweyID((1, 2)).tree_distance(DeweyID((1, 2))) == 0


class TestProperties:
    @given(_components, _components)
    def test_comparison_matches_tuple_order(self, a, b):
        assert (DeweyID((1,) + a) < DeweyID((1,) + b)) == (
            ((1,) + a) < ((1,) + b)
        )

    @given(_components)
    def test_parent_child_inverse(self, components):
        dewey = DeweyID((1,) + components)
        assert dewey.parent().child(components[-1]) == dewey

    @given(_components, _components)
    def test_distance_symmetric(self, a, b):
        x, y = DeweyID((1,) + a), DeweyID((1,) + b)
        assert x.tree_distance(y) == y.tree_distance(x)

    @given(_components, _components, _components)
    def test_distance_triangle_inequality(self, a, b, c):
        x, y, z = (DeweyID((1,) + t) for t in (a, b, c))
        assert x.tree_distance(z) <= x.tree_distance(y) + y.tree_distance(z)

    @given(_components, _components)
    def test_lca_is_common_ancestor(self, a, b):
        x, y = DeweyID((1,) + a), DeweyID((1,) + b)
        lca = x.common_ancestor(y)
        for node in (x, y):
            assert lca == node or lca.is_ancestor_of(node)

    @given(_components)
    def test_hash_consistency(self, components):
        assert hash(DeweyID((1,) + components)) == hash(
            DeweyID((1,) + components)
        )
