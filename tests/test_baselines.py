"""The LCA-family heuristics and the [22]-style failure scenarios."""

import pytest

from repro.baselines.compactness import CompactnessRanker
from repro.baselines.elca import elca
from repro.baselines.lca import KeywordMatcher, lca_dewey
from repro.baselines.mlca import mlca, mlca_pairs
from repro.baselines.slca import slca
from repro.index.builder import IndexBuilder
from repro.model.collection import DocumentCollection
from repro.model.dewey import DeweyID


def _setup(*documents):
    collection = DocumentCollection()
    for document in documents:
        collection.add_document(document)
    inverted, _paths = IndexBuilder(collection).build()
    return collection, inverted


class TestLcaDewey:
    def test_pairwise(self):
        assert lca_dewey([DeweyID((1, 2, 1)), DeweyID((1, 3))]) == DeweyID((1,))

    def test_single(self):
        assert lca_dewey([DeweyID((1, 2))]) == DeweyID((1, 2))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lca_dewey([])


class TestKeywordMatcher:
    def test_match_sets_grouped_by_doc(self):
        collection, inverted = _setup(
            "<a><x>apple</x><y>banana</y></a>",
            "<a><x>apple</x></a>",
        )
        matcher = KeywordMatcher(collection, inverted)
        sets = matcher.match_sets(["apple", "banana"])
        assert list(sets) == [0]  # doc 1 lacks banana

    def test_multi_token_keyword_rejected(self):
        collection, inverted = _setup("<a>x</a>")
        matcher = KeywordMatcher(collection, inverted)
        with pytest.raises(ValueError):
            matcher.match_sets(["two words"])


class TestSlca:
    def test_basic_smallest(self):
        collection, inverted = _setup(
            """<bib>
                 <book><title>xml</title><author>chen</author></book>
                 <book><title>db</title><author>smith</author></book>
               </bib>"""
        )
        answers = slca(collection, inverted, ["xml", "chen"])
        # The first book is the smallest subtree with both keywords.
        assert answers == [(0, DeweyID((1, 1)))]

    def test_root_excluded_when_smaller_exists(self):
        collection, inverted = _setup(
            """<bib>
                 <book><title>xml</title><author>chen</author></book>
                 <book><title>xml</title><author>chen</author></book>
               </bib>"""
        )
        answers = slca(collection, inverted, ["xml", "chen"])
        assert (0, DeweyID((1,))) not in answers
        assert len(answers) == 2

    def test_cross_subtree_falls_to_root(self):
        collection, inverted = _setup(
            """<bib>
                 <book><title>xml</title></book>
                 <book><author>chen</author></book>
               </bib>"""
        )
        answers = slca(collection, inverted, ["xml", "chen"])
        assert answers == [(0, DeweyID((1,)))]

    def test_single_keyword_returns_matches(self):
        collection, inverted = _setup("<a><b>x</b><c>x</c></a>")
        answers = slca(collection, inverted, ["x"])
        assert len(answers) == 2

    def test_multiple_documents(self):
        collection, inverted = _setup(
            "<a><b>x</b><c>y</c></a>",
            "<a><b>x</b></a>",
            "<a><b>x y</b></a>",
        )
        answers = slca(collection, inverted, ["x", "y"])
        docs = {doc for doc, _dewey in answers}
        assert docs == {0, 2}


class TestElca:
    def test_elca_includes_root_with_own_witness(self):
        """The classic ELCA vs SLCA example: the root has its own
        keyword witnesses besides the self-sufficient child."""
        collection, inverted = _setup(
            """<bib>
                 <book><title>xml</title><author>chen</author></book>
                 <title>xml</title>
                 <author>chen</author>
               </bib>"""
        )
        answers = elca(collection, inverted, ["xml", "chen"])
        deweys = {dewey for _doc, dewey in answers}
        assert DeweyID((1, 1)) in deweys  # the book
        assert DeweyID((1,)) in deweys    # the root, via its own children

    def test_elca_excludes_root_without_witness(self):
        collection, inverted = _setup(
            """<bib>
                 <book><title>xml</title><author>chen</author></book>
                 <note>other</note>
               </bib>"""
        )
        answers = elca(collection, inverted, ["xml", "chen"])
        assert answers == [(0, DeweyID((1, 1)))]

    def test_elca_superset_of_slca(self):
        collection, inverted = _setup(
            """<r>
                 <a><x>k1</x><y>k2</y></a>
                 <x>k1</x><y>k2</y>
               </r>""",
            "<r><x>k1</x><y>k2</y></r>",
        )
        slca_set = set(slca(collection, inverted, ["k1", "k2"]))
        elca_set = set(elca(collection, inverted, ["k1", "k2"]))
        assert slca_set <= elca_set


class TestMlca:
    def test_meaningful_pairs_prefer_closest(self):
        collection, inverted = _setup(
            """<dept>
                 <group>
                   <name>alpha</name><lead>chen</lead>
                 </group>
                 <group>
                   <name>beta</name><lead>smith</lead>
                 </group>
               </dept>"""
        )
        answers = mlca(collection, inverted, ["alpha", "chen"])
        assert len(answers) == 1
        _doc, lca, nodes = answers[0]
        assert lca == DeweyID((1, 1))

    def test_cross_group_pair_rejected(self):
        collection, inverted = _setup(
            """<dept>
                 <group><name>alpha</name><lead>chen</lead></group>
                 <group><name>beta</name><lead>smith</lead></group>
               </dept>"""
        )
        answers = mlca(collection, inverted, ["alpha", "smith"])
        # alpha's closest lead is chen, so (alpha, smith) is NOT
        # meaningful -- the classic false-negative of the heuristic.
        assert answers == []

    def test_mlca_pairs_symmetric_check(self):
        collection, inverted = _setup(
            "<r><a><x>k</x><y>v</y></a><y>v</y></r>"
        )
        matcher = KeywordMatcher(collection, inverted)
        sets = matcher.match_sets(["k", "v"])
        pairs = mlca_pairs(sets[0][0], sets[0][1])
        # x pairs only with its sibling y, not the top-level y.
        assert len(pairs) == 1
        assert pairs[0][1].dewey == DeweyID((1, 1, 2))


class TestHeuristicsFailureScenario:
    """The [22]-style scenario where tree heuristics drop answers that
    SEDA keeps (and lets the user disambiguate)."""

    DOCUMENT = """
    <country>
      <name>mexico</name>
      <import_partners>
        <item><partner>usa</partner><share>70</share></item>
        <item><partner>germany</partner><share>3</share></item>
      </import_partners>
      <export_partners>
        <item><partner>usa</partner><share>88</share></item>
      </export_partners>
    </country>
    """

    def test_mlca_misses_export_pair(self):
        collection, inverted = _setup(self.DOCUMENT)
        answers = mlca(collection, inverted, ["mexico", "usa"])
        # Both usa nodes tie on distance to the name node, so MLCA
        # keeps both here; but (germany, usa) style cross-pairs vanish:
        pairs = mlca(collection, inverted, ["germany", "usa"])
        # germany's nearest usa is the import sibling; the export usa
        # pair is dropped even though it is a real relationship.
        assert len(pairs) == 1

    def test_compactness_keeps_all_pairs_ranked(self):
        collection, inverted = _setup(self.DOCUMENT)
        ranker = CompactnessRanker(collection, inverted)
        ranked = ranker.rank_pairs("germany", "usa")
        assert len(ranked) == 2  # both usa contexts survive, ranked
        assert ranked[0][2] <= ranked[1][2]

    def test_slca_collapses_contexts(self):
        collection, inverted = _setup(self.DOCUMENT)
        answers = slca(collection, inverted, ["germany", "usa"])
        # SLCA returns subtree roots, losing which usa was meant.
        assert len(answers) == 1
