"""OLAP engine: cube operations, aggregates, hierarchies."""

import pytest

from repro.cube.star import FactTable, StarSchema
from repro.olap.aggregates import AGGREGATES, aggregate
from repro.olap.cube import Cube
from repro.olap.engine import OLAPEngine
from repro.olap.hierarchy import Hierarchy


@pytest.fixture
def trade_fact():
    return FactTable(
        "pct", ["country", "year", "partner"], ["pct"],
        [
            ("United States", "2004", "China", 12.5),
            ("United States", "2004", "Mexico", 10.7),
            ("United States", "2005", "China", 13.8),
            ("United States", "2005", "Mexico", 10.3),
            ("United States", "2006", "China", 15.0),
            ("United States", "2006", "Canada", 16.9),
            ("Mexico", "2003", "United States", 70.6),
        ],
    )


@pytest.fixture
def cube(trade_fact):
    return Cube.from_fact_table(trade_fact)


class TestAggregates:
    def test_all_aggregates_present(self):
        assert set(AGGREGATES) == {"sum", "count", "avg", "min", "max"}

    def test_sum_skips_none(self):
        assert aggregate("sum", [1.0, None, 2.0]) == 3.0

    def test_count_counts_numbers_only(self):
        assert aggregate("count", [1.0, None, "x", 2.0]) == 2

    def test_avg(self):
        assert aggregate("avg", [1.0, 3.0]) == 2.0

    def test_empty_aggregates(self):
        assert aggregate("sum", []) is None
        assert aggregate("avg", [None]) is None
        assert aggregate("count", []) == 0

    def test_min_max(self):
        assert aggregate("min", [3.0, 1.0]) == 1.0
        assert aggregate("max", [3.0, 1.0]) == 3.0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            aggregate("median", [1.0])


class TestCubeOps:
    def test_members(self, cube):
        assert cube.members("year") == ["2003", "2004", "2005", "2006"]

    def test_unknown_dimension(self, cube):
        with pytest.raises(KeyError):
            cube.members("nope")

    def test_slice_removes_dimension(self, cube):
        sliced = cube.slice("year", "2006")
        assert sliced.dimensions == ["country", "partner"]
        assert sliced.aggregate("sum") == pytest.approx(31.9)

    def test_dice_keeps_dimension(self, cube):
        diced = cube.dice("partner", ["China"])
        assert diced.dimensions == cube.dimensions
        assert diced.aggregate("count") == 3

    def test_rollup(self, cube):
        rolled = cube.rollup(["partner"])
        totals = rolled.aggregate("sum", group_by=["partner"])
        assert totals[("China",)] == pytest.approx(41.3)

    def test_rollup_to_nothing_is_grand_total(self, cube):
        assert cube.rollup([]).aggregate("sum") == pytest.approx(
            cube.aggregate("sum")
        )

    def test_group_by_aggregate(self, cube):
        by_year = cube.aggregate("avg", group_by=["year"])
        assert by_year[("2006",)] == pytest.approx(15.95)

    def test_pivot(self, cube):
        pivot = cube.pivot("year", "partner")
        assert pivot["2006"]["China"] == pytest.approx(15.0)
        assert "Canada" not in pivot["2005"]

    def test_operations_do_not_mutate(self, cube):
        before = cube.cell_count()
        cube.slice("year", "2006")
        cube.dice("partner", ["China"])
        cube.rollup(["year"])
        assert cube.cell_count() == before

    def test_drilldown_from(self, cube):
        finer = cube.drilldown_from(["year"])
        assert finer == ["country", "partner"]


class TestHierarchy:
    def test_rollup_along_hierarchy(self, cube):
        hierarchy = Hierarchy(
            "partner",
            [("continent", {"China": "Asia", "Mexico": "America",
                            "Canada": "America",
                            "United States": "America"})],
        )
        rolled = hierarchy.rollup_cube(cube, "continent")
        assert "partner:continent" in rolled.dimensions
        by_continent = rolled.aggregate("sum", group_by=["partner:continent"])
        assert by_continent[("Asia",)] == pytest.approx(41.3)

    def test_unmapped_goes_to_other(self, cube):
        hierarchy = Hierarchy("partner", [("continent", {"China": "Asia"})])
        rolled = hierarchy.rollup_cube(cube, "continent")
        members = rolled.members("partner:continent")
        assert "(other)" in members

    def test_callable_level(self, cube):
        hierarchy = Hierarchy(
            "year", [("decade", lambda year: year[:3] + "0s")]
        )
        rolled = hierarchy.rollup_cube(cube, "decade")
        assert rolled.members("year:decade") == ["2000s"]

    def test_unknown_level_raises(self):
        hierarchy = Hierarchy("d", [("l", {})])
        with pytest.raises(KeyError):
            hierarchy.map_member("x", "nope")


class TestEngine:
    def test_cube_per_fact_table(self, trade_fact):
        other = FactTable("gdp", ["country"], ["gdp"], [("US", 12.0)])
        engine = OLAPEngine(StarSchema([trade_fact, other], []))
        assert len(engine.cubes()) == 2

    def test_cube_cached(self, trade_fact):
        engine = OLAPEngine(StarSchema([trade_fact], []))
        assert engine.cube("pct") is engine.cube("pct")

    def test_report_rows_sorted(self, trade_fact):
        engine = OLAPEngine(StarSchema([trade_fact], []))
        rows = engine.report("pct", ["year"], agg="sum")
        years = [row[0] for row in rows]
        assert years == sorted(years)

    def test_render_pivot(self, trade_fact):
        engine = OLAPEngine(StarSchema([trade_fact], []))
        pivot = engine.cube("pct").pivot("year", "partner")
        text = engine.render_pivot(pivot, row_label="year")
        assert "China" in text
        assert "2006" in text
        assert "15.00" in text
