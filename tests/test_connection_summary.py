"""Connection summaries: tree/link classification (Section 6)."""

import pytest

from repro.model.graph import DataGraph, EdgeKind
from repro.model.links import LinkDiscoverer, ValueLinkSpec
from repro.query.term import Query
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher
from repro.summaries.connection import (
    ConnectionSummaryGenerator,
    LinkConnection,
    TreeConnection,
)
from repro.summaries.dataguide import DataguideBuilder


@pytest.fixture
def figure2_setup(figure2_collection, figure2_matcher):
    graph = DataGraph(figure2_collection)
    LinkDiscoverer(graph).apply_value_links([
        ValueLinkSpec(
            "/country",
            "/country/economy/import_partners/item/trade_country",
            label="trade partner",
        ),
    ])
    dataguides = DataguideBuilder(0.4).build(
        collection=figure2_collection, graph=graph
    )
    generator = ConnectionSummaryGenerator(
        figure2_collection, graph, dataguides
    )
    scoring = ScoringModel(figure2_collection, figure2_matcher.inverted, graph)
    topk = TopKSearcher(figure2_matcher, scoring)
    return graph, generator, topk


TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"
PARTNERS_PATH = "/country/economy/import_partners"


def _node(collection, doc_id, tag, value=None):
    for node in collection.iter_nodes():
        if node.doc_id == doc_id and node.tag == tag and (
            value is None or node.value == value
        ):
            return node
    raise AssertionError(f"no node {tag}={value} in doc {doc_id}")


class TestPairClassification:
    def test_sibling_pair_is_tree_connection(self, figure2_collection,
                                             figure2_setup):
        _graph, generator, _topk = figure2_setup
        tc = _node(figure2_collection, 0, "trade_country", "China")
        pct = _node(figure2_collection, 0, "percentage", "15%")
        connection = generator.classify_pair(tc.node_id, pct.node_id)
        assert isinstance(connection, TreeConnection)
        assert connection.lca_path == ITEM_PATH
        assert connection.length == 2

    def test_cousin_pair_meets_at_import_partners(self, figure2_collection,
                                                  figure2_setup):
        """The paper's two ways of connecting trade_country and
        percentage: same item vs different items."""
        _graph, generator, _topk = figure2_setup
        tc = _node(figure2_collection, 0, "trade_country", "China")
        pct = _node(figure2_collection, 0, "percentage", "16.9%")
        connection = generator.classify_pair(tc.node_id, pct.node_id)
        assert isinstance(connection, TreeConnection)
        assert connection.lca_path == PARTNERS_PATH
        assert connection.length == 4

    def test_cross_document_link_connection(self, figure2_collection,
                                            figure2_setup):
        _graph, generator, _topk = figure2_setup
        us_root = figure2_collection.document(0).root
        mexico_tc = _node(figure2_collection, 2, "trade_country",
                          "United States")
        connection = generator.classify_pair(
            mexico_tc.node_id, us_root.node_id
        )
        assert isinstance(connection, LinkConnection)
        assert connection.kind is EdgeKind.VALUE
        assert connection.label == "trade partner"

    def test_unreachable_pair_is_none(self, figure2_collection):
        # Without link edges, nodes of different documents never connect.
        graph = DataGraph(figure2_collection)
        dataguides = DataguideBuilder(0.4).build(
            collection=figure2_collection, graph=graph
        )
        generator = ConnectionSummaryGenerator(
            figure2_collection, graph, dataguides
        )
        usa_year = _node(figure2_collection, 0, "year")
        mexico_year = _node(figure2_collection, 2, "year")
        assert generator.classify_pair(
            usa_year.node_id, mexico_year.node_id
        ) is None

    def test_connection_instance_check(self, figure2_collection,
                                       figure2_setup):
        graph, generator, _topk = figure2_setup
        tc = _node(figure2_collection, 0, "trade_country", "China")
        pct_sibling = _node(figure2_collection, 0, "percentage", "15%")
        pct_cousin = _node(figure2_collection, 0, "percentage", "16.9%")
        sibling = TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)
        assert sibling.matches_instance(
            figure2_collection, graph, tc.node_id, pct_sibling.node_id
        )
        assert not sibling.matches_instance(
            figure2_collection, graph, tc.node_id, pct_cousin.node_id
        )

    def test_instance_check_symmetric(self, figure2_collection,
                                      figure2_setup):
        graph, _generator, _topk = figure2_setup
        tc = _node(figure2_collection, 0, "trade_country", "China")
        pct = _node(figure2_collection, 0, "percentage", "15%")
        sibling = TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)
        assert sibling.matches_instance(
            figure2_collection, graph, pct.node_id, tc.node_id
        )


class TestSummaryGeneration:
    def test_summary_from_topk(self, figure2_setup):
        _graph, generator, topk = figure2_setup
        query = Query.parse([("trade_country", "*"), ("percentage", "*")])
        results = topk.search(query, k=10)
        summary = generator.generate(query, results)
        connections = summary.connections(0, 1)
        assert connections
        assert all(
            isinstance(c, (TreeConnection, LinkConnection))
            for c in connections
        )

    def test_support_counts_sum_to_pairs(self, figure2_setup):
        _graph, generator, topk = figure2_setup
        query = Query.parse([("trade_country", "*"), ("percentage", "*")])
        results = topk.search(query, k=10)
        summary = generator.generate(query, results)
        total_support = sum(
            support for _pair, _conn, support in summary.all_connections()
        )
        assert total_support == len(results)

    def test_sibling_connection_most_supported(self, figure2_setup):
        _graph, generator, topk = figure2_setup
        query = Query.parse([("trade_country", "*"), ("percentage", "*")])
        results = topk.search(query, k=10)
        summary = generator.generate(query, results)
        best = summary.connections(0, 1)[0]
        assert isinstance(best, TreeConnection)
        assert best.lca_path == ITEM_PATH


class TestPotentialConnections:
    def test_all_common_prefixes_enumerated(self, figure2_setup):
        _graph, generator, _topk = figure2_setup
        potentials = generator.potential_tree_connections(TC_PATH, PCT_PATH)
        lcas = [connection.lca_path for connection in potentials]
        assert ITEM_PATH in lcas
        assert PARTNERS_PATH in lcas
        assert "/country" in lcas
        # Deepest (most meaningful) first.
        assert lcas[0] == ITEM_PATH

    def test_unknown_paths_empty(self, figure2_setup):
        _graph, generator, _topk = figure2_setup
        assert generator.potential_tree_connections("/x", "/y") == []


class TestConnectionIdentity:
    def test_tree_connection_equality(self):
        a = TreeConnection("/a/b", "/a/c", "/a")
        b = TreeConnection("/a/b", "/a/c", "/a")
        c = TreeConnection("/a/b", "/a/c", "/a/b")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_link_connection_equality(self):
        a = LinkConnection("/a", "/b", "/a", "/b", EdgeKind.VALUE, "x")
        b = LinkConnection("/a", "/b", "/a", "/b", EdgeKind.VALUE, "x")
        c = LinkConnection("/a", "/b", "/a", "/b", EdgeKind.IDREF, "x")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_describe_readable(self):
        connection = TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)
        text = connection.describe()
        assert ITEM_PATH in text and "length 2" in text
