"""Term evaluation: candidates, Definition 3 satisfaction, term paths."""

import pytest

from repro.query.ast import QuerySyntaxError
from repro.query.parser import parse_query_text
from repro.query.term import QueryTerm


def _values(collection, node_ids):
    return [collection.node(node_id).value for node_id in node_ids]


class TestCandidates:
    def test_phrase_candidates(self, figure2_collection, figure2_matcher):
        term = QueryTerm("*", '"United States"')
        candidates = figure2_matcher.candidates(term)
        assert len(candidates) == 4
        assert set(_values(figure2_collection, candidates)) == {
            "United States"
        }

    def test_context_filters_candidates(self, figure2_collection,
                                         figure2_matcher):
        term = QueryTerm("trade_country", '"United States"')
        candidates = figure2_matcher.candidates(term)
        paths = {figure2_collection.node(c).path for c in candidates}
        assert paths == {
            "/country/economy/import_partners/item/trade_country",
            "/country/economy/export_partners/item/trade_country",
        }

    def test_path_context_filter(self, figure2_collection, figure2_matcher):
        term = QueryTerm(
            "/country/economy/import_partners/item/trade_country",
            '"United States"',
        )
        assert len(figure2_matcher.candidates(term)) == 1

    def test_match_all_with_tag(self, figure2_collection, figure2_matcher):
        term = QueryTerm("percentage", "*")
        assert len(figure2_matcher.candidates(term)) == 7

    def test_match_all_with_path(self, figure2_matcher):
        term = QueryTerm(
            "/country/economy/import_partners/item/percentage", "*"
        )
        assert len(figure2_matcher.candidates(term)) == 5

    def test_match_all_empty_context_is_everything(self, figure2_collection,
                                                   figure2_matcher):
        term = QueryTerm("*", "*")
        assert len(figure2_matcher.candidates(term)) == (
            figure2_collection.node_count
        )

    def test_candidates_sorted(self, figure2_matcher):
        term = QueryTerm("*", "canada")
        candidates = figure2_matcher.candidates(term)
        assert candidates == sorted(candidates)

    def test_boolean_and(self, figure2_collection, figure2_matcher):
        # Only the Mexico root content has both words... no single node's
        # direct text has both, so AND over direct text gives nothing.
        term = QueryTerm("*", "mexico germany")
        assert figure2_matcher.candidates(term) == []

    def test_boolean_or(self, figure2_collection, figure2_matcher):
        term = QueryTerm("trade_country", "germany OR china")
        values = set(
            _values(figure2_collection, figure2_matcher.candidates(term))
        )
        assert values == {"Germany", "China"}

    def test_not_inside_and(self, figure2_collection, figure2_matcher):
        term = QueryTerm("trade_country", "united NOT germany")
        assert len(figure2_matcher.candidates(term)) == 2

    def test_top_level_not_rejected(self, figure2_matcher):
        term = QueryTerm("*", parse_query_text("NOT x"))
        with pytest.raises(QuerySyntaxError):
            figure2_matcher.candidates(term)

    def test_wildcard_tag_context(self, figure2_collection, figure2_matcher):
        term = QueryTerm("GDP*", "*")
        values = set(
            _values(figure2_collection, figure2_matcher.candidates(term))
        )
        assert values == {"12.31T", "10.082T", "924.4B"}


class TestSatisfies:
    """The literal Definition 3 check with content(n) semantics."""

    def test_leaf_satisfies(self, figure2_collection, figure2_matcher):
        term = QueryTerm("trade_country", '"United States"')
        node = next(
            node for node in figure2_collection.iter_nodes()
            if node.tag == "trade_country" and node.value == "United States"
        )
        assert figure2_matcher.satisfies(node.node_id, term)

    def test_ancestor_satisfies_via_descendant_text(self, figure2_collection,
                                                    figure2_matcher):
        """content(n) includes descendant text, so the economy node of
        the Mexico document satisfies a "United States" search."""
        term = QueryTerm("economy", '"United States"')
        economy = next(
            node for node in figure2_collection.iter_nodes()
            if node.tag == "economy" and node.doc_id == 2
        )
        assert figure2_matcher.satisfies(economy.node_id, term)

    def test_context_mismatch_fails(self, figure2_collection, figure2_matcher):
        term = QueryTerm("year", '"United States"')
        node = next(
            node for node in figure2_collection.iter_nodes()
            if node.tag == "trade_country"
        )
        assert not figure2_matcher.satisfies(node.node_id, term)

    def test_match_all_satisfies_context_only(self, figure2_collection,
                                              figure2_matcher):
        term = QueryTerm("year", "*")
        year = next(
            node for node in figure2_collection.iter_nodes()
            if node.tag == "year"
        )
        assert figure2_matcher.satisfies(year.node_id, term)

    def test_phrase_across_words(self, figure2_collection, figure2_matcher):
        term = QueryTerm("*", '"import_partners"')
        # No text node contains that tag name as content.
        root = figure2_collection.document(0).root
        assert not figure2_matcher.satisfies(root.node_id, term)

    def test_candidates_all_satisfy(self, figure2_collection, figure2_matcher):
        """Index candidates are a subset of Definition 3 satisfaction."""
        for spec in [("*", '"United States"'), ("percentage", "*"),
                     ("trade_country", "germany OR china")]:
            term = QueryTerm(*spec)
            for node_id in figure2_matcher.candidates(term):
                assert figure2_matcher.satisfies(node_id, term)


class TestTermPaths:
    def test_phrase_paths_exact(self, figure2_matcher):
        term = QueryTerm("*", '"United States"')
        assert figure2_matcher.term_paths(term) == {
            "/country",
            "/country/economy/import_partners/item/trade_country",
            "/country/economy/export_partners/item/trade_country",
        }

    def test_match_all_paths_respect_context(self, figure2_matcher):
        term = QueryTerm("percentage", "*")
        assert figure2_matcher.term_paths(term) == {
            "/country/economy/import_partners/item/percentage",
            "/country/economy/export_partners/item/percentage",
        }

    def test_or_paths_union(self, figure2_matcher):
        term = QueryTerm("*", "germany OR 2002")
        assert figure2_matcher.term_paths(term) == {
            "/country/economy/import_partners/item/trade_country",
            "/country/year",
        }

    def test_and_paths_intersection(self, figure2_matcher):
        term = QueryTerm("*", "united states")
        # Conjunction at path granularity: paths containing both words.
        assert "/country" in figure2_matcher.term_paths(term)

    def test_example1_three_contexts(self, figure2_matcher):
        """Example 1: 'United States' occurs in three different contexts
        in the Figure 2 fragments."""
        term = QueryTerm("*", '"United States"')
        assert len(figure2_matcher.term_paths(term)) == 3
