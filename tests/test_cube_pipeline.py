"""Cube steps 1-3: matching, augmentation, extraction (Figure 3)."""

import pytest

from repro.cube.augment import Augmenter
from repro.cube.extract import TableExtractor, parse_measure
from repro.cube.matching import ResultMatcher
from repro.cube.registry import Registry
from repro.cube.star import DimensionTable, FactTable, StarSchema
from repro.model.graph import DataGraph
from repro.query.term import Query
from repro.storage.node_store import NodeStore
from repro.summaries.connection import TreeConnection
from repro.twig.complete import CompleteResultGenerator

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"


def _figure3_registry():
    registry = Registry()
    country_key = ["/country", "/country/year"]
    registry.add_dimension("country", [("/country", country_key)])
    registry.add_dimension("year", [("/country/year", country_key)])
    registry.add_dimension(
        "import-country", [(TC_PATH, ["/country", "/country/year", "."])]
    )
    registry.add_fact(
        "import-trade-percentage",
        [(PCT_PATH, ["/country", "/country/year", "../trade_country"])],
    )
    registry.add_fact(
        "GDP",
        [
            ("/country/economy/GDP", country_key),
            ("/country/economy/GDP_ppp", country_key),
        ],
    )
    return registry


@pytest.fixture
def figure3_pipeline(figure2_collection, figure2_matcher):
    graph = DataGraph(figure2_collection)
    store = NodeStore(figure2_collection)
    generator = CompleteResultGenerator(
        figure2_collection, graph, store, figure2_matcher
    )
    query = Query.parse([
        ("*", '"United States"'),
        ("trade_country", "*"),
        ("percentage", "*"),
    ])
    table = generator.generate(
        query,
        {0: "/country", 1: TC_PATH, 2: PCT_PATH},
        connections=[
            ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
            ((1, 2), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)),
        ],
    )
    registry = _figure3_registry()
    return figure2_collection, store, registry, table


class TestParseMeasure:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("15", 15.0),
            ("16.9%", 16.9),
            ("12.31T", 12.31e12),
            ("924.4B", 924.4e9),
            ("3.5M", 3.5e6),
            ("2K", 2000.0),
            ("1,234.5", 1234.5),
            ("$400", 400.0),
            ("-7.5", -7.5),
            ("2.5 billion", 2.5e9),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_measure(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "abc", "12abc", None, "T12"])
    def test_non_numeric_none(self, text):
        assert parse_measure(text) is None


class TestMatching:
    def test_figure3_columns_match(self, figure3_pipeline):
        collection, store, registry, table = figure3_pipeline
        report = ResultMatcher(registry).match(table)
        assert report.column(0).dimensions[0].name == "country"
        assert report.column(1).dimensions[0].name == "import-country"
        assert report.column(2).facts[0].name == "import-trade-percentage"
        assert {f.name for f in report.facts} == {"import-trade-percentage"}
        assert {d.name for d in report.dimensions} == {
            "country", "import-country",
        }

    def test_unmatched_column_reported(self, figure3_pipeline):
        collection, store, _registry, table = figure3_pipeline
        empty_registry = Registry()
        report = ResultMatcher(empty_registry).match(table)
        assert len(report.unmatched_columns()) == 3

    def test_partial_match_warning(self, figure3_pipeline):
        collection, store, registry, table = figure3_pipeline
        registry.add_dimension(
            "half", [("/country", ["/country"]), ("/unused", ["/country"])]
        )
        # Column 0 paths = {/country} which IS a subset of half's
        # contexts, so make a genuinely partial definition:
        registry.add_fact("odd", [(PCT_PATH, ["."]), ("/only/partial", ["."])])
        report = ResultMatcher(registry).match(table)
        # percentage column: matches both import-trade-percentage and odd.
        assert {f.name for f in report.column(2).facts} >= {
            "import-trade-percentage"
        }

    def test_define_new_dimension_with_key_verification(
        self, figure3_pipeline
    ):
        collection, store, registry, table = figure3_pipeline
        matcher = ResultMatcher(registry)
        definition = matcher.define_new(
            "partner", "dimension", table, 1,
            ["/country", "/country/year", "."], collection, store,
        )
        assert registry.has_dimension("partner")
        assert TC_PATH in definition.contexts

    def test_define_new_rejects_non_unique_key(self, figure3_pipeline):
        collection, store, registry, table = figure3_pipeline
        matcher = ResultMatcher(registry)
        with pytest.raises(ValueError):
            # (/country, /country/year) collides for the two 2006 items.
            matcher.define_new(
                "bad", "fact", table, 2, ["/country", "/country/year"],
                collection, store,
            )


class TestAugmentation:
    def test_year_column_added(self, figure3_pipeline):
        """Figure 3: the /country/year key column is added and the year
        dimension joins automatically."""
        collection, store, registry, table = figure3_pipeline
        report = ResultMatcher(registry).match(table)
        augmenter = Augmenter(collection, store, registry)
        augmented = augmenter.augment(table, report.facts, report.dimensions)
        assert "/country/year" in augmented.added_columns
        assert [d.name for d in augmented.auto_dimensions] == ["year"]
        years = augmented.column_values("/country/year")
        assert set(years) == {"2006", "2002"}

    def test_relative_component_column(self, figure3_pipeline):
        collection, store, registry, table = figure3_pipeline
        report = ResultMatcher(registry).match(table)
        augmented = Augmenter(collection, store, registry).augment(
            table, report.facts, report.dimensions
        )
        assert "../trade_country" in augmented.added_columns
        partners = augmented.column_values("../trade_country")
        assert set(partners) == {"China", "Canada"}

    def test_no_failures_on_clean_data(self, figure3_pipeline):
        collection, store, registry, table = figure3_pipeline
        report = ResultMatcher(registry).match(table)
        augmented = Augmenter(collection, store, registry).augment(
            table, report.facts, report.dimensions
        )
        assert augmented.failures == []


class TestExtraction:
    def _schema(self, figure3_pipeline):
        collection, store, registry, table = figure3_pipeline
        report = ResultMatcher(registry).match(table)
        augmenter = Augmenter(collection, store, registry)
        augmented = augmenter.augment(table, report.facts, report.dimensions)
        dimensions = report.dimensions + augmented.auto_dimensions
        extractor = TableExtractor(collection, store, registry)
        return extractor.extract(augmented, report.facts, dimensions)

    def test_figure3_fact_table(self, figure3_pipeline):
        schema = self._schema(figure3_pipeline)
        fact = schema.fact("import-trade-percentage")
        assert fact.key_columns == ["country", "year", "import-country"]
        rows = set(fact.rows)
        assert ("United States", "2006", "China", 15.0) in rows
        assert ("United States", "2006", "Canada", 16.9) in rows
        assert ("United States", "2002", "Canada", 17.8) in rows
        assert len(rows) == 3

    def test_figure3_dimension_tables(self, figure3_pipeline):
        schema = self._schema(figure3_pipeline)
        assert list(schema.dimension("year")) == ["2002", "2006"]
        assert list(schema.dimension("country")) == ["United States"]
        assert list(schema.dimension("import-country")) == [
            "Canada", "China",
        ]

    def test_fact_table_has_primary_key(self, figure3_pipeline):
        schema = self._schema(figure3_pipeline)
        assert schema.fact("import-trade-percentage").has_primary_key()

    def test_sql_statements_rendered(self, figure3_pipeline):
        schema = self._schema(figure3_pipeline)
        statements = schema.sql_statements()
        assert any("fact_import_trade_percentage" in s for s in statements)
        assert any("dim_year" in s for s in statements)


class TestFactTableMerge:
    def test_merge_same_keys(self):
        a = FactTable("gdp", ["country", "year"], ["gdp"],
                      [("US", "2002", 10.0), ("US", "2006", 12.0)])
        b = FactTable("pop", ["country", "year"], ["pop"],
                      [("US", "2002", 290.0)])
        merged = a.merge_with(b)
        assert merged.measures == ["gdp", "pop"]
        rows = {row[:2]: row[2:] for row in merged.rows}
        assert rows[("US", "2002")] == (10.0, 290.0)
        assert rows[("US", "2006")] == (12.0, None)

    def test_merge_different_keys_rejected(self):
        a = FactTable("a", ["x"], ["m"], [])
        b = FactTable("b", ["y"], ["m"], [])
        with pytest.raises(ValueError):
            a.merge_with(b)

    def test_schema_merge_optimization(self):
        a = FactTable("a", ["k"], ["a"], [("1", 1.0)])
        b = FactTable("b", ["k"], ["b"], [("1", 2.0)])
        c = FactTable("c", ["z"], ["c"], [("9", 3.0)])
        schema = StarSchema([a, b, c], [])
        schema.merge_compatible_facts()
        assert len(schema.fact_tables) == 2
        merged = next(
            table for table in schema.fact_tables.values()
            if table.measures == ["a", "b"]
        )
        assert merged.rows == [("1", 1.0, 2.0)]

    def test_dimension_table_membership(self):
        table = DimensionTable("d", ["b", "a", "b"])
        assert list(table) == ["a", "b"]
        assert "a" in table
        assert len(table) == 2
