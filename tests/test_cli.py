"""The ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import _parse_term, build_parser, main


class TestTermParsing:
    def test_context_and_search(self):
        assert _parse_term("trade_country:*") == ("trade_country", "*")

    def test_phrase_search(self):
        assert _parse_term('*:"United States"') == ("*", '"United States"')

    def test_bare_keyword_defaults_context(self):
        assert _parse_term("romania") == ("*", "romania")

    def test_path_context(self):
        assert _parse_term("/country/year:2006") == ("/country/year", "2006")

    def test_empty_sides_become_star(self):
        assert _parse_term(":") == ("*", "*")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "factbook"
        assert args.scale == 0.02

    def test_search_terms_accumulate(self):
        args = build_parser().parse_args(
            ["search", "--term", "a:*", "--term", "b:*", "-k", "3"]
        )
        assert args.term == ["a:*", "b:*"]
        assert args.k == 3


class TestCommands:
    def test_stats(self):
        out = io.StringIO()
        code = main(["stats", "--scale", "0.01", "--top", "3"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "documents:" in text
        assert "distinct_paths:" in text
        assert "/country" in text

    def test_stats_from_directory(self, tmp_path):
        (tmp_path / "one.xml").write_text("<a><b>hello</b></a>")
        (tmp_path / "two.xml").write_text("<a><c>world</c></a>")
        out = io.StringIO()
        code = main(["stats", "--data", str(tmp_path)], out=out)
        assert code == 0
        assert "documents: 2" in out.getvalue()

    def test_stats_empty_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", "--data", str(tmp_path)], out=io.StringIO())

    def test_search(self):
        out = io.StringIO()
        code = main(
            ["search", "--scale", "0.01",
             "--term", '*:"United States"', "--term", "percentage:*",
             "-k", "5"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Query:" in text
        assert "Context summary" in text
        assert "Connection summary" in text

    def test_search_without_terms_fails(self):
        with pytest.raises(SystemExit):
            main(["search"], out=io.StringIO())

    def test_table1_small_scale(self):
        out = io.StringIO()
        code = main(["table1", "--scale", "0.005"], out=out)
        assert code == 0
        text = out.getvalue()
        for name in ("factbook", "mondial", "googlebase", "recipeml"):
            assert name in text
        assert "dataguides=" in text

    def test_query1(self):
        out = io.StringIO()
        code = main(["query1", "--scale", "0.01"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "R(q)" in text
        assert "fact import-trade-percentage" in text
        assert "session effort" in text


class TestSnapshotCommands:
    def test_save_load_info(self, tmp_path):
        path = tmp_path / "factbook.snapshot"
        out = io.StringIO()
        code = main(
            ["snapshot", "save", str(path), "--scale", "0.01"], out=out
        )
        assert code == 0
        assert "saved snapshot" in out.getvalue()
        assert path.exists()

        out = io.StringIO()
        code = main(["snapshot", "info", str(path)], out=out)
        assert code == 0
        text = out.getvalue()
        assert "collection: world-factbook" in text
        assert "inverted" in text
        assert "dataguides" in text

        out = io.StringIO()
        code = main(
            ["snapshot", "load", str(path),
             "--term", '*:"United States"', "--term", "percentage:*"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "loaded snapshot" in text
        assert "Context summary" in text

    def test_load_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.snapshot"
        bad.write_text('{"record": "header", "format": "nope", "version": 1}\n')
        with pytest.raises(SystemExit, match="seda-snapshot"):
            main(["snapshot", "load", str(bad)], out=io.StringIO())

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no snapshot file"):
            main(["snapshot", "info", str(tmp_path / "nope")],
                 out=io.StringIO())

    def test_snapshot_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["snapshot"])


class TestQueryFileParsing:
    def test_line_splits_on_double_semicolon(self):
        from repro.cli import _parse_query_line

        assert _parse_query_line('*:"United States" ;; trade_country:*') == [
            ("*", '"United States"'), ("trade_country", "*"),
        ]

    def test_single_term_line(self):
        from repro.cli import _parse_query_line

        assert _parse_query_line("*:canada") == [("*", "canada")]


class TestServiceCommands:
    def test_serve_batch_builtin_queries(self):
        out = io.StringIO()
        code = main(
            ["serve-batch", "--scale", "0.01", "--workers", "2", "-k", "3"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "query [topk]" in text
        assert "batch:" in text
        assert "2 workers" in text

    def test_serve_batch_query_file(self, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "# hot queries\n"
            "\n"
            '*:"United States" ;; trade_country:*\n'
            "*:canada\n"
        )
        out = io.StringIO()
        code = main(
            ["serve-batch", "--scale", "0.01",
             "--queries", str(queries), "--workers", "2"],
            out=out,
        )
        assert code == 0
        assert out.getvalue().count("query [") == 2

    def test_serve_batch_rejects_empty_query_file(self, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("# only comments\n\n")
        with pytest.raises(SystemExit, match="no queries"):
            main(["serve-batch", "--queries", str(queries)],
                 out=io.StringIO())

    def test_bench_queries_reports_and_verifies(self):
        out = io.StringIO()
        code = main(
            ["bench-queries", "--scale", "0.01", "--workers", "2",
             "--repeat", "2", "-k", "5"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "sequential:" in text
        assert "batch" in text
        assert "identical to" in text
        assert "MISMATCH" not in text

    def test_bench_queries_shards_equality_gate(self):
        out = io.StringIO()
        code = main(
            ["bench-queries", "--scale", "0.01", "--workers", "2",
             "--repeat", "2", "-k", "5", "--shards", "2"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "sharded" in text
        assert "shard 0:" in text and "shard 1:" in text
        assert "scatter-gather answers identical" in text
        assert "MISMATCH" not in text


class TestShardCommands:
    def test_build_info_search(self, tmp_path):
        target = tmp_path / "factbook.shards"
        out = io.StringIO()
        code = main(
            ["shard", "build", str(target), "--scale", "0.01",
             "--shards", "2", "--serial"],
            out=out,
        )
        assert code == 0
        assert "built 2 shards" in out.getvalue()
        assert (target / "manifest.json").exists()

        out = io.StringIO()
        assert main(["shard", "info", str(target)], out=out) == 0
        text = out.getvalue()
        assert "shards: 2" in text
        assert "shard-0000.snapshot" in text
        assert "partitioner: hash" in text

        out = io.StringIO()
        code = main(
            ["shard", "search", str(target),
             "--term", "trade_country:*", "--term", "percentage:*",
             "-k", "3"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "results from 2 shards" in text
        assert "shard 0:" in text and "shard 1:" in text

    def test_search_requires_terms(self, tmp_path):
        with pytest.raises(SystemExit, match="at least one --term"):
            main(["shard", "search", str(tmp_path)], out=io.StringIO())

    def test_info_rejects_non_sharded_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="manifest"):
            main(["shard", "info", str(tmp_path)], out=io.StringIO())

    def test_build_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(SystemExit, match="--shards must be"):
            main(
                ["shard", "build", str(tmp_path / "x"), "--shards", "0",
                 "--scale", "0.01"],
                out=io.StringIO(),
            )


class TestObservabilityCommands:
    """``repro stats`` (registry mode) and ``repro explain``."""

    WORKLOAD = (
        "*:canada ;; year:*\n"
        "*:canada ;; year:*\n"   # in-batch duplicate -> a cache hit
        "trade_country:*\n"
    )

    def _query_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(self.WORKLOAD)
        return str(path)

    def test_stats_default_mode_unchanged(self):
        out = io.StringIO()
        assert main(["stats", "--scale", "0.01"], out=out) == 0
        assert "documents:" in out.getvalue()

    def test_stats_queries_renders_registry_table(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["stats", "--scale", "0.01",
             "--queries", self._query_file(tmp_path)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "query statistics: 3 served, 2 fingerprints" in text
        assert "count   hits" in text
        assert "*:canada ;; year:* [k=10]" in text
        assert "trade_country:* [k=10]" in text
        assert "slow queries" in text

    def test_stats_json_matches_scripted_workload(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["stats", "--scale", "0.01",
             "--queries", self._query_file(tmp_path), "--json"],
            out=out,
        )
        assert code == 0
        data = json.loads(out.getvalue())  # valid JSON, full ground truth
        assert data["total_queries"] == 3
        fingerprints = data["fingerprints"]
        assert set(fingerprints) == {
            "*:canada ;; year:* [k=10]",
            "trade_country:* [k=10]",
        }
        duplicated = fingerprints["*:canada ;; year:* [k=10]"]
        assert duplicated["count"] == 2
        assert duplicated["cache_hits"] == 1
        assert duplicated["cache_hit_rate"] == 0.5
        singleton = fingerprints["trade_country:* [k=10]"]
        assert singleton["count"] == 1
        assert singleton["cache_hits"] == 0
        assert data["slow_threshold"] == 0.1

    def test_stats_save_then_read_snapshot(self, tmp_path):
        snapshot = tmp_path / "obs.snapshot"
        out = io.StringIO()
        code = main(
            ["stats", "--scale", "0.01",
             "--queries", self._query_file(tmp_path),
             "--save", str(snapshot)],
            out=out,
        )
        assert code == 0
        assert "saved snapshot" in out.getvalue()

        out = io.StringIO()
        code = main(["stats", "--snapshot", str(snapshot)], out=out)
        assert code == 0
        assert "query statistics: 3 served" in out.getvalue()

        out = io.StringIO()
        code = main(
            ["stats", "--snapshot", str(snapshot), "--json"], out=out
        )
        assert code == 0
        assert json.loads(out.getvalue())["total_queries"] == 3

    def test_stats_json_alone_rejected(self):
        with pytest.raises(SystemExit, match="--queries"):
            main(["stats", "--json"], out=io.StringIO())

    def test_stats_snapshot_without_obs_rejected(self, tmp_path):
        snapshot = tmp_path / "plain.snapshot"
        assert main(
            ["snapshot", "save", str(snapshot), "--scale", "0.01"],
            out=io.StringIO(),
        ) == 0
        with pytest.raises(SystemExit, match="no 'obs' record"):
            main(["stats", "--snapshot", str(snapshot)],
                 out=io.StringIO())

    def test_explain_text_output(self):
        out = io.StringIO()
        code = main(
            ["explain", "--scale", "0.01",
             "--term", "trade_country:*", "--term", "percentage:*",
             "-k", "3"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert text.startswith(
            "EXPLAIN percentage:* ;; trade_country:* [k=3]"
        )
        assert "combine path: pair" in text
        assert "streams opened: 2" in text
        assert "sorted accesses" in text
        assert "stopped: " in text
        assert "results: 3" in text

    def test_explain_json_matches_searcher_stats(self):
        out = io.StringIO()
        code = main(
            ["explain", "--scale", "0.01", "--term", "*:canada",
             "--term", "year:*", "--json"],
            out=out,
        )
        assert code == 0
        data = json.loads(out.getvalue())
        assert data["k"] == 10
        assert data["sorted_accesses"] == sum(
            entry["sorted_accesses"] for entry in data["per_term"]
        )
        assert data["stop_reason"] in (
            "empty-stream", "k-satisfied", "corner-bound", "exhaustion"
        )
        assert len(data["per_term"]) == 2

    def test_explain_requires_terms(self):
        with pytest.raises(SystemExit, match="at least one --term"):
            main(["explain"], out=io.StringIO())

    def test_explain_from_snapshot(self, tmp_path):
        snapshot = tmp_path / "seda.snapshot"
        assert main(
            ["snapshot", "save", str(snapshot), "--scale", "0.01"],
            out=io.StringIO(),
        ) == 0
        out = io.StringIO()
        code = main(
            ["explain", "--snapshot", str(snapshot),
             "--term", "*:canada"],
            out=out,
        )
        assert code == 0
        assert "combine path: single" in out.getvalue()


class TestFsckCommand:
    DOCS = [
        ("alpha", "<r><a>red blue</a><b>green</b></r>"),
        ("bravo", "<r><a>blue</a><c>red red</c></r>"),
    ]

    @pytest.fixture
    def snapshot(self, tmp_path):
        from repro.system import Seda

        path = str(tmp_path / "col.snapshot")
        Seda.from_documents(self.DOCS).save(path)
        return path

    def test_clean_snapshot_passes(self, snapshot):
        out = io.StringIO()
        code = main(["fsck", snapshot], out=out)
        assert code == 0
        text = out.getvalue()
        assert "ok: no integrity problems" in text
        assert "records_verified" in text or "sidecar" in text

    def test_clean_snapshot_json(self, snapshot):
        out = io.StringIO()
        code = main(["fsck", snapshot, "--json"], out=out)
        assert code == 0
        report = json.loads(out.getvalue())
        assert report["ok"]
        assert report["problems"] == []

    def test_corrupted_sidecar_fails(self, snapshot):
        blob = bytearray(open(snapshot + ".cols", "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(snapshot + ".cols", "wb") as handle:
            handle.write(bytes(blob))
        out = io.StringIO()
        code = main(["fsck", snapshot], out=out)
        assert code == 1
        assert "PROBLEM" in out.getvalue()

    def test_torn_wal_is_reported_without_repair(self, snapshot):
        import os

        from repro.storage.wal import wal_file_name
        from repro.system import Seda

        system = Seda.load(snapshot)
        system.add_documents([("delta", "<r><a>late</a></r>")])
        wal_path = wal_file_name(snapshot)
        blob = open(wal_path, "rb").read()
        with open(wal_path, "wb") as handle:
            handle.write(blob[:-3])  # tear the final record
        out = io.StringIO()
        code = main(["fsck", snapshot, "--json"], out=out)
        report = json.loads(out.getvalue())
        assert code == 0  # a torn tail is recoverable, not corruption
        assert report["ok"]
        assert any("torn" in warning for warning in report["warnings"])
        # fsck never repairs: the torn bytes are still on disk.
        assert open(wal_path, "rb").read() == blob[:-3]
        assert os.path.getsize(wal_path) == len(blob) - 3

    def test_sharded_directory(self, tmp_path):
        from repro.shard import ShardedSeda

        directory = str(tmp_path / "col.shards")
        ShardedSeda.from_documents(
            self.DOCS, shards=2, parallel=False
        ).save(directory)
        out = io.StringIO()
        code = main(["fsck", directory], out=out)
        assert code == 0
        assert "ok: no integrity problems" in out.getvalue()

    def test_missing_path_is_a_problem(self, tmp_path):
        out = io.StringIO()
        code = main(["fsck", str(tmp_path / "absent.snapshot")], out=out)
        assert code == 1
        assert "missing" in out.getvalue()
