"""Inverted index and path index (Figure 8)."""

from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex, Posting
from repro.model.collection import DocumentCollection
from repro.text.analyzer import Analyzer


class TestInvertedIndex:
    def test_postings_dewey_ordered(self, figure2_collection):
        inverted, _paths = IndexBuilder(figure2_collection).build()
        postings = inverted.postings("canada")
        node_ids = [posting.node_id for posting in postings]
        assert node_ids == sorted(node_ids)
        assert len(node_ids) == 3  # usa-2006 import+export, usa-2002 import

    def test_positions_recorded(self):
        index = InvertedIndex(Analyzer())
        index.add_node(7, "alpha beta alpha")
        posting = index.postings("alpha")[0]
        assert posting.positions == (0, 2)
        assert posting.term_frequency == 2

    def test_empty_text_not_indexed(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "")
        assert index.indexed_nodes == 0

    def test_document_frequency(self, figure2_collection):
        inverted, _paths = IndexBuilder(figure2_collection).build()
        assert inverted.document_frequency("united") == 4
        assert inverted.document_frequency("zzz") == 0

    def test_idf_monotone(self, figure2_collection):
        inverted, _paths = IndexBuilder(figure2_collection).build()
        rare = inverted.inverse_document_frequency("germany")
        common = inverted.inverse_document_frequency("united")
        assert rare > common

    def test_unknown_term_max_idf(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "a b")
        assert index.inverse_document_frequency("zzz") >= (
            index.inverse_document_frequency("a")
        )

    def test_phrase_match(self, figure2_collection):
        inverted, _paths = IndexBuilder(figure2_collection).build()
        nodes = inverted.nodes_with_phrase(["united", "states"])
        values = {
            figure2_collection.node(node_id).value for node_id in nodes
        }
        assert values == {"United States"}
        assert len(nodes) == 4

    def test_phrase_requires_adjacency(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "united arab emirates states")
        assert index.nodes_with_phrase(["united", "states"]) == []

    def test_phrase_order_matters(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "states united")
        assert index.nodes_with_phrase(["united", "states"]) == []
        assert index.nodes_with_phrase(["states", "united"]) == [1]

    def test_single_word_phrase(self):
        index = InvertedIndex(Analyzer())
        index.add_node(3, "hello")
        assert index.nodes_with_phrase(["hello"]) == [3]

    def test_phrase_with_missing_term(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "only this")
        assert index.nodes_with_phrase(["only", "that"]) == []

    def test_phrase_repeated_word(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "no no nanette")
        assert index.nodes_with_phrase(["no", "no", "nanette"]) == [1]

    def test_posting_equality(self):
        assert Posting(1, (0,)) == Posting(1, (0,))
        assert Posting(1, (0,)) != Posting(2, (0,))

    def test_node_lengths_recorded_at_build_time(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "alpha beta alpha")
        index.add_node(2, "gamma")
        assert index.node_length(1) == 3
        assert index.node_length(2) == 1
        assert index.node_length(99) == 0

    def test_node_lengths_survive_snapshot(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "alpha beta alpha")
        restored = InvertedIndex.from_dict(index.to_dict(), Analyzer())
        assert restored.node_length(1) == 3

    def test_node_lengths_derived_for_old_snapshots(self):
        """A payload without the node_lengths field (snapshot version 1)
        rebuilds the table from the postings: every token occurrence is
        exactly one position."""
        index = InvertedIndex(Analyzer())
        index.add_node(1, "alpha beta alpha")
        index.add_node(2, "beta")
        payload = index.to_dict()
        del payload["node_lengths"]
        restored = InvertedIndex.from_dict(payload, Analyzer())
        assert restored.node_length(1) == 3
        assert restored.node_length(2) == 1
        # Incremental builds after the lazy derivation keep counting.
        restored.add_node(3, "gamma gamma")
        assert restored.node_length(3) == 2

    def test_term_frequency_random_access(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "alpha beta alpha")
        index.add_node(5, "alpha")
        assert index.term_frequencies("alpha") == {1: 2, 5: 1}
        assert index.term_frequencies("zzz") == {}

    def test_term_frequencies_invalidated_by_add_node(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "alpha")
        assert index.term_frequencies("alpha") == {1: 1}
        index.add_node(2, "alpha alpha")
        assert index.term_frequencies("alpha") == {1: 1, 2: 2}

    def test_idf_cache_invalidated_by_add_node(self):
        index = InvertedIndex(Analyzer())
        index.add_node(1, "alpha")
        before = index.inverse_document_frequency("alpha")
        index.add_node(2, "beta")
        after = index.inverse_document_frequency("alpha")
        assert after > before  # N grew, df did not


class TestPathIndex:
    def test_term_paths(self, figure2_collection):
        _inverted, paths = IndexBuilder(figure2_collection).build()
        assert paths.paths_for_term("germany") == {
            "/country/economy/import_partners/item/trade_country"
        }

    def test_tag_probe(self, figure2_collection):
        _inverted, paths = IndexBuilder(figure2_collection).build()
        assert paths.paths_for_tag("percentage") == {
            "/country/economy/import_partners/item/percentage",
            "/country/economy/export_partners/item/percentage",
        }

    def test_tag_wildcard(self, figure2_collection):
        _inverted, paths = IndexBuilder(figure2_collection).build()
        matched = paths.paths_for_tag("GDP*")
        assert matched == {
            "/country/economy/GDP",
            "/country/economy/GDP_ppp",
        }

    def test_full_path_probe(self, figure2_collection):
        _inverted, paths = IndexBuilder(figure2_collection).build()
        path = "/country/economy/import_partners/item/percentage"
        assert paths.paths_for_path(path) == {path}
        assert paths.paths_for_path("/country/nope/percentage") == set()

    def test_counts_live_in_collection_not_index(self, figure2_collection):
        """The paper stores per-path counts in the document store, not
        in the posting lists; the index exposes only path sets."""
        _inverted, paths = IndexBuilder(figure2_collection).build()
        bucket = paths.paths_for_term("canada")
        assert isinstance(bucket, set)
        for path in bucket:
            assert figure2_collection.path_occurrences(path) > 0

    def test_all_paths_matches_collection(self, figure2_collection):
        _inverted, paths = IndexBuilder(figure2_collection).build()
        assert paths.all_paths() == set(figure2_collection.paths())


class TestIncrementalBuild:
    def test_build_twice_no_duplicates(self, figure2_collection):
        builder = IndexBuilder(figure2_collection)
        inverted, _paths = builder.build()
        before = inverted.document_frequency("canada")
        builder.build()
        assert inverted.document_frequency("canada") == before

    def test_new_documents_indexed(self):
        collection = DocumentCollection()
        collection.add_document("<a>one</a>")
        builder = IndexBuilder(collection)
        inverted, paths = builder.build()
        assert inverted.document_frequency("one") == 1
        collection.add_document("<a>two</a>")
        builder.build()
        assert inverted.document_frequency("two") == 1
