"""UI panel rendering, dataguide persistence, and the XSEarch baseline."""

import pytest

from repro import ui
from repro.baselines.xsearch import interconnected, xsearch
from repro.index.builder import IndexBuilder
from repro.model.collection import DocumentCollection
from repro.summaries.dataguide import DataguideBuilder, DataguideSet
from repro.system import Seda


@pytest.fixture(scope="module")
def session():
    seda = Seda.from_documents([
        ("usa", "<country>United States<year>2006</year>"
                "<economy><import_partners>"
                "<item><trade_country>China</trade_country>"
                "<percentage>15%</percentage></item>"
                "</import_partners></economy></country>"),
    ])
    return seda.search([("*", '"United States"'), ("percentage", "*")], k=5)


class TestPanels:
    def test_render_query(self, session):
        text = ui.render_query(session.query)
        assert "context=" in text and "search=" in text
        assert text.count("\n") == len(session.query.terms)

    def test_render_results(self, session):
        text = ui.render_results(session.results, session.system.collection)
        assert "1." in text
        assert "/country" in text

    def test_render_results_empty(self, session):
        text = ui.render_results([], session.system.collection)
        assert "(no results)" in text

    def test_render_context_summary(self, session):
        text = ui.render_context_summary(session.context_summary)
        assert "term 1" in text
        assert "combinations" in text
        assert "/country" in text

    def test_render_connection_summary(self, session):
        text = ui.render_connection_summary(session.connection_summary)
        assert "Connection summary" in text

    def test_render_result_table(self, session):
        table = session.complete_results(
            term_paths={
                0: "/country",
                1: "/country/economy/import_partners/item/percentage",
            }
        )
        text = ui.render_result_table(table)
        assert "R(q)" in text
        assert "nodeid1" in text

    def test_render_star_schema(self, session):
        from repro.cube.star import DimensionTable, FactTable, StarSchema

        schema = StarSchema(
            [FactTable("f", ["k"], ["f"], [("a", 1.0)])],
            [DimensionTable("d", ["x", "y"])],
        )
        text = ui.render_star_schema(schema)
        assert "fact f" in text
        assert "dimension d" in text

    def test_render_session_combines_panels(self, session):
        text = ui.render_session(session)
        assert "Query:" in text
        assert "Context summary" in text
        assert "Connection summary" in text

    def test_limits_respected(self, session):
        table = session.complete_results(
            term_paths={
                0: "/country",
                1: "/country/economy/import_partners/item/percentage",
            }
        )
        text = ui.render_result_table(table, limit=0)
        assert "more rows" in text or len(table) == 0


class TestDataguidePersistence:
    def _build(self):
        collection = DocumentCollection()
        collection.add_document('<a id="x"><b>1</b><c>2</c></a>')
        collection.add_document('<a id="y"><b>3</b><d>4</d></a>')
        collection.add_document('<z href="#x"><w>5</w></z>')
        from repro.model.graph import DataGraph
        from repro.model.links import LinkDiscoverer

        graph = DataGraph(collection)
        LinkDiscoverer(graph).discover_xlinks()
        builder = DataguideBuilder(0.4)
        return builder.build(collection=collection, graph=graph)

    def test_roundtrip_guides(self, tmp_path):
        guide_set = self._build()
        path = tmp_path / "guides.json"
        guide_set.save(path)
        loaded = DataguideSet.load(path)
        assert len(loaded) == len(guide_set)
        assert loaded.threshold == guide_set.threshold
        for original, restored in zip(guide_set.guides, loaded.guides):
            assert original.paths == restored.paths
            assert original.document_ids == restored.document_ids
            assert original.source_path_sets == restored.source_path_sets

    def test_roundtrip_links(self, tmp_path):
        guide_set = self._build()
        path = tmp_path / "guides.json"
        guide_set.save(path)
        loaded = DataguideSet.load(path)
        assert len(loaded.links) == len(guide_set.links) == 1
        _sg, source_path, _tg, target_path, kind, _label = loaded.links[0]
        assert source_path == "/z"
        assert target_path == "/a"

    def test_loaded_set_answers_queries(self, tmp_path):
        guide_set = self._build()
        path = tmp_path / "guides.json"
        guide_set.save(path)
        loaded = DataguideSet.load(path)
        assert loaded.guide_for_document(0) is not None
        assert loaded.guides_for_path("/a/b")
        false_pairs, total = loaded.false_positive_pairs()
        original = guide_set.false_positive_pairs()
        assert (false_pairs, total) == original


class TestXSearch:
    def _setup(self, *documents):
        collection = DocumentCollection()
        for document in documents:
            collection.add_document(document)
        inverted, _paths = IndexBuilder(collection).build()
        return collection, inverted

    def test_sibling_pair_interconnected(self):
        collection, inverted = self._setup(
            "<r><item><partner>usa</partner><share>70</share></item></r>"
        )
        answers = xsearch(collection, inverted, ["usa", "70"])
        assert len(answers) == 1

    def test_cross_item_pair_rejected(self):
        """The defining XSEarch behaviour: the path between nodes of two
        different items passes two 'item' tags -> not interconnected."""
        collection, inverted = self._setup(
            "<r>"
            "<item><partner>usa</partner><share>70</share></item>"
            "<item><partner>germany</partner><share>3</share></item>"
            "</r>"
        )
        answers = xsearch(collection, inverted, ["usa", "3"])
        assert answers == []

    def test_interconnected_direct_check(self):
        collection, inverted = self._setup(
            "<r><a><x>k1</x></a><b><y>k2</y></b></r>"
        )
        nodes = list(collection.iter_nodes())
        x = next(node for node in nodes if node.tag == "x")
        y = next(node for node in nodes if node.tag == "y")
        assert interconnected(collection, x, y)

    def test_ancestor_descendant_interconnected(self):
        collection, inverted = self._setup("<r><a><b>k1 k2</b></a></r>")
        answers = xsearch(collection, inverted, ["k1", "k2"])
        assert len(answers) == 1

    def test_cross_document_not_interconnected(self):
        collection, inverted = self._setup(
            "<r><x>k1</x></r>", "<r><x>k2</x></r>"
        )
        assert xsearch(collection, inverted, ["k1", "k2"]) == []

    def test_seda_cousin_connection_is_what_xsearch_drops(self):
        """The paper's two trade_country/percentage connections: the
        sibling one survives XSEarch, the cousin one cannot."""
        collection, inverted = self._setup(
            "<country>"
            "<import_partners>"
            "<item><trade_country>china</trade_country>"
            "<percentage>15</percentage></item>"
            "<item><trade_country>canada</trade_country>"
            "<percentage>16.9</percentage></item>"
            "</import_partners>"
            "</country>"
        )
        sibling = xsearch(collection, inverted, ["china", "15"])
        cousin = xsearch(collection, inverted, ["china", "16.9"])
        assert len(sibling) == 1
        assert cousin == []
