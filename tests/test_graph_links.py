"""Data graph construction, link discovery, and traversal."""

import pytest

from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph, Edge, EdgeKind
from repro.model.links import LinkDiscoverer, ValueLinkSpec


def _node_by_tag(collection, tag, doc_id=None):
    for node in collection.iter_nodes():
        if node.tag == tag and (doc_id is None or node.doc_id == doc_id):
            return node
    raise AssertionError(f"no node with tag {tag}")


class TestGraphBasics:
    def test_tree_neighbors(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        root = figure2_collection.document(0).root
        neighbors = graph.tree_neighbors(root.node_id)
        assert set(neighbors) == set(root.child_ids)

    def test_child_edges_rejected(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, EdgeKind.CHILD)

    def test_edge_validates_endpoints(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        with pytest.raises(KeyError):
            graph.add_edge(0, 10**9, EdgeKind.IDREF)

    def test_edge_object_in_both_adjacencies(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        edge = graph.add_edge(0, 5, EdgeKind.VALUE, label="x")
        assert edge in graph.out_edges(0)
        assert edge in graph.in_edges(5)
        assert 5 in graph.link_neighbors(0)
        assert 0 in graph.link_neighbors(5)


class TestShortestPaths:
    def test_parent_child_distance(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        root = figure2_collection.document(0).root
        child = root.child_ids[0]
        assert graph.distance(root.node_id, child) == 1

    def test_sibling_distance(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        item = _node_by_tag(figure2_collection, "item", doc_id=0)
        tc, pct = item.child_ids
        assert graph.distance(tc, pct) == 2

    def test_self_distance_zero(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        assert graph.distance(3, 3) == 0

    def test_cross_document_unreachable_without_links(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        a = figure2_collection.document(0).root.node_id
        b = figure2_collection.document(1).root.node_id
        assert graph.distance(a, b, max_hops=10) is None

    def test_max_hops_bound(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        root = figure2_collection.document(0).root
        leaf = _node_by_tag(figure2_collection, "percentage", doc_id=0)
        assert graph.distance(root.node_id, leaf.node_id, max_hops=2) is None
        assert graph.distance(root.node_id, leaf.node_id, max_hops=6) == 4

    def test_link_shortcut_used(self, linked_collection):
        collection, graph = linked_collection
        city_ref = _node_by_tag(collection, "country_ref")
        city_root = collection.document(1).root
        country = collection.document(0).root
        # The element carrying the idref attribute (country_ref) links
        # directly to the country root; the city root is one hop more.
        assert graph.distance(city_ref.node_id, country.node_id) == 1
        assert graph.distance(city_root.node_id, country.node_id) == 2


class TestConnectivity:
    def test_same_document_always_connects(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        nodes = [n.node_id for n in figure2_collection.document(0).nodes[:6]]
        assert graph.connects(nodes)

    def test_cross_document_needs_links(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        a = figure2_collection.document(0).root.node_id
        b = figure2_collection.document(1).root.node_id
        assert not graph.connects([a, b], max_hops=10)

    def test_steiner_size_single_node(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        assert graph.steiner_size([3]) == 0

    def test_steiner_size_duplicates_ignored(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        assert graph.steiner_size([3, 3, 3]) == 0

    def test_steiner_disconnected_is_none(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        a = figure2_collection.document(0).root.node_id
        b = figure2_collection.document(1).root.node_id
        assert graph.steiner_size([a, b], max_hops=8) is None


class TestIdrefDiscovery:
    def test_idref_edge_created(self, linked_collection):
        collection, graph = linked_collection
        assert len(graph.edges) == 1
        edge = graph.edges[0]
        assert edge.kind is EdgeKind.IDREF
        source = collection.node(edge.source_id)
        target = collection.node(edge.target_id)
        assert source.tag == "country_ref"
        assert target.tag == "country"

    def test_idrefs_multi_valued(self):
        collection = DocumentCollection()
        collection.add_document('<a id="x"/>')
        collection.add_document('<a id="y"/>')
        collection.add_document('<b refs="x y z"/>')
        graph = DataGraph(collection)
        edges = LinkDiscoverer(graph).discover_idrefs()
        assert len(edges) == 2  # z dangles silently

    def test_dangling_idref_ignored(self):
        collection = DocumentCollection()
        collection.add_document('<b ref="missing"/>')
        graph = DataGraph(collection)
        assert LinkDiscoverer(graph).discover_idrefs() == []


class TestXlinkDiscovery:
    def test_fragment_href(self):
        collection = DocumentCollection()
        collection.add_document('<a id="t1"><name>x</name></a>')
        collection.add_document('<b href="#t1"/>')
        graph = DataGraph(collection)
        edges = LinkDiscoverer(graph).discover_xlinks()
        assert len(edges) == 1
        assert edges[0].kind is EdgeKind.XLINK

    def test_external_url_ignored(self):
        collection = DocumentCollection()
        collection.add_document('<b href="http://example.com/x"/>')
        graph = DataGraph(collection)
        assert LinkDiscoverer(graph).discover_xlinks() == []


class TestValueLinks:
    def test_value_join_on_node_value(self, figure2_collection):
        graph = DataGraph(figure2_collection)
        spec = ValueLinkSpec(
            primary_path="/country",
            foreign_path="/country/economy/import_partners/item/trade_country",
            label="trade partner",
        )
        edges = LinkDiscoverer(graph).apply_value_links([spec])
        # Mexico imports from the United States: 1 foreign node matches
        # 2 US documents (2002, 2006).
        assert len(edges) == 2
        assert all(edge.label == "trade partner" for edge in edges)

    def test_no_self_link(self):
        collection = DocumentCollection()
        collection.add_document("<a><x>same</x></a>")
        graph = DataGraph(collection)
        spec = ValueLinkSpec(primary_path="/a/x", foreign_path="/a/x")
        assert LinkDiscoverer(graph).apply_value_links([spec]) == []

    def test_edge_equality_and_hash(self):
        a = Edge(1, 2, EdgeKind.IDREF, "l")
        b = Edge(1, 2, EdgeKind.IDREF, "l")
        c = Edge(1, 2, EdgeKind.VALUE, "l")
        assert a == b and hash(a) == hash(b)
        assert a != c
