"""The serving-path battery: lifecycle, consistency, and admission.

``repro serve`` turns the system into a long-running daemon; this file
tests the daemon the way operators meet it -- over a real socket --
plus unit coverage for the two primitives underneath it
(:class:`~repro.serving.rwlock.ReadWriteLock`,
:class:`~repro.serving.admission.AdmissionController`) and the
socket-free :class:`~repro.serving.app.ServingApp` protocol surface:

* start / serve / online-ingest / drain over HTTP, with the drained
  directory fsck-clean and its write-ahead log empty;
* concurrent readers against a mutating writer, every answer checked
  against ground truth at the generation it was served under;
* admission rejection (429 + ``Retry-After``, per-client and global)
  and recovery once slots free up, driven deterministically via the
  debug-only test-delay header;
* ``/healthz`` and ``/metrics`` (JSON and Prometheus text) contents;
* ``/admin/reload`` swapping in the on-disk snapshot + WAL;
* the ``repro serve`` CLI as a real subprocess, drained over HTTP and
  via SIGTERM;
* the cross-process fault-injection seam (``REPRO_KILL_SWITCH``),
  regression-testing that a subprocess really dies at its own durable
  seams (monkeypatching never crosses exec -- see
  ``repro.testing.faults``).
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.query.term import Query
from repro.serving import (
    AdmissionController,
    ReadWriteLock,
    ServerError,
    ServingApp,
    ServingClient,
    load_serving_system,
    start_server,
)
from repro.serving.admission import (
    REJECT_CLIENT_LIMIT,
    REJECT_DRAINING,
    REJECT_SATURATED,
)
from repro.serving.app import parse_query_payload, result_to_dict
from repro.storage.snapshot import fsck_report
from repro.storage.wal import verify_wal, wal_file_name
from repro.system import Seda

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _doc(index):
    names = ("France", "Spain", "Chile", "Japan", "Ghana", "Peru")
    name = names[index % len(names)]
    return (
        f"doc-{index}",
        f"<country><name>{name} city{index}</name>"
        f"<gdp>{100 * (index + 1)}</gdp>"
        f"<year>{2000 + index}</year></country>",
    )


BASE_DOCS = [_doc(index) for index in range(6)]
QUERY = "name:* ;; gdp:*"


def _build_snapshot(tmp_path, name="seda.snapshot"):
    path = str(tmp_path / name)
    Seda.from_documents(list(BASE_DOCS)).save(path)
    return path


def _offline_results(documents, query=QUERY, k=10):
    """Ground truth: a fresh offline build over ``documents``."""
    system = Seda.from_documents(list(documents))
    results = system.topk.search(parse_query_payload(query), k=k)
    return [result_to_dict(result) for result in results]


# -- the primitives ----------------------------------------------------------------


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()       # two readers coexist
        lock.release_read()

        acquired = []

        def writer():
            with lock.write():
                acquired.append("write")

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        assert acquired == []     # blocked behind the live reader
        lock.release_read()
        thread.join(timeout=5)
        assert acquired == ["write"]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        order = []

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("reader")

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        time.sleep(0.05)          # writer is now waiting on the reader
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)
        assert order == []        # late reader must queue behind the writer
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert order == ["writer", "reader"]


class TestAdmissionController:
    def test_global_saturation(self):
        control = AdmissionController(max_inflight=2, per_client=2)
        assert control.admit("a")
        assert control.admit("b")
        decision = control.admit("c")
        assert not decision
        assert decision.reason == REJECT_SATURATED
        assert decision.retry_after == 1
        control.release("a")
        assert control.admit("c")
        assert control.inflight == 2
        assert control.peak_inflight == 2

    def test_per_client_limit(self):
        control = AdmissionController(max_inflight=10, per_client=1)
        assert control.admit("greedy")
        decision = control.admit("greedy")
        assert not decision
        assert decision.reason == REJECT_CLIENT_LIMIT
        assert control.admit("other")   # global budget still open
        control.release("greedy")
        assert control.admit("greedy")

    def test_drain_rejects_and_quiesces(self):
        control = AdmissionController(max_inflight=4, per_client=4)
        assert control.admit("a")
        control.begin_drain()
        decision = control.admit("b")
        assert not decision and decision.reason == REJECT_DRAINING
        # Draining is a transient condition like saturation: the
        # rejection carries the backoff hint too.
        assert decision.retry_after == control.retry_after
        assert not control.wait_idle(timeout=0.05)   # still one in flight
        control.release("a")
        assert control.wait_idle(timeout=5)

    def test_counters_shape(self):
        control = AdmissionController(max_inflight=1, per_client=1)
        control.admit("a")
        control.admit("a")              # rejected: saturated
        counters = control.counters()
        assert counters["inflight"] == 1
        assert counters["admitted_total"] == 1
        assert counters["rejected"][REJECT_SATURATED] == 1
        assert counters["draining"] is False

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(per_client=0)

    def test_unpaired_release_clamps_at_zero(self):
        # Regression: a buggy caller releasing without a matching
        # admit used to drive ``inflight`` negative, silently widening
        # the admission window (and wedging ``wait_idle`` semantics).
        control = AdmissionController(max_inflight=2, per_client=2)
        control.release("ghost")
        counters = control.counters()
        assert counters["inflight"] == 0
        assert counters["unpaired_release"] == 1

        assert control.admit("a")
        control.release("a")
        control.release("a")            # second release is unpaired
        counters = control.counters()
        assert counters["inflight"] == 0
        assert counters["unpaired_release"] == 2

        # The window did not widen: capacity is still exactly 2.
        assert control.admit("x")
        assert control.admit("y")
        assert not control.admit("z")
        assert control.wait_idle(timeout=0) is False
        control.release("x")
        control.release("y")
        assert control.wait_idle(timeout=5)


# -- the socket-free protocol surface ----------------------------------------------


class TestServingAppProtocol:
    @pytest.fixture
    def app(self, tmp_path):
        snapshot = _build_snapshot(tmp_path)
        return ServingApp(load_serving_system(snapshot), snapshot)

    def test_unknown_path_404(self, app):
        assert app.handle("GET", "/nope").status == 404

    def test_wrong_method_405(self, app):
        response = app.handle("GET", "/search")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"

    def test_malformed_query_400(self, app):
        assert app.handle("POST", "/search", body={}).status == 400
        assert app.handle(
            "POST", "/search", body={"query": 7}
        ).status == 400
        assert app.handle(
            "POST", "/add_documents", body={"documents": []}
        ).status == 400

    def test_draining_rejects_admitted_endpoints_503(self, app):
        app.admission.begin_drain()
        response = app.handle("POST", "/search", body={"query": QUERY})
        assert response.status == 503
        assert response.payload["reason"] == REJECT_DRAINING
        # Like the 429s, the 503 tells clients when to come back.
        assert response.headers["Retry-After"] == str(
            app.admission.retry_after
        )
        assert response.payload["retry_after"] == app.admission.retry_after
        # Monitoring still answers.
        assert app.handle("GET", "/healthz").status == 200

    def test_drain_is_once_only(self, app):
        assert app.handle("POST", "/admin/drain").status == 200
        assert app.state == "drained"
        assert app.handle("POST", "/admin/drain").status == 409
        assert app.handle("POST", "/admin/reload").status == 409


# -- the real socket ---------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    """A started server over a fresh snapshot; stops on teardown."""
    snapshot = _build_snapshot(tmp_path)
    server = start_server(snapshot)
    try:
        yield snapshot, server
    finally:
        server.stop()


class TestServerLifecycle:
    def test_serve_ingest_drain_roundtrip(self, served):
        snapshot, server = served
        with ServingClient(server.host, server.port) as client:
            health = client.healthz()
            assert health["status"] == "serving"
            assert health["sharded"] is False
            assert health["documents"] == len(BASE_DOCS)
            assert health["snapshot"] == snapshot

            before = client.search(QUERY)
            assert before["results"] == _offline_results(BASE_DOCS)

            extra = _doc(100)
            added = client.add_documents([list(extra)])
            assert added["added"] == 1
            assert added["documents"] == len(BASE_DOCS) + 1
            assert added["generation"] != before["generation"]

            # Acknowledged means WAL-durable, before any drain.
            wal = verify_wal(wal_file_name(snapshot))
            assert wal["present"] and wal["records"] == 1

            after = client.search(QUERY)
            assert after["results"] == _offline_results(BASE_DOCS + [extra])

            drained = client.drain()
            assert drained["drained"] is True
            assert drained["documents"] == len(BASE_DOCS) + 1

        # The listener shuts itself down after the drain response.
        assert server.wait(timeout=10)

        # The directory left behind is exactly a clean cold-start:
        # fsck-clean snapshot, empty WAL, and the online write inside.
        report = fsck_report(snapshot)
        assert report["ok"], report
        wal = verify_wal(wal_file_name(snapshot))
        assert wal["records"] == 0 and wal["error"] is None
        reloaded = Seda.load(snapshot)
        assert len(reloaded.collection.documents) == len(BASE_DOCS) + 1

    def test_search_many_and_explain(self, served):
        _, server = served
        queries = [QUERY, "year:*", [["name", "france"]]]
        with ServingClient(server.host, server.port) as client:
            batch = client.search_many(queries, k=5)
            assert len(batch["results"]) == len(queries)
            single = [
                client.search(query, k=5)["results"] for query in queries
            ]
            assert batch["results"] == single

            report = client.explain(QUERY, k=5)
            assert report["k"] == 5
            assert len(report["results"]) == len(
                client.search(QUERY, k=5)["results"]
            )
            assert report["per_term"]

    def test_metrics_exposition(self, served):
        _, server = served
        with ServingClient(server.host, server.port) as client:
            client.search(QUERY)
            client.search(QUERY)        # second hit comes from the cache
            tree = client.metrics(as_json=True)
            assert tree["server"]["requests_total"]["search"] == 2
            assert tree["server"]["documents"] == len(BASE_DOCS)
            assert tree["admission"]["admitted_total"] == 2
            assert tree["registry"]["total_queries"] == 2
            (row,) = tree["registry"]["fingerprints"].values()
            assert row["count"] == 2 and row["cache_hits"] == 1

            text = client.metrics(as_json=False)
            assert f"repro_documents {len(BASE_DOCS)}" in text
            assert 'repro_requests_total{endpoint="search"} 2' in text
            assert "repro_queries_total 2" in text
            assert 'quantile="p99"' in text

    def test_reload_keeps_online_writes(self, served):
        snapshot, server = served
        extra = _doc(200)
        with ServingClient(server.host, server.port) as client:
            client.add_documents([list(extra)])
            reloaded = client.reload()
            # The reload replays the WAL beside the snapshot, so the
            # acknowledged-but-not-snapshotted write survives the swap.
            assert reloaded["reloaded"] is True
            assert reloaded["documents"] == len(BASE_DOCS) + 1
            results = client.search(QUERY)["results"]
            assert results == _offline_results(BASE_DOCS + [extra])

    def test_concurrent_readers_with_online_writer(self, served):
        _, server = served
        rounds, readers = 5, 3
        errors = []
        observed = []
        truth = {}
        truth_lock = threading.Lock()

        def snapshot_truth(documents, generation):
            with truth_lock:
                truth[json.dumps(generation)] = _offline_results(documents)

        def reader():
            try:
                with ServingClient(server.host, server.port) as client:
                    for _ in range(rounds):
                        response = client.search(QUERY)
                        observed.append(
                            (json.dumps(response["generation"]),
                             response["results"])
                        )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def writer():
            try:
                documents = list(BASE_DOCS)
                with ServingClient(server.host, server.port) as client:
                    snapshot_truth(
                        documents, client.healthz()["generation"]
                    )
                    for index in range(3):
                        extra = _doc(300 + index)
                        documents.append(extra)
                        added = client.add_documents([list(extra)])
                        snapshot_truth(documents, added["generation"])
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(readers)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(observed) == rounds * readers
        for generation, results in observed:
            assert generation in truth, (
                f"answer served under unknown generation {generation}"
            )
            assert results == truth[generation], (
                f"stale answer at generation {generation}"
            )


class TestShardedServerLifecycle:
    def test_sharded_serve_ingest_drain(self, tmp_path):
        from repro.shard import ShardedSeda
        from repro.storage.wal import sharded_wal_file_name

        directory = str(tmp_path / "seda.shards")
        ShardedSeda.from_documents(
            list(BASE_DOCS), shards=2, parallel=False
        ).save(directory)
        server = start_server(directory)
        try:
            with ServingClient(server.host, server.port) as client:
                health = client.healthz()
                assert health["sharded"] is True
                assert health["documents"] == len(BASE_DOCS)

                extra = _doc(500)
                client.add_documents([list(extra)])
                results = client.search(QUERY)["results"]
                offline = ShardedSeda.from_documents(
                    list(BASE_DOCS) + [extra], shards=2, parallel=False
                ).search(parse_query_payload(QUERY), k=10)
                assert results == [
                    result_to_dict(result) for result in offline
                ]

                report = client.explain(QUERY, k=5)
                assert report["sharded"] is True
                assert len(report["per_shard"]) == 2

                assert client.drain()["drained"] is True
            assert server.wait(timeout=10)
        finally:
            server.stop()
        assert fsck_report(directory)["ok"]
        wal = verify_wal(sharded_wal_file_name(directory))
        assert wal["records"] == 0 and wal["error"] is None
        reloaded = ShardedSeda.load(directory)
        assert reloaded.document_count == len(BASE_DOCS) + 1


class TestAdmissionOverHttp:
    @pytest.fixture
    def debug_server(self, tmp_path):
        """A tiny admission window + the test-delay header enabled."""
        snapshot = _build_snapshot(tmp_path)
        app = ServingApp(
            load_serving_system(snapshot), snapshot,
            max_inflight=2, per_client=1, retry_after=3, debug=True,
        )
        from repro.serving.server import ReproServer

        server = ReproServer(app).start()
        try:
            yield server
        finally:
            server.stop()

    def _hold_slot(self, server, client_id, seconds):
        """A thread holding one admitted slot open for ``seconds``."""
        def hold():
            with ServingClient(server.host, server.port,
                               client_id=client_id) as client:
                client.search(QUERY, test_delay=seconds)

        thread = threading.Thread(target=hold)
        thread.start()
        return thread

    def _await_inflight(self, server, count):
        with ServingClient(server.host, server.port) as client:
            deadline = time.monotonic() + 10
            while client.healthz()["inflight"] < count:
                assert time.monotonic() < deadline, "slots never filled"
                time.sleep(0.01)

    def test_per_client_then_global_rejection_then_recovery(
        self, debug_server
    ):
        server = debug_server
        holders = [self._hold_slot(server, "holder-1", 0.8)]
        self._await_inflight(server, 1)

        # Same identity as the holder, global budget still open: the
        # per-client cap fires (saturation is checked first, so this
        # must happen below max_inflight).
        with ServingClient(server.host, server.port,
                           client_id="holder-1") as client:
            with pytest.raises(ServerError) as excinfo:
                client.search(QUERY)
        assert excinfo.value.status == 429
        assert excinfo.value.payload["reason"] == REJECT_CLIENT_LIMIT
        assert excinfo.value.retry_after == 3.0

        holders.append(self._hold_slot(server, "holder-2", 0.8))
        self._await_inflight(server, 2)

        # A fresh identity: the global max_inflight=2 cap fires.
        with ServingClient(server.host, server.port,
                           client_id="fresh") as client:
            with pytest.raises(ServerError) as excinfo:
                client.search(QUERY)
            assert excinfo.value.status == 429
            assert excinfo.value.payload["reason"] == REJECT_SATURATED

            # Monitoring bypasses admission even at saturation.
            assert client.healthz()["inflight"] == 2

            for thread in holders:
                thread.join(timeout=30)
            # Slots released: the same client is admitted again.
            assert client.search(QUERY)["results"]

        rejected = server.app.admission.counters()["rejected"]
        assert rejected[REJECT_CLIENT_LIMIT] == 1
        assert rejected[REJECT_SATURATED] == 1

    def test_draining_503_carries_retry_after(self, debug_server):
        # A client hitting a draining server gets the same machine-
        # readable backoff as a saturated one -- over the real socket,
        # surfaced on ServerError by ServingClient.
        server = debug_server
        server.app.admission.begin_drain()
        with ServingClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.search(QUERY)
        assert excinfo.value.status == 503
        assert excinfo.value.payload["reason"] == REJECT_DRAINING
        assert excinfo.value.retry_after == 3.0
        assert excinfo.value.payload["retry_after"] == 3


# -- the CLI subprocess ------------------------------------------------------------


def _spawn_serve(snapshot, env_extra=None):
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO_ROOT, "src"),
               **(env_extra or {}))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--snapshot", snapshot, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO_ROOT,
    )
    banner = process.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    if match is None:
        process.kill()
        raise AssertionError(f"no address in serve banner: {banner!r}"
                             f"\n{process.stdout.read()}")
    return process, match.group(1), int(match.group(2))


class TestServeCli:
    def test_subprocess_serve_drain_exits_clean(self, tmp_path):
        snapshot = _build_snapshot(tmp_path)
        process, host, port = _spawn_serve(snapshot)
        try:
            with ServingClient(host, port) as client:
                assert client.healthz()["status"] == "serving"
                client.add_documents([list(_doc(400))])
                assert client.drain()["drained"] is True
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
        assert "drained: snapshot committed" in process.stdout.read()
        assert fsck_report(snapshot)["ok"]
        assert verify_wal(wal_file_name(snapshot))["records"] == 0

    def test_subprocess_sigterm_drains(self, tmp_path):
        snapshot = _build_snapshot(tmp_path)
        process, host, port = _spawn_serve(snapshot)
        try:
            with ServingClient(host, port) as client:
                client.add_documents([list(_doc(401))])
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
        # SIGTERM took the same graceful path as /admin/drain.
        assert fsck_report(snapshot)["ok"]
        assert verify_wal(wal_file_name(snapshot))["records"] == 0
        reloaded = Seda.load(snapshot)
        assert len(reloaded.collection.documents) == len(BASE_DOCS) + 1


# -- the cross-process fault seam --------------------------------------------------

_KILL_CHILD = """
import sys
from repro.testing.faults import maybe_install_kill_switch_from_env
from repro.system import Seda

maybe_install_kill_switch_from_env()
seda = Seda.from_documents(["<a>payload</a>"])
seda.save(sys.argv[1])
print("SURVIVED", flush=True)
"""


class TestKillSwitchEnv:
    def test_env_parsing(self, monkeypatch):
        from repro.testing import faults

        monkeypatch.delenv(faults.KILL_SWITCH_ENV, raising=False)
        assert faults.maybe_install_kill_switch_from_env() is None
        assert faults.maybe_install_kill_switch_from_env(
            {faults.KILL_SWITCH_ENV: "garbage"}) is None
        assert faults.maybe_install_kill_switch_from_env(
            {faults.KILL_SWITCH_ENV: "0"}) is None
        state = faults.maybe_install_kill_switch_from_env(
            {faults.KILL_SWITCH_ENV: "7"})
        try:
            assert state is not None and state["limit"] == 7
        finally:
            faults.uninstall_kill_switch()

    def _run_child(self, tmp_path, env_extra):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        env.pop("REPRO_KILL_SWITCH", None)
        env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-c", _KILL_CHILD,
             str(tmp_path / "child.snapshot")],
            capture_output=True, text=True, env=env, timeout=120,
        )

    def test_armed_subprocess_dies_at_first_durable_operation(
        self, tmp_path
    ):
        # The regression: the switch must fire in the *subprocess* --
        # in-process monkeypatching never crosses the exec boundary.
        result = self._run_child(tmp_path, {"REPRO_KILL_SWITCH": "1"})
        assert result.returncode == -signal.SIGKILL
        assert "SURVIVED" not in result.stdout
        assert not os.path.exists(tmp_path / "child.snapshot")

    def test_unarmed_subprocess_survives(self, tmp_path):
        result = self._run_child(tmp_path, {})
        assert result.returncode == 0, result.stdout
        assert "SURVIVED" in result.stdout
        assert os.path.exists(tmp_path / "child.snapshot")
