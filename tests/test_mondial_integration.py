"""End-to-end over linked Mondial data: IDREF cross-document flow.

Covers the graph-data side of the paper (Definition 2 edges 2-3 and
Figure 1's dashed relationships): searching across documents, link
connections in the summary, and complete results through an IDREF
cross-twig join.
"""

import pytest

from repro.datasets.mondial import MondialGenerator
from repro.model.graph import EdgeKind
from repro.summaries.connection import LinkConnection
from repro.system import Seda


@pytest.fixture(scope="module")
def seda():
    return Seda(MondialGenerator(scale=0.005).build_collection())


@pytest.fixture(scope="module")
def city_query(seda):
    """A (city-name, country) query whose answers span documents."""
    city = next(
        document for document in seda.collection.documents
        if document.root.tag == "city"
    )
    name = next(node.value for node in city.nodes if node.tag == "name")
    return seda.search([("name", f'"{name}"'), ("/country", "*")], k=5)


class TestLinkedSearch:
    def test_idref_edges_discovered_at_construction(self, seda):
        kinds = {edge.kind for edge in seda.graph.edges}
        assert EdgeKind.IDREF in kinds

    def test_cross_document_results(self, seda, city_query):
        assert city_query.results
        for result in city_query.results:
            name_doc = seda.collection.node(result.node_ids[0]).doc_id
            country_doc = seda.collection.node(result.node_ids[1]).doc_id
            assert name_doc != country_doc

    def test_connection_summary_reports_idref(self, seda, city_query):
        connections = [
            connection
            for _pair, connection, _support in
            city_query.connection_summary.all_connections()
        ]
        assert connections
        assert any(
            isinstance(connection, LinkConnection)
            and connection.kind is EdgeKind.IDREF
            for connection in connections
        )


class TestIdrefCompleteResults:
    def test_cross_twig_join_via_idref(self, seda, city_query):
        (pair, connection, _support) = (
            city_query.connection_summary.all_connections()[0]
        )
        assert isinstance(connection, LinkConnection)
        chosen = city_query.refine_connections([(pair, connection)])
        assert chosen.results  # the top-k tuples instantiate the link
        table = chosen.complete_results()
        assert len(table) >= 1
        # Every row respects the chosen link connection.
        for row in table.rows:
            assert connection.matches_instance(
                seda.collection, seda.graph, row[0], row[1],
                max_hops=seda.max_hops,
            )

    def test_complete_rows_join_correct_country(self, seda, city_query):
        """The joined country must be the one the city references."""
        (pair, connection, _support) = (
            city_query.connection_summary.all_connections()[0]
        )
        chosen = city_query.refine_connections([(pair, connection)])
        table = chosen.complete_results()
        for name_id, country_id in table.rows:
            name_node = seda.collection.node(name_id)
            city_doc = seda.collection.document(name_node.doc_id)
            ref_attr = next(
                node for node in city_doc.nodes if node.tag == "@ref"
            )
            country_root = seda.collection.node(country_id)
            id_attr = seda.collection.node(country_root.child_ids[0])
            assert id_attr.tag == "@id"
            assert id_attr.value == ref_attr.value


class TestMondialDataguides:
    def test_guides_cover_root_types(self, seda):
        roots = {
            sorted(guide.paths)[0].split("/")[1]
            for guide in seda.dataguides
        }
        assert {"city", "country"} <= roots

    def test_links_lifted_to_guides(self, seda):
        assert seda.dataguides.links
        kinds = {link[4] for link in seda.dataguides.links}
        assert EdgeKind.IDREF in kinds
