"""Relative XML keys and the facts/dimensions registry."""

import pytest

from repro.cube.keys import KeyResolutionError, RelativeKey
from repro.cube.registry import CubeDefinition, Registry
from repro.storage.node_store import NodeStore

PCT_PATH = "/country/economy/import_partners/item/percentage"
TC_PATH = "/country/economy/import_partners/item/trade_country"


def _percentage_nodes(collection):
    return [
        node for node in collection.iter_nodes()
        if node.path == PCT_PATH
    ]


class TestRelativeKeyValidation:
    def test_valid_components(self):
        RelativeKey(["/country", "/country/year", "../trade_country", "."])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RelativeKey([])

    @pytest.mark.parametrize("component", ["country", "year/x", "-bad"])
    def test_bad_component_rejected(self, component):
        with pytest.raises(ValueError):
            RelativeKey([component])


class TestResolution:
    def test_paper_percentage_key(self, figure2_collection):
        """The running example: (/country, /country/year,
        ../trade_country) pairs China with 15% and Canada with 16.9%."""
        store = NodeStore(figure2_collection)
        key = RelativeKey(["/country", "/country/year", "../trade_country"])
        by_value = {}
        for node in _percentage_nodes(figure2_collection):
            values = key.resolve_values(
                figure2_collection, store, node.node_id
            )
            by_value[node.value] = values
        assert by_value["15%"] == ("United States", "2006", "China")
        assert by_value["16.9%"] == ("United States", "2006", "Canada")
        assert by_value["70.6%"] == ("Mexico", "2003", "United States")

    def test_dot_resolves_to_self(self, figure2_collection):
        store = NodeStore(figure2_collection)
        key = RelativeKey(["."])
        node = _percentage_nodes(figure2_collection)[0]
        assert key.resolve_nodes(
            figure2_collection, store, node.node_id
        ) == [node.node_id]

    def test_absolute_scoped_to_document(self, figure2_collection):
        store = NodeStore(figure2_collection)
        key = RelativeKey(["/country/year"])
        for node in _percentage_nodes(figure2_collection):
            (year_id,) = key.resolve_nodes(
                figure2_collection, store, node.node_id
            )
            assert figure2_collection.node(year_id).doc_id == node.doc_id

    def test_missing_component_raises(self, figure2_collection):
        store = NodeStore(figure2_collection)
        key = RelativeKey(["/country/nonexistent"])
        node = _percentage_nodes(figure2_collection)[0]
        with pytest.raises(KeyResolutionError):
            key.resolve_nodes(figure2_collection, store, node.node_id)

    def test_ambiguous_component_raises(self, figure2_collection):
        store = NodeStore(figure2_collection)
        # /country/economy/import_partners/item is ambiguous in usa-2006.
        key = RelativeKey(["/country/economy/import_partners/item"])
        node = _percentage_nodes(figure2_collection)[0]
        with pytest.raises(KeyResolutionError) as excinfo:
            key.resolve_nodes(figure2_collection, store, node.node_id)
        assert excinfo.value.count == 2

    def test_relative_parent_navigation(self, figure2_collection):
        store = NodeStore(figure2_collection)
        key = RelativeKey(["../../../../year"])
        node = _percentage_nodes(figure2_collection)[0]
        (year_id,) = key.resolve_nodes(
            figure2_collection, store, node.node_id
        )
        assert figure2_collection.node(year_id).tag == "year"


class TestUniqueness:
    def test_paper_key_unique(self, figure2_collection):
        store = NodeStore(figure2_collection)
        key = RelativeKey(["/country", "/country/year", "../trade_country"])
        nodes = [n.node_id for n in _percentage_nodes(figure2_collection)]
        unique, duplicates = key.verify_uniqueness(
            figure2_collection, store, nodes
        )
        assert unique
        assert duplicates == []

    def test_underspecified_key_not_unique(self, figure2_collection):
        """Without the trade_country component, the two percentages of
        usa-2006 collide -- the paper's motivation for relative keys."""
        store = NodeStore(figure2_collection)
        key = RelativeKey(["/country", "/country/year"])
        nodes = [n.node_id for n in _percentage_nodes(figure2_collection)]
        unique, duplicates = key.verify_uniqueness(
            figure2_collection, store, nodes
        )
        assert not unique
        assert ("United States", "2006") in duplicates

    def test_same_node_twice_is_fine(self, figure2_collection):
        store = NodeStore(figure2_collection)
        key = RelativeKey(["/country", "/country/year"])
        node = _percentage_nodes(figure2_collection)[0].node_id
        unique, _ = key.verify_uniqueness(
            figure2_collection, store, [node, node]
        )
        assert unique


class TestRegistry:
    def test_gdp_schema_evolution_contexts(self):
        """The GDP fact spans both GDP and GDP_ppp contexts (the
        paper's schema-evolution example)."""
        registry = Registry()
        key = RelativeKey(["/country", "/country/year"])
        fact = registry.add_fact(
            "GDP",
            [("/country/economy/GDP", key), ("/country/economy/GDP_ppp", key)],
        )
        assert fact.contexts == {
            "/country/economy/GDP", "/country/economy/GDP_ppp",
        }
        assert fact.matches_paths({"/country/economy/GDP"})
        assert fact.matches_paths(
            {"/country/economy/GDP", "/country/economy/GDP_ppp"}
        )

    def test_subset_match_semantics(self):
        registry = Registry()
        key = RelativeKey(["/country"])
        fact = registry.add_fact("f", [("/a", key), ("/b", key)])
        assert fact.matches_paths({"/a"})
        assert not fact.matches_paths({"/a", "/c"})
        assert fact.overlaps_paths({"/a", "/c"})
        assert not fact.overlaps_paths({"/c"})
        assert not fact.matches_paths(set())

    def test_full_and_partial_matches(self):
        registry = Registry()
        key = RelativeKey(["/x"])
        registry.add_fact("f", [("/a", key)])
        registry.add_dimension("d", [("/a", key), ("/b", key)])
        full = registry.full_matches({"/a"})
        assert {definition.name for definition in full} == {"f", "d"}
        partial = registry.partial_matches({"/b", "/c"})
        assert {definition.name for definition in partial} == {"d"}

    def test_dimension_for_context(self):
        registry = Registry()
        key = RelativeKey(["/x"])
        registry.add_dimension("year", [("/country/year", key)])
        assert registry.dimension_for_context("/country/year").name == "year"
        assert registry.dimension_for_context("/zzz") is None

    def test_remove(self):
        registry = Registry()
        key = RelativeKey(["/x"])
        registry.add_fact("f", [("/a", key)])
        registry.remove_fact("f")
        assert not registry.has_fact("f")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            CubeDefinition("x", "measure", [("/a", RelativeKey(["/x"]))])

    def test_key_lists_accepted(self):
        definition = CubeDefinition("x", "fact", [("/a", ["/k1", "."])])
        assert isinstance(definition.key_for_context("/a"), RelativeKey)
        assert definition.key_for_context("/missing") is None
