"""Every example script must run cleanly (smoke integration tests)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs(script, capsys, monkeypatch):
    # Examples take an optional scale argument; pin a small one so the
    # suite stays fast and deterministic.
    monkeypatch.setattr(sys, "argv", [str(script), "0.01"])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "factbook_trade_analysis",
        "mondial_geography",
        "schema_evolution_gdp",
        "heuristics_comparison",
        "discovery_pay_as_you_go",
        "sharded_search",
    } <= names
