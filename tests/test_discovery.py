"""Automatic fact/dimension/key discovery (the Section 8 extension)."""

import pytest

from repro.cube.discovery import (
    Candidate,
    FactDimensionDiscoverer,
    discover_key,
)
from repro.cube.registry import Registry
from repro.storage.node_store import NodeStore

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"


@pytest.fixture(scope="module")
def factbook():
    from repro.datasets.factbook import FactbookGenerator

    collection = FactbookGenerator(scale=0.01).build_collection()
    return collection, NodeStore(collection)


class TestKeyDiscovery:
    def test_percentage_key_found(self, factbook):
        """The discovered key must verify uniqueness on the data --
        the paper's GORDIAN future-work item."""
        collection, store = factbook
        key = discover_key(collection, store, PCT_PATH)
        assert key is not None
        node_ids = store.by_path(PCT_PATH)
        unique, _ = key.verify_uniqueness(collection, store, node_ids)
        assert unique

    def test_discovered_key_includes_discriminator(self, factbook):
        """(country, year) alone cannot key percentages: the key must
        carry something item-local, like the paper's ../trade_country."""
        collection, store = factbook
        key = discover_key(collection, store, PCT_PATH)
        assert any(component.startswith("..") for component in key)

    def test_unique_path_gets_document_key(self, factbook):
        collection, store = factbook
        key = discover_key(collection, store, "/country/year")
        assert key is not None
        unique, _ = key.verify_uniqueness(
            collection, store, store.by_path("/country/year")
        )
        assert unique

    def test_missing_path_returns_none(self, factbook):
        collection, store = factbook
        assert discover_key(collection, store, "/nope/nothing") is None

    def test_minimality(self, figure2_collection):
        """The search returns a smallest verified key: a single
        document-unique component when one suffices."""
        store = NodeStore(figure2_collection)
        key = discover_key(figure2_collection, store, "/country/year")
        assert key is not None
        assert len(key) <= 2


class TestProfiles:
    def test_numeric_profile(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        profiles = discoverer.profile_paths([PCT_PATH])
        profile = profiles[PCT_PATH]
        assert profile.numeric_ratio == 1.0
        assert profile.count == len(store.by_path(PCT_PATH))

    def test_categorical_profile(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        profiles = discoverer.profile_paths([TC_PATH])
        profile = profiles[TC_PATH]
        assert profile.numeric_ratio < 0.2
        assert profile.cardinality_ratio < 1.0

    def test_empty_paths_skipped(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        profiles = discoverer.profile_paths(
            ["/country/economy/import_partners"]
        )
        # Interior nodes have no direct value.
        assert "/country/economy/import_partners" not in profiles


class TestDiscovery:
    def test_percentage_discovered_as_fact(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        facts, _dims = discoverer.discover(
            paths=[PCT_PATH, TC_PATH, "/country/year"]
        )
        fact_paths = {candidate.path for candidate in facts}
        assert PCT_PATH in fact_paths

    def test_trade_country_discovered_as_dimension(self, factbook):
        collection, store = factbook
        # At the tiny test scale, partner names repeat less than at full
        # scale; loosen the cardinality threshold accordingly.
        discoverer = FactDimensionDiscoverer(
            collection, store, dimension_cardinality=0.9
        )
        _facts, dims = discoverer.discover(
            paths=[PCT_PATH, TC_PATH, "/country/year"]
        )
        dim_paths = {candidate.path for candidate in dims}
        assert TC_PATH in dim_paths

    def test_candidates_carry_verified_keys(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        facts, dims = discoverer.discover(
            paths=[PCT_PATH, TC_PATH]
        )
        for candidate in facts + dims:
            node_ids = store.by_path(candidate.path)
            unique, _ = candidate.key.verify_uniqueness(
                collection, store, node_ids
            )
            assert unique

    def test_rare_paths_skipped(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(
            collection, store, min_occurrences=10**6
        )
        facts, dims = discoverer.discover(paths=[PCT_PATH, TC_PATH])
        assert facts == [] and dims == []

    def test_register_installs_candidates(self, factbook):
        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        facts, dims = discoverer.discover(paths=[PCT_PATH, TC_PATH])
        registry = discoverer.register(Registry(), facts, dims)
        assert registry.facts or registry.dimensions
        for candidate in facts:
            assert registry.has_fact(candidate.suggested_name())

    def test_suggested_names(self):
        candidate = Candidate(
            "fact", PCT_PATH, None, None, 1.0
        )
        assert candidate.suggested_name() == "item-percentage"

    def test_discovered_definitions_usable_in_cube(self, factbook):
        """End to end: auto-discovered definitions drive extraction."""
        from repro.cube.augment import Augmenter
        from repro.cube.extract import TableExtractor
        from repro.cube.matching import ResultMatcher
        from repro.index.builder import IndexBuilder
        from repro.query.matcher import TermMatcher
        from repro.query.term import Query
        from repro.model.graph import DataGraph
        from repro.summaries.connection import TreeConnection
        from repro.twig.complete import CompleteResultGenerator

        collection, store = factbook
        discoverer = FactDimensionDiscoverer(collection, store)
        facts, dims = discoverer.discover(paths=[PCT_PATH, TC_PATH])
        registry = discoverer.register(Registry(), facts, dims)

        inverted, paths = IndexBuilder(collection).build()
        matcher = TermMatcher(collection, inverted, paths, store)
        generator = CompleteResultGenerator(
            collection, DataGraph(collection), store, matcher
        )
        query = Query.parse([("trade_country", "*"), ("percentage", "*")])
        item = "/country/economy/import_partners/item"
        table = generator.generate(
            query, {0: TC_PATH, 1: PCT_PATH},
            connections=[((0, 1), TreeConnection(TC_PATH, PCT_PATH, item))],
        )
        report = ResultMatcher(registry).match(table)
        assert report.facts
        augmented = Augmenter(collection, store, registry).augment(
            table, report.facts, report.dimensions
        )
        schema = TableExtractor(collection, store, registry).extract(
            augmented, report.facts,
            report.dimensions + augmented.auto_dimensions,
        )
        fact_table = schema.fact(report.facts[0].name)
        assert len(fact_table) > 0
