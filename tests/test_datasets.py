"""Dataset generators: determinism, calibration shape, scenario data."""

import pytest

from repro.datasets.factbook import (
    FactbookGenerator,
    MEXICO_DATA,
    US_GDP,
    US_IMPORT_PARTNERS,
)
from repro.datasets.googlebase import GoogleBaseGenerator
from repro.datasets.mondial import MondialGenerator
from repro.datasets.recipeml import RecipeMLGenerator
from repro.summaries.dataguide import DataguideBuilder
from repro.xmlio import serialize


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: FactbookGenerator(scale=0.01),
            lambda: GoogleBaseGenerator(scale=0.01),
            lambda: MondialGenerator(scale=0.01),
            lambda: RecipeMLGenerator(scale=0.005),
        ],
    )
    def test_same_seed_same_documents(self, factory):
        first = [
            (name, serialize(root)) for name, root in factory().documents()
        ]
        second = [
            (name, serialize(root)) for name, root in factory().documents()
        ]
        assert first == second

    def test_different_seed_differs(self):
        a = [serialize(r) for _n, r in FactbookGenerator(
            seed=1, scale=0.01).documents()]
        b = [serialize(r) for _n, r in FactbookGenerator(
            seed=2, scale=0.01).documents()]
        assert a != b

    def test_scale_validation(self):
        for generator_class in (FactbookGenerator, GoogleBaseGenerator,
                                MondialGenerator, RecipeMLGenerator):
            with pytest.raises(ValueError):
                generator_class(scale=0.0)
            with pytest.raises(ValueError):
                generator_class(scale=1.5)


class TestFactbookScenario:
    """The Example 1 / Figure 2 / Figure 3 documents must be exact."""

    @pytest.fixture(scope="class")
    def collection(self):
        return FactbookGenerator(scale=0.01).build_collection()

    def test_us_documents_all_years(self, collection):
        names = {document.name for document in collection.documents}
        for year in (2002, 2003, 2004, 2005, 2006, 2007):
            assert f"united-states-{year}" in names

    def test_schema_evolution_boundary(self, collection):
        """Pre-2005 documents carry GDP; 2005+ carry GDP_ppp."""
        for document in collection.documents:
            paths = document.paths()
            year_node = next(
                (n for n in document.nodes if n.path == "/country/year"),
                None,
            )
            if year_node is None:
                continue
            year = int(year_node.value)
            if year < 2005:
                assert "/country/economy/GDP" in paths
                assert "/country/economy/GDP_ppp" not in paths
            else:
                assert "/country/economy/GDP_ppp" in paths
                assert "/country/economy/GDP" not in paths

    def test_figure2a_gdp_value(self, collection):
        doc = next(
            d for d in collection.documents if d.name == "united-states-2002"
        )
        gdp = next(n for n in doc.nodes if n.tag == "GDP")
        assert gdp.value == US_GDP[2002] == "10.082T"

    def test_figure3_import_partners(self, collection):
        doc = next(
            d for d in collection.documents if d.name == "united-states-2006"
        )
        items = [n for n in doc.nodes if n.tag == "trade_country"]
        values = {n.value for n in items}
        assert {"China", "Canada"} <= values
        assert US_IMPORT_PARTNERS[2006] == (
            ("China", "15%"), ("Canada", "16.9%")
        )

    def test_figure2b_mexico(self, collection):
        doc = next(
            d for d in collection.documents if d.name == "mexico-2003"
        )
        assert doc.root.value == "Mexico"
        gdp = next(n for n in doc.nodes if n.tag == "GDP")
        assert gdp.value == MEXICO_DATA[2003]["gdp"] == "924.4B"

    def test_country_root_carries_name(self, collection):
        for document in collection.documents:
            if document.root.tag == "country":
                assert document.root.value

    def test_non_country_roots_present(self, collection):
        roots = {document.root.tag for document in collection.documents}
        assert "sea" in roots or "organization" in roots


class TestCalibrationShapeSmallScale:
    """Full-scale calibration is benchmarked (Table 1); at small scale
    we check the *shape*: per-dataset relative reduction ordering."""

    def test_reduction_ordering(self):
        scale = 0.02
        counts = {}
        for name, generator in (
            ("googlebase", GoogleBaseGenerator(scale=scale)),
            ("recipeml", RecipeMLGenerator(scale=scale)),
            ("factbook", FactbookGenerator(scale=scale)),
        ):
            collection = generator.build_collection()
            builder = DataguideBuilder(0.4)
            for document in collection.documents:
                builder.add_paths(document.paths(), document.doc_id)
            counts[name] = (len(collection), builder.guide_count)
        # RecipeML collapses hardest, Factbook least (as in Table 1).
        recipe_ratio = counts["recipeml"][0] / counts["recipeml"][1]
        google_ratio = counts["googlebase"][0] / counts["googlebase"][1]
        factbook_ratio = counts["factbook"][0] / counts["factbook"][1]
        assert recipe_ratio > google_ratio > factbook_ratio

    def test_recipeml_three_guides_any_scale(self):
        collection = RecipeMLGenerator(scale=0.01).build_collection()
        builder = DataguideBuilder(0.4)
        for document in collection.documents:
            builder.add_paths(document.paths(), document.doc_id)
        assert builder.guide_count == 3

    def test_googlebase_guides_equal_item_types(self):
        generator = GoogleBaseGenerator(scale=0.05)
        collection = generator.build_collection()
        builder = DataguideBuilder(0.4)
        for document in collection.documents:
            builder.add_paths(document.paths(), document.doc_id)
        assert builder.guide_count == generator.item_types


class TestMondialLinks:
    def test_idref_edges_discoverable(self):
        from repro.model.graph import DataGraph
        from repro.model.links import LinkDiscoverer

        collection = MondialGenerator(scale=0.01).build_collection()
        graph = DataGraph(collection)
        edges = LinkDiscoverer(graph).discover_idrefs()
        assert edges
        # Every edge lands on a country root.
        for edge in edges:
            assert collection.node(edge.target_id).tag == "country"

    def test_root_type_mix(self):
        collection = MondialGenerator(scale=0.02).build_collection()
        roots = {document.root.tag for document in collection.documents}
        assert {"country", "city", "province"} <= roots


class TestFactbookRegistrations:
    def test_standard_definitions(self):
        from repro.cube.registry import Registry

        registry = FactbookGenerator.register_standard_definitions(Registry())
        assert registry.has_fact("import-trade-percentage")
        assert registry.has_fact("GDP")
        assert registry.has_dimension("country")
        assert registry.has_dimension("year")
        assert registry.has_dimension("import-country")
        gdp = registry.fact("GDP")
        assert gdp.contexts == {
            "/country/economy/GDP", "/country/economy/GDP_ppp",
        }

    def test_value_link_specs(self):
        specs = FactbookGenerator.value_link_specs()
        labels = {spec.label for spec in specs}
        assert "trade partner" in labels
        assert "bordering" in labels
