"""Failure injection and degenerate inputs across the stack."""

import pytest

from repro.model.collection import DocumentCollection
from repro.query.term import Query
from repro.system import Seda, SedaSession


class TestDegenerateCollections:
    def test_empty_collection_searchable(self):
        seda = Seda(DocumentCollection())
        session = seda.search([("*", "anything")], k=5)
        assert session.results == []
        assert all(len(bucket) == 0 for bucket in session.context_summary)
        assert len(session.connection_summary) == 0

    def test_single_empty_element(self):
        seda = Seda.from_documents(["<a/>"])
        session = seda.search([("*", "x")], k=5)
        assert session.results == []

    def test_text_only_document(self):
        seda = Seda.from_documents(["<a>just text here</a>"])
        session = seda.search([("*", "text")], k=5)
        assert len(session.results) == 1

    def test_deeply_nested_document(self):
        xml = "<a>" * 120 + "needle" + "</a>" * 120
        seda = Seda.from_documents([xml])
        session = seda.search([("*", "needle")], k=1)
        assert len(session.results) == 1
        node = seda.collection.node(session.results[0].node_ids[0])
        assert node.dewey.depth == 120

    def test_wide_document(self):
        children = "".join(f"<c>v{i}</c>" for i in range(500))
        seda = Seda.from_documents([f"<r>{children}</r>"])
        session = seda.search([("c", "v499")], k=1)
        assert len(session.results) == 1

    def test_duplicate_documents(self):
        xml = "<a><b>same</b></a>"
        seda = Seda.from_documents([xml, xml, xml])
        session = seda.search([("b", "same")], k=10)
        assert len(session.results) == 3

    def test_unicode_content(self):
        seda = Seda.from_documents(["<país><nombre>México</nombre></país>"])
        session = seda.search([("nombre", "méxico")], k=1)
        assert len(session.results) == 1


class TestSearchEdgeCases:
    @pytest.fixture
    def seda(self):
        return Seda.from_documents([
            "<a><x>red</x><y>blue</y></a>",
            "<a><x>red</x></a>",
        ])

    def test_k_zero(self, seda):
        assert seda.search([("*", "red")], k=0).results == []

    def test_k_larger_than_matches(self, seda):
        assert len(seda.search([("*", "red")], k=100).results) == 2

    def test_no_match_term_empties_everything(self, seda):
        session = seda.search([("*", "red"), ("*", "zzzz")], k=5)
        assert session.results == []

    def test_context_without_matches(self, seda):
        session = seda.search([("nonexistent_tag", "*")], k=5)
        assert session.results == []

    def test_refine_with_empty_selection_keeps_query(self, seda):
        session = seda.search([("*", "red")], k=5)
        refined = session.refine_contexts({})
        assert [r.node_ids for r in refined.results] == [
            r.node_ids for r in session.results
        ]

    def test_refine_connections_with_empty_list(self, seda):
        session = seda.search([("x", "red"), ("y", "blue")], k=5)
        assert isinstance(session.refine_connections([]), SedaSession)

    def test_query_object_accepted(self, seda):
        query = Query.parse([("x", "red")])
        assert seda.search(query, k=5).results


class TestCompleteResultEdgeCases:
    def test_no_candidates_empty_table(self, small_factbook_seda):
        session = small_factbook_seda.search([("year", "1066")], k=5)
        table = session.complete_results(
            term_paths={0: "/country/year"}
        )
        assert len(table) == 0
        assert table.display_rows() == []

    def test_cube_from_empty_table(self, small_factbook_seda):
        session = small_factbook_seda.search([("year", "1066")], k=5)
        table = session.complete_results(term_paths={0: "/country/year"})
        schema = session.build_cube(table)
        assert schema.fact_tables == {} or all(
            len(t) == 0 for t in schema.fact_tables.values()
        )

    def test_unknown_term_path_empty(self, small_factbook_seda):
        session = small_factbook_seda.search([("year", "*")], k=5)
        table = session.complete_results(term_paths={0: "/never/this"})
        assert len(table) == 0


class TestCubeEdgeCases:
    def test_unmatched_columns_ignored(self, small_factbook_seda):
        """Columns that match nothing are simply left out of the cube
        (Section 7: 'we simply ignore it while creating the cube')."""
        session = small_factbook_seda.search(
            [("location", "*")], k=5
        )
        table = session.complete_results(
            term_paths={0: "/country/geography/location"}
        )
        schema = session.build_cube(table)
        assert schema.fact_tables == {}

    def test_non_numeric_measures_kept_raw(self):
        from repro.cube.star import FactTable
        from repro.olap.cube import Cube

        table = FactTable("f", ["k"], ["f"], [("a", "not-a-number")])
        cube = Cube.from_fact_table(table)
        assert cube.aggregate("count") == 0
        assert cube.aggregate("sum") is None


class TestDataguideEdgeCases:
    def test_single_path_documents(self):
        from repro.summaries.dataguide import DataguideBuilder

        builder = DataguideBuilder(0.4)
        for doc_id in range(5):
            builder.add_paths({"/only"}, doc_id)
        assert builder.guide_count == 1

    def test_zero_threshold_merges_any_overlap(self):
        from repro.summaries.dataguide import DataguideBuilder

        builder = DataguideBuilder(0.0)
        builder.add_paths({"/a", "/a/x"}, 0)
        builder.add_paths({"/a", "/a/y"}, 1)
        assert builder.guide_count == 1

    def test_zero_threshold_disjoint_roots_stay_apart(self):
        from repro.summaries.dataguide import DataguideBuilder

        builder = DataguideBuilder(0.0)
        builder.add_paths({"/a"}, 0)
        builder.add_paths({"/b"}, 1)
        # Zero overlap means there is no "best" guide to merge into.
        assert builder.guide_count == 2


class TestKeyEdgeCases:
    def test_key_over_missing_sibling(self, small_factbook_seda):
        from repro.cube.keys import KeyResolutionError, RelativeKey

        collection = small_factbook_seda.collection
        store = small_factbook_seda.node_store
        key = RelativeKey(["../does_not_exist"])
        node_id = store.by_path(
            "/country/economy/import_partners/item/percentage"
        )[0]
        with pytest.raises(KeyResolutionError):
            key.resolve_nodes(collection, store, node_id)

    def test_augmentation_records_failures(self, figure2_collection):
        from repro.cube.augment import Augmenter
        from repro.cube.registry import Registry
        from repro.storage.node_store import NodeStore
        from repro.query.term import Query
        from repro.twig.complete import ResultTable

        registry = Registry()
        registry.add_fact(
            "broken",
            [("/country/economy/GDP", ["/country/missing_key_path"])],
        )
        store = NodeStore(figure2_collection)
        gdp_nodes = store.by_path("/country/economy/GDP")
        query = Query.parse([("GDP", "*")])
        table = ResultTable(
            query, {0: "/country/economy/GDP"},
            [(node_id,) for node_id in gdp_nodes], figure2_collection,
        )
        augmented = Augmenter(figure2_collection, store, registry).augment(
            table, [registry.fact("broken")], []
        )
        assert augmented.failures
        assert all("missing_key_path" in msg for _n, _r, msg in augmented.failures)


class TestCorruptedSnapshotMatrix:
    """A corrupted byte -- snapshot or sidecar, flipped or lost --
    must surface as SnapshotError or load byte-identical answers,
    never silently wrong ones.  (A flipped line *terminator* leaves
    every payload byte intact; detection is not required there, only
    correctness.)"""

    DOCS = [
        ("alpha", "<r><a>red blue</a><b>green</b></r>"),
        ("bravo", "<r><a>blue</a><c>red red</c></r>"),
        ("charlie", "<r><b>green green</b><a>red</a></r>"),
    ]

    @pytest.fixture
    def snapshot_pair(self, tmp_path):
        import os

        path = str(tmp_path / "col.snapshot")
        Seda.from_documents(self.DOCS).save(path)
        assert os.path.exists(path + ".cols")
        return path

    @staticmethod
    def _offsets(size, samples=9):
        """Offsets spread across the file, endpoints included."""
        step = max(1, size // samples)
        return sorted({0, size - 1, *range(step // 2, size, step)})

    @staticmethod
    def _answers(system):
        return [
            (r.node_ids, r.content_scores, r.compactness, r.score)
            for r in system.search([("*", "red")], k=10).results
        ]

    @pytest.mark.parametrize("target", ["snapshot", "cols"])
    def test_single_bit_flips_are_detected(self, snapshot_pair, target):
        from repro.storage.snapshot import SnapshotError

        victim = snapshot_pair if target == "snapshot" \
            else snapshot_pair + ".cols"
        pristine = open(victim, "rb").read()
        expected = self._answers(Seda.load(snapshot_pair, durable=False))
        for offset in self._offsets(len(pristine)):
            blob = bytearray(pristine)
            blob[offset] ^= 0x01
            with open(victim, "wb") as handle:
                handle.write(bytes(blob))
            try:
                loaded = Seda.load(snapshot_pair, durable=False)
            except SnapshotError:
                continue
            assert self._answers(loaded) == expected, (
                f"undetected corruption at offset {offset} changed "
                f"query answers"
            )
        with open(victim, "wb") as handle:
            handle.write(pristine)
        Seda.load(snapshot_pair, durable=False)  # matrix left it intact

    @pytest.mark.parametrize("target", ["snapshot", "cols"])
    def test_truncations_are_detected(self, snapshot_pair, target):
        from repro.storage.snapshot import SnapshotError

        victim = snapshot_pair if target == "snapshot" \
            else snapshot_pair + ".cols"
        pristine = open(victim, "rb").read()
        expected = self._answers(Seda.load(snapshot_pair, durable=False))
        for keep in self._offsets(len(pristine)):
            with open(victim, "wb") as handle:
                handle.write(pristine[:keep])
            try:
                loaded = Seda.load(snapshot_pair, durable=False)
            except SnapshotError:
                continue
            assert self._answers(loaded) == expected, (
                f"undetected truncation to {keep} bytes changed "
                f"query answers"
            )
        with open(victim, "wb") as handle:
            handle.write(pristine)
        Seda.load(snapshot_pair, durable=False)

    def test_missing_sidecar_is_detected(self, snapshot_pair, tmp_path):
        import os

        from repro.storage.snapshot import SnapshotError

        os.remove(snapshot_pair + ".cols")
        with pytest.raises(SnapshotError):
            Seda.load(snapshot_pair, durable=False)


class TestInjectedIOErrors:
    """The fault injector drives I/O failure through the durability
    seams; a failed save or append must leave the old state loadable."""

    DOCS = TestCorruptedSnapshotMatrix.DOCS
    BATCH = [("delta", "<r><a>red green</a><b>blue blue</b></r>")]

    def test_every_failed_save_operation_preserves_old_snapshot(
            self, tmp_path):
        from repro.testing.faults import FaultInjector

        path = str(tmp_path / "col.snapshot")
        system = Seda.from_documents(self.DOCS)
        system.save(path)
        names = sorted(d.name for d in Seda.load(path).collection.documents)
        fail_at = 0
        while True:
            fail_at += 1
            assert fail_at < 50, "fault sweep did not terminate"
            fresh = Seda.from_documents(self.DOCS + self.BATCH)
            with FaultInjector(fail_at=fail_at) as faults:
                try:
                    fresh.save(path, durable=False)
                except OSError:
                    pass
                else:
                    break  # past the last operation: the save succeeded
            assert faults.operations == fail_at
            # Whatever the failed save left behind, the committed
            # snapshot still loads -- either the old or the new state.
            loaded = sorted(
                d.name for d in Seda.load(path).collection.documents
            )
            assert loaded in (
                names, sorted(names + [self.BATCH[0][0]])
            )

    def test_failed_wal_append_leaves_batch_unacknowledged(self, tmp_path):
        from repro.testing.faults import FaultInjector

        path = str(tmp_path / "col.snapshot")
        system = Seda.from_documents(self.DOCS)
        system.save(path)
        expected = sorted(
            d.name for d in Seda.load(path).collection.documents
        )
        with FaultInjector(fail_at=1, fail_on="wal_write"):
            with pytest.raises(OSError, match="injected I/O error"):
                system.add_documents(self.BATCH)
        # The batch never acknowledged; recovery must not invent it.
        recovered = Seda.load(path)
        assert sorted(
            d.name for d in recovered.collection.documents
        ) == expected

    def test_torn_wal_append_truncates_on_recovery(self, tmp_path):
        from repro.testing.faults import FaultInjector

        path = str(tmp_path / "col.snapshot")
        system = Seda.from_documents(self.DOCS)
        system.save(path)
        expected = sorted(
            d.name for d in Seda.load(path).collection.documents
        )
        system.add_documents(self.BATCH)  # acknowledged: magic + record
        with FaultInjector(torn_at=1, torn_bytes=7):
            with pytest.raises(OSError, match="torn write"):
                system.add_documents(
                    [("foxtrot", "<r><a>torn away</a></r>")]
                )
        with pytest.warns(UserWarning, match="torn final record"):
            recovered = Seda.load(path)
        assert sorted(
            d.name for d in recovered.collection.documents
        ) == sorted(expected + [self.BATCH[0][0]])
