"""Document store persistence, node store streams, catalog statistics."""

import pytest

from repro.model.dewey import DeweyID
from repro.model.graph import EdgeKind
from repro.storage.catalog import CollectionCatalog
from repro.storage.document_store import DocumentStore
from repro.storage.node_store import NodeStore
from tests.conftest import MEXICO_2003, USA_2002, USA_2006


class TestDocumentStorePersistence:
    def _populated_store(self):
        store = DocumentStore()
        store.add_document(USA_2006, name="usa-2006")
        store.add_document(MEXICO_2003, name="mexico-2003")
        # A value edge: Mexico's first trade_country -> USA root.
        tc = next(
            node for node in store.collection.iter_nodes()
            if node.tag == "trade_country" and node.doc_id == 1
        )
        store.add_edge(tc.node_id, 0, EdgeKind.VALUE, label="trade partner")
        return store

    def test_save_load_roundtrip(self, tmp_path):
        store = self._populated_store()
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert len(loaded.collection) == 2
        assert loaded.collection.document(0).name == "usa-2006"
        assert loaded.collection.paths() == store.collection.paths()

    def test_edges_survive_roundtrip(self, tmp_path):
        store = self._populated_store()
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert len(loaded.graph.edges) == 1
        edge = loaded.graph.edges[0]
        assert edge.kind is EdgeKind.VALUE
        assert edge.label == "trade partner"
        assert loaded.collection.node(edge.source_id).tag == "trade_country"

    def test_content_survives_roundtrip(self, tmp_path):
        store = self._populated_store()
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        root = loaded.collection.document(0).root
        assert root.value == "United States"

    def test_attributes_survive_roundtrip(self, tmp_path):
        store = DocumentStore()
        store.add_document('<a x="1"><b y="&lt;2&gt;">t</b></a>', name="attrs")
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert "/a/b/@y" in loaded.collection.paths()
        attr = next(
            node for node in loaded.collection.iter_nodes()
            if node.tag == "@y"
        )
        assert attr.value == "<2>"

    def test_load_rejects_unknown_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            DocumentStore.load(path)


class TestNodeStore:
    def test_by_tag_dewey_order(self, figure2_collection):
        store = NodeStore(figure2_collection)
        items = store.by_tag("item")
        keys = [
            (figure2_collection.node(i).doc_id, figure2_collection.node(i).dewey)
            for i in items
        ]
        assert keys == sorted(keys)
        assert len(items) == 7  # 3 usa-2006, 1 usa-2002, 3 mexico-2003

    def test_by_path(self, figure2_collection):
        store = NodeStore(figure2_collection)
        path = "/country/economy/import_partners/item/percentage"
        assert len(store.by_path(path)) == 5

    def test_unknown_tag_empty(self, figure2_collection):
        store = NodeStore(figure2_collection)
        assert store.by_tag("nope") == []

    def test_refresh_picks_up_new_documents(self, figure2_collection):
        store = NodeStore(figure2_collection)
        before = len(store.by_tag("country"))
        figure2_collection.add_document("<country>Narnia</country>")
        store.refresh()
        assert len(store.by_tag("country")) == before + 1

    def test_descendants_in_path(self, figure2_collection):
        store = NodeStore(figure2_collection)
        root = figure2_collection.document(0).root
        path = "/country/economy/import_partners/item/trade_country"
        descendants = store.descendants_in_path(root.node_id, path)
        assert len(descendants) == 2
        values = {figure2_collection.node(d).value for d in descendants}
        assert values == {"China", "Canada"}

    def test_descendants_scoped_to_subtree(self, figure2_collection):
        store = NodeStore(figure2_collection)
        document = figure2_collection.document(0)
        import_partners = next(
            node for node in document.nodes if node.tag == "import_partners"
        )
        path = "/country/economy/import_partners/item/percentage"
        under = store.descendants_in_path(import_partners.node_id, path)
        assert len(under) == 2  # not the export percentage

    def test_sort_dewey(self, figure2_collection):
        store = NodeStore(figure2_collection)
        ids = [node.node_id for node in figure2_collection.iter_nodes()]
        shuffled = list(reversed(ids))
        assert store.sort_dewey(shuffled) == ids


class TestCatalog:
    def test_summary(self, figure2_collection):
        summary = CollectionCatalog(figure2_collection).summary()
        assert summary["documents"] == 3
        assert summary["nodes"] == figure2_collection.node_count
        assert summary["distinct_paths"] == figure2_collection.path_count()

    def test_path_frequencies_sorted(self, figure2_collection):
        rows = CollectionCatalog(figure2_collection).path_frequencies()
        counts = [row[1] for row in rows]
        assert counts == sorted(counts, reverse=True)

    def test_long_tail(self, figure2_collection):
        tail = CollectionCatalog(figure2_collection).long_tail(
            document_threshold=2
        )
        paths = [path for path, _df in tail]
        # GDP_ppp appears only in the 2006 document.
        assert "/country/economy/GDP_ppp" in paths

    def test_depth_histogram(self, figure2_collection):
        histogram = CollectionCatalog(figure2_collection).depth_histogram()
        assert histogram[1] == 1  # /country
        assert sum(histogram.values()) == figure2_collection.path_count()

    def test_tag_histogram(self, figure2_collection):
        histogram = CollectionCatalog(figure2_collection).tag_histogram()
        assert histogram["percentage"] == 2  # import + export contexts
