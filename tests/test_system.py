"""End-to-end SEDA: the Figure 6 control flow on generated Factbook."""

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.summaries.connection import TreeConnection
from repro.system import Seda

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"

QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]

FIGURE3_CONNECTIONS = [
    ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
    ((1, 2), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)),
]


@pytest.fixture(scope="module")
def seda():
    generator = FactbookGenerator(scale=0.02)
    system = Seda(
        generator.build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
    )
    FactbookGenerator.register_standard_definitions(system.registry)
    return system


@pytest.fixture(scope="module")
def figure3_schema(seda):
    """The full Figure 6 flow driven to the Figure 3 star schema."""
    session = seda.search(QUERY_1, k=10)
    refined = session.refine_contexts({
        0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
    })
    chosen = refined.refine_connections(FIGURE3_CONNECTIONS)
    table = chosen.complete_results()
    return chosen.build_cube(table), table


class TestSearchStage:
    def test_topk_returns_results(self, seda):
        session = seda.search(QUERY_1, k=10)
        assert 0 < len(session.results) <= 10

    def test_results_sorted_by_score(self, seda):
        session = seda.search(QUERY_1, k=10)
        scores = [result.score for result in session.results]
        assert scores == sorted(scores, reverse=True)

    def test_context_summary_buckets(self, seda):
        session = seda.search(QUERY_1, k=10)
        summary = session.context_summary
        assert len(summary) == 3
        assert "/country" in summary.bucket(0).paths
        assert TC_PATH in summary.bucket(1).paths

    def test_connection_summary_nonempty(self, seda):
        session = seda.search(QUERY_1, k=10)
        assert len(session.connection_summary) > 0


class TestRefinementStage:
    def test_context_refinement_narrows(self, seda):
        session = seda.search(QUERY_1, k=10)
        refined = session.refine_contexts({0: ["/country"]})
        paths = {
            seda.collection.node(result.node_ids[0]).path
            for result in refined.results
        }
        assert paths == {"/country"}

    def test_connection_refinement_filters(self, seda):
        session = seda.search(QUERY_1, k=10)
        refined = session.refine_contexts({
            0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
        })
        chosen = refined.refine_connections([FIGURE3_CONNECTIONS[1]])
        for result in chosen.results:
            tc = seda.collection.node(result.node_ids[1])
            pct = seda.collection.node(result.node_ids[2])
            assert tc.parent_id == pct.parent_id

    def test_sessions_immutable(self, seda):
        session = seda.search(QUERY_1, k=10)
        refined = session.refine_contexts({0: ["/country"]})
        assert refined is not session
        assert session.query.terms[0].context != (
            refined.query.terms[0].context
        )

    def test_ambiguous_term_paths_raise(self):
        # Two "price" contexts in the top-k make the term ambiguous.
        system = Seda.from_documents([
            "<shop><book><price>10</price></book>"
            "<cd><price>10</price></cd></shop>",
        ])
        session = system.search([("price", "10")], k=10)
        bound = {
            system.collection.node(result.node_ids[0]).path
            for result in session.results
        }
        assert len(bound) == 2
        with pytest.raises(ValueError):
            session.term_paths()


class TestCompleteAndCube:
    def test_complete_results_us_only(self, seda, figure3_schema):
        _schema, table = figure3_schema
        assert len(table) > 0
        for row in table.rows:
            country = seda.collection.node(row[0])
            assert country.value == "United States"

    def test_figure3_fact_rows(self, seda, figure3_schema):
        """The paper's fact-table rows for 2004-2006 must be present."""
        schema, _table = figure3_schema
        fact = schema.fact("import-trade-percentage")
        rows = set(fact.rows)
        assert ("United States", "2004", "China", 12.5) in rows
        assert ("United States", "2004", "Mexico", 10.7) in rows
        assert ("United States", "2005", "China", 13.8) in rows
        assert ("United States", "2005", "Mexico", 10.3) in rows
        assert ("United States", "2006", "China", 15.0) in rows
        assert ("United States", "2006", "Canada", 16.9) in rows

    def test_fact_table_columns_match_figure3(self, figure3_schema):
        schema, _table = figure3_schema
        fact = schema.fact("import-trade-percentage")
        assert fact.key_columns == ["country", "year", "import-country"]
        assert fact.has_primary_key()

    def test_year_dimension_auto_added(self, figure3_schema):
        """Figure 3: the year dimension joins via key augmentation."""
        schema, _table = figure3_schema
        years = set(schema.dimension("year"))
        assert {"2002", "2003", "2004", "2005", "2006", "2007"} <= years

    def test_dimension_tables_populated(self, figure3_schema):
        schema, _table = figure3_schema
        assert list(schema.dimension("country")) == ["United States"]
        members = set(schema.dimension("import-country"))
        assert {"China", "Canada", "Mexico"} <= members

    def test_olap_average_by_partner(self, seda, figure3_schema):
        schema, _table = figure3_schema
        engine = seda.search(QUERY_1).olap(schema)
        cube = engine.cube("import-trade-percentage")
        by_partner = cube.aggregate("avg", group_by=["import-country"])
        assert by_partner[("China",)] == pytest.approx(
            (11.1 + 12.1 + 12.5 + 13.8 + 15.0 + 16.9) / 6
        )

    def test_without_year_no_primary_key(self, seda, figure3_schema):
        """The paper: 'without the year dimension, the fact table would
        not have a primary key'."""
        _schema, table = figure3_schema
        from repro.olap.cube import Cube

        schema, _ = figure3_schema
        fact = schema.fact("import-trade-percentage")
        cube = Cube.from_fact_table(fact)
        rolled = cube.rollup(["country", "import-country"])
        # Rolling year away collapses distinct (China 15, China 13.8...)
        # rows into shared cells -- the ambiguity the paper warns about.
        assert rolled.cell_count() < fact.has_primary_key() * len(fact) or (
            rolled.cell_count() < len(fact)
        )


class TestGdpFactAcrossSchemaEvolution:
    def test_gdp_cube_spans_both_contexts(self, seda):
        session = seda.search([("GDP|GDP_ppp", "*")], k=10)
        # Complete results over one chosen context at a time, then the
        # GDP fact matches both contexts via its ContextList.
        table = session.complete_results(
            term_paths={0: "/country/economy/GDP"}
        )
        schema = session.build_cube(table)
        fact = schema.fact("GDP")
        assert len(fact) > 0
        years = {row[1] for row in fact.rows}
        assert years <= {"2002", "2003", "2004"}  # GDP is pre-2005 only


class TestSedaConstruction:
    def test_from_documents_pairs(self):
        seda = Seda.from_documents([
            ("a", "<x><y>hello</y></x>"),
            ("b", "<x><y>world</y></x>"),
        ])
        assert len(seda.collection) == 2
        session = seda.search([("y", "hello")], k=5)
        assert len(session.results) == 1

    def test_from_documents_bare_strings(self):
        seda = Seda.from_documents(["<x>one</x>", "<x>two</x>"])
        assert len(seda.collection) == 2

    def test_dataguides_built(self, seda):
        assert len(seda.dataguides) >= 1
        assert seda.dataguides.threshold == 0.4


class TestSessionEffort:
    def test_effort_accumulates_across_refinements(self, seda):
        session = seda.search(QUERY_1, k=10)
        assert session.effort.total_interactions == 0
        refined = session.refine_contexts({
            0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
        })
        assert refined.effort is session.effort
        assert refined.effort.context_choices == 3
        assert refined.effort.searches == 2
        chosen = refined.refine_connections(FIGURE3_CONNECTIONS)
        assert chosen.effort.connection_choices == 2
        assert chosen.effort.total_interactions == 5
        summary = chosen.effort.summary()
        assert summary["total_interactions"] == 5
