"""Subprocess crash harness: SIGKILL at every durable operation.

The strongest durability claim the storage layer makes is *crash
consistency*: no matter where a power cut (here: ``SIGKILL``, which the
process cannot catch or clean up after) lands inside a
load-add-save cycle, reopening the files recovers a system whose
query answers are byte-identical to either the pre-batch or the
post-batch state -- never a torn hybrid, never a double-applied batch.

The harness proves it by sweeping: a writer child installs
:func:`repro.testing.faults.install_kill_switch` at operation ``n``
and runs the cycle; the parent reloads whatever hit the disk, checks
it against the two legal states, and increments ``n`` until the child
survives the whole cycle.  Every fsync, rename, and write-ahead-log
write in the cycle is therefore crashed into exactly once.
"""

import os
import shutil
import signal
import subprocess
import sys
import textwrap
import warnings

import pytest

from repro.shard import ShardedSeda
from repro.storage.snapshot import fsck_report
from repro.system import Seda

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")

DOCS = [
    ("alpha", "<r><a>red blue</a><b>green</b></r>"),
    ("bravo", "<r><a>blue</a><c>red red</c></r>"),
    ("charlie", "<r><b>green green</b><a>red</a></r>"),
]
BATCH = [("delta", "<r><a>red green</a><b>blue blue</b></r>")]
QUERIES = ([("*", "red")], [("a", "blue")], [("*", "green"), ("b", "*")])

# The writer child: load, add one batch, save -- with the kill switch
# armed at operation N.  Exits 0 only when N exceeds the cycle's
# operation count; otherwise SIGKILL takes it mid-operation.
CHILD = textwrap.dedent("""
    import sys, warnings
    sys.path.insert(0, sys.argv[1])
    from repro.testing.faults import install_kill_switch

    mode, path, n = sys.argv[2], sys.argv[3], int(sys.argv[4])
    BATCH = [("delta", "<r><a>red green</a><b>blue blue</b></r>")]
    warnings.simplefilter("ignore")
    if mode == "seda":
        from repro.system import Seda
        system = Seda.load(path)
    else:
        from repro.shard import ShardedSeda
        system = ShardedSeda.load(path)
    install_kill_switch(n)
    system.add_documents(BATCH)
    system.save(path)
""")


def _canon_seda(system):
    state = [sorted(d.name for d in system.collection.documents)]
    for pairs in QUERIES:
        state.append([
            (r.node_ids, r.content_scores, r.compactness, r.score)
            for r in system.search(pairs, k=10).results
        ])
    return state


def _canon_sharded(system):
    state = [len(system._docs)]
    for pairs in QUERIES:
        state.append([
            (r.node_ids, r.content_scores, r.compactness, r.score)
            for r in system.search(pairs, k=10)
        ])
    return state


def _run_child(mode, path, n):
    return subprocess.run(
        [sys.executable, "-c", CHILD, SRC, mode, path, str(n)],
        capture_output=True, text=True, timeout=120,
    )


def _sweep(mode, baseline, loader, canon, pre, post, tmp_path):
    """Kill at operation 1, 2, ... until the child survives; check each."""
    outcomes = []
    n = 0
    while True:
        n += 1
        assert n < 100, "kill sweep did not terminate"
        if os.path.isdir(baseline):
            work = str(tmp_path / f"work-{n}.shards")
            shutil.copytree(baseline, work)
        else:
            work = str(tmp_path / f"work-{n}.snapshot")
            shutil.copy(baseline, work)
            if os.path.exists(baseline + ".cols"):
                shutil.copy(baseline + ".cols", work + ".cols")
        child = _run_child(mode, work, n)
        if child.returncode != 0:
            assert child.returncode == -signal.SIGKILL, child.stderr
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovered = loader(work)
        got = canon(recovered)
        assert got in (pre, post), (
            f"kill at operation {n} recovered to neither the pre- nor "
            f"the post-batch state"
        )
        outcomes.append("post" if got == post else "pre")
        # ... and the surviving files pass integrity verification.
        report = fsck_report(work)
        assert report["ok"], (n, report["problems"])
        if child.returncode == 0:
            return outcomes


class TestSedaCrashRecovery:
    def test_sigkill_at_every_operation_recovers(self, tmp_path):
        baseline = str(tmp_path / "baseline.snapshot")
        Seda.from_documents(DOCS).save(baseline)

        pre = _canon_seda(Seda.load(str(tmp_path / "baseline.snapshot")))
        reference = Seda.from_documents(DOCS)
        reference.add_documents(BATCH)
        post = _canon_seda(reference)
        assert pre != post  # the batch must be observable

        outcomes = _sweep("seda", baseline, Seda.load, _canon_seda,
                          pre, post, tmp_path)
        # The sweep must actually exercise both sides of the
        # acknowledgment point: early kills land pre, late kills post,
        # and the survivor (final entry) is post by definition.
        assert "pre" in outcomes and "post" in outcomes
        assert outcomes[-1] == "post"
        # Once a kill lands post (the batch was acknowledged), every
        # later kill must too -- durability is monotonic in time.
        assert outcomes == sorted(outcomes, key=("pre", "post").index)


class TestShardedCrashRecovery:
    def test_sigkill_at_every_operation_recovers(self, tmp_path):
        baseline = str(tmp_path / "baseline.shards")
        ShardedSeda.from_documents(DOCS, shards=2, parallel=False).save(
            baseline
        )

        pre = _canon_sharded(ShardedSeda.load(baseline))
        reference = ShardedSeda.from_documents(DOCS, shards=2,
                                               parallel=False)
        reference.add_documents(BATCH)
        post = _canon_sharded(reference)
        assert pre != post

        outcomes = _sweep("sharded", baseline, ShardedSeda.load,
                          _canon_sharded, pre, post, tmp_path)
        assert "pre" in outcomes and "post" in outcomes
        assert outcomes[-1] == "post"
        assert outcomes == sorted(outcomes, key=("pre", "post").index)
