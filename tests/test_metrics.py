"""Effectiveness metrics (the Section 8 future-work proposal)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    SessionEffort,
    average_precision,
    connection_precision,
    dataguide_false_positive_rate,
    disambiguation_gain,
    precision_recall,
    reciprocal_rank,
)


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_recall({1, 2}, {1, 2}) == (1.0, 1.0, 1.0)

    def test_half_precision(self):
        precision, recall, f1 = precision_recall({1, 2, 3, 4}, {1, 2})
        assert precision == 0.5
        assert recall == 1.0
        assert f1 == pytest.approx(2 / 3)

    def test_half_recall(self):
        precision, recall, _f1 = precision_recall({1}, {1, 2})
        assert precision == 1.0
        assert recall == 0.5

    def test_empty_retrieved_nothing_relevant(self):
        assert precision_recall([], []) == (1.0, 1.0, 1.0)

    def test_empty_retrieved_something_relevant(self):
        precision, recall, f1 = precision_recall([], {1})
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    @given(
        st.sets(st.integers(0, 20)),
        st.sets(st.integers(0, 20)),
    )
    def test_bounds(self, retrieved, relevant):
        precision, recall, f1 = precision_recall(retrieved, relevant)
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= f1 <= 1.0
        # The harmonic mean lies between its inputs (up to float eps).
        epsilon = 1e-12
        assert (
            min(precision, recall) - epsilon
            <= f1
            <= max(precision, recall) + epsilon
        ) or f1 == 0.0


class TestRankedMetrics:
    def test_average_precision_perfect_prefix(self):
        assert average_precision([1, 2, 3], {1, 2}) == 1.0

    def test_average_precision_late_hit(self):
        assert average_precision([9, 9, 1], {1}) == pytest.approx(1 / 3)

    def test_average_precision_no_hits(self):
        assert average_precision([9, 8], {1}) == 0.0

    def test_average_precision_empty_relevant(self):
        assert average_precision([1, 2], set()) == 1.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank([5, 1, 2], {1}) == 0.5
        assert reciprocal_rank([1], {1}) == 1.0
        assert reciprocal_rank([2, 3], {1}) == 0.0

    @given(st.lists(st.integers(0, 10), max_size=10), st.sets(st.integers(0, 10)))
    def test_rr_at_least_ap_for_single_relevant(self, ranked, relevant):
        if len(relevant) == 1:
            assert reciprocal_rank(ranked, relevant) == pytest.approx(
                average_precision(ranked, relevant)
            )


class TestDisambiguation:
    def test_example1_gain(self):
        """Example 1: twelve combinations to one ~ 3.58 bits."""
        assert disambiguation_gain(12, 1) == pytest.approx(math.log2(12))

    def test_no_refinement_zero_gain(self):
        assert disambiguation_gain(8, 8) == 0.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            disambiguation_gain(0, 1)

    def test_gain_from_real_summary(self, figure2_matcher):
        from repro.query.term import Query
        from repro.summaries.context import ContextSummaryGenerator

        generator = ContextSummaryGenerator(figure2_matcher)
        query = Query.parse([
            ("*", '"United States"'),
            ("trade_country", "*"),
            ("percentage", "*"),
        ])
        before = generator.generate(query).combination_count()
        refined = generator.refine(query, {
            0: ["/country"],
            1: ["/country/economy/import_partners/item/trade_country"],
            2: ["/country/economy/import_partners/item/percentage"],
        })
        after = generator.generate(refined).combination_count()
        assert before == 12
        assert after == 1
        assert disambiguation_gain(before, after) > 3.5


class TestSessionEffort:
    def test_counting(self):
        effort = SessionEffort()
        effort.record_context_choice(3)
        effort.record_connection_choice()
        effort.record_search()
        assert effort.total_interactions == 4
        summary = effort.summary()
        assert summary["searches"] == 2
        assert summary["context_choices"] == 3


class TestSummaryFidelity:
    def test_connection_precision(self):
        assert connection_precision(["a", "b"], ["a"]) == 0.5
        assert connection_precision([], []) == 1.0
        assert connection_precision(["a"], []) == 0.0

    def test_dataguide_fp_rate(self):
        from repro.summaries.dataguide import DataguideBuilder

        builder = DataguideBuilder(0.4)
        builder.add_paths({"/a", "/a/b", "/a/c"}, 0)
        builder.add_paths({"/a", "/a/b", "/a/d"}, 1)
        rate = dataguide_false_positive_rate(builder.build())
        assert rate == pytest.approx(1 / 6)

    def test_unmerged_guides_have_zero_rate(self):
        from repro.summaries.dataguide import DataguideBuilder

        builder = DataguideBuilder(1.0)
        builder.add_paths({"/a", "/a/b"}, 0)
        builder.add_paths({"/z", "/z/c"}, 1)
        assert dataguide_false_positive_rate(builder.build()) == 0.0
