"""Sharded collections: routing, translation, snapshots, serving."""

import os

import pytest

from repro.query.term import Query
from repro.search.topk import SharedBound
from repro.shard import (
    ShardedQueryService,
    ShardedSeda,
    hash_partition,
    resolve_partitioner,
    round_robin_partition,
)
from repro.storage.snapshot import SnapshotError, sharded_snapshot_info
from repro.system import Seda

DOCS = [
    ("alpha", "<r><a>red blue</a><b>green</b><a>blue</a></r>"),
    ("bravo", "<r><a>blue green</a><c>red</c></r>"),
    ("charlie", "<r><b>red red blue</b><a>green red</a></r>"),
    ("delta", "<r><a>red</a><b>blue</b><c>green blue</c></r>"),
    ("echo", "<r><c>blue blue</c><a>red green</a></r>"),
    ("foxtrot", "<r><b>green green</b><a>red blue green</a></r>"),
    ("golf", "<r><a>blue</a><a>blue</a></r>"),  # tied scores
    ("hotel", "<r><a>blue</a><b>red</b></r>"),
]

QUERIES = [
    [("*", "red"), ("*", "blue")],
    [("a", "blue"), ("*", "green")],
    [("*", "red"), ("*", "blue"), ("*", "green")],
    [("*", "blue")],
    [("b", "*"), ("*", "red")],
]


def _canon(results):
    return [
        (r.node_ids, r.content_scores, r.compactness, r.score)
        for r in results
    ]


@pytest.fixture(scope="module")
def unsharded():
    return Seda.from_documents(DOCS)


@pytest.fixture(scope="module")
def sharded():
    return ShardedSeda.from_documents(DOCS, shards=3, parallel=False)


class TestFactoryRouting:
    def test_seda_from_documents_routes_to_sharded(self):
        system = Seda.from_documents(DOCS, shards=2)
        assert isinstance(system, ShardedSeda)
        assert system.shard_count == 2

    def test_explicit_shard_count_always_routes(self):
        # Config-driven callers may land on shards=1; sharding-only
        # kwargs must still be honored, so any explicit count routes.
        degenerate = Seda.from_documents(
            DOCS, shards=1, partitioner="round-robin", parallel=False
        )
        assert isinstance(degenerate, ShardedSeda)
        assert degenerate.shard_count == 1
        assert isinstance(Seda.from_documents(DOCS), Seda)

    def test_partitioners_are_stable_and_bounded(self):
        for name, _source in DOCS:
            for shards in (1, 2, 5):
                assert 0 <= hash_partition(name, 0, shards) < shards
        # Stability: the same name always routes identically.
        assert hash_partition("alpha", 0, 4) == hash_partition("alpha", 9, 4)
        assert round_robin_partition("x", 7, 3) == 1
        with pytest.raises(ValueError, match="unknown partitioner"):
            resolve_partitioner("no-such-policy")


class TestMergeEquivalence:
    def test_byte_identical_to_unsharded(self, unsharded, sharded):
        for pairs in QUERIES:
            query = Query.parse(pairs)
            for k in (1, 2, 10, 500, None):
                assert _canon(sharded.search(pairs, k=k)) == _canon(
                    unsharded.topk.search(query, k=k)
                ), f"diverged on {pairs} k={k}"

    def test_every_shard_count_agrees(self, unsharded):
        baseline = [
            _canon(unsharded.topk.search(Query.parse(pairs), k=10))
            for pairs in QUERIES
        ]
        for shards in (1, 2, 4, 8, 20):
            system = ShardedSeda.from_documents(
                DOCS, shards=shards, parallel=False,
                partitioner="round-robin",
            )
            for pairs, want in zip(QUERIES, baseline):
                assert _canon(system.search(pairs, k=10)) == want

    def test_global_ids_resolve_through_the_view(self, unsharded, sharded):
        results = sharded.search(QUERIES[0], k=5)
        view = sharded.collection
        for result in results:
            for node_id in result.node_ids:
                assert view.node(node_id).path == (
                    unsharded.collection.node(node_id).path
                )
                assert view.content(node_id) == (
                    unsharded.collection.content(node_id)
                )
            assert result.describe(view) == result.describe(
                unsharded.collection
            )

    def test_k_of_zero_returns_empty_everywhere(self, unsharded, sharded):
        query = Query.parse(QUERIES[0])
        assert unsharded.topk.search(query, k=0) == []
        assert sharded.search(QUERIES[0], k=0) == []
        results, stats = sharded.query_service().execute(QUERIES[0], k=0)
        assert results == [] and stats.k == 0

    def test_translation_roundtrip(self, sharded):
        for global_id in range(sharded.node_count):
            shard_system, local_id = sharded.to_local(global_id)
            shard_index = sharded.shards.index(shard_system)
            assert sharded.to_global(shard_index, local_id) == global_id
        with pytest.raises(KeyError):
            sharded.to_local(sharded.node_count)

    def test_shared_bound_only_prunes_strictly_worse(self, unsharded):
        bound = SharedBound()
        assert bound.value == float("-inf")
        bound.offer(0.5)
        bound.offer(0.25)  # lower offers never move the bound down
        assert bound.value == 0.5
        # A coupled scatter must answer exactly like independent
        # searches merged afterwards.
        system = ShardedSeda.from_documents(DOCS, shards=4, parallel=False)
        for pairs in QUERIES:
            query = Query.parse(pairs)
            independent = system._merge(
                [
                    shard.topk.search(query, k=3)
                    for shard in system.shards
                ],
                3,
            )
            assert _canon(system.search(pairs, k=3)) == _canon(independent)


class TestGlobalStatistics:
    def test_shards_score_with_corpus_wide_idf(self, unsharded, sharded):
        for shard in sharded.shards:
            for term in ("red", "blue", "green", "unseen-term"):
                assert shard.inverted.inverse_document_frequency(term) == (
                    unsharded.inverted.inverse_document_frequency(term)
                )

    def test_lazy_ingestion_defers_untouched_shard_bumps(self, tmp_path):
        """Ingesting into a lazily restored collection must not
        rehydrate untouched shards -- their invalidation is recorded
        on the slot -- yet searches and re-saves still see exactly
        the post-ingest statistics."""
        system = ShardedSeda.from_documents(
            DOCS, shards=4, parallel=False, partitioner="round-robin"
        )
        source = tmp_path / "lazy-ingest.shards"
        system.save(str(source))
        # Loading attaches a write-ahead log to the directory, so a
        # later load would replay the batch ingested below; the second
        # phase loads this pristine copy instead.
        import shutil

        pristine = tmp_path / "lazy-ingest-pristine.shards"
        shutil.copytree(str(source), str(pristine))

        new = [("november", "<r><a>red red red</a><b>blue</b></r>")]
        plain = Seda.from_documents(DOCS + new)

        lazy = ShardedSeda.load(str(source))
        lazy.add_documents(new)  # round-robin routes it to shard 0
        untouched = [
            slot for slot in lazy._slots[1:] if not slot.loaded
        ]
        assert untouched, "ingestion rehydrated every deferred shard"
        assert all(slot.pending_bumps == 1 for slot in untouched)
        for pairs in QUERIES:
            assert _canon(lazy.search(pairs, k=10)) == _canon(
                plain.topk.search(Query.parse(pairs), k=10)
            )

        # Saving with bumps still pending must not byte-copy stale
        # stream versions: the restored copy answers post-ingest too.
        fresh = ShardedSeda.load(str(pristine))
        fresh.add_documents(new)
        target = tmp_path / "post-ingest.shards"
        fresh.save(str(target))
        restored = ShardedSeda.load(str(target))
        for pairs in QUERIES:
            assert _canon(restored.search(pairs, k=10)) == _canon(
                plain.topk.search(Query.parse(pairs), k=10)
            )

    def test_ingestion_keeps_statistics_global(self):
        plain = Seda.from_documents(DOCS)
        system = ShardedSeda.from_documents(DOCS, shards=3, parallel=False)
        new = [
            ("india", "<r><a>red red red</a><b>blue</b></r>"),
            ("juliet", "<r><c>green</c><a>blue red</a></r>"),
        ]
        plain.add_documents(new)
        added = system.add_documents(new)
        assert len(added) == 2
        for pairs in QUERIES:
            assert _canon(system.search(pairs, k=10)) == _canon(
                plain.topk.search(Query.parse(pairs), k=10)
            )
        assert system.document_count == len(DOCS) + 2
        assert system.node_count == plain.collection.node_count


class TestShardedSnapshots:
    def test_save_load_roundtrip_lazy(self, sharded, tmp_path):
        target = tmp_path / "collection.shards"
        sharded.save(str(target))
        assert sorted(os.listdir(target)) == [
            "manifest.json",
            "shard-0000.snapshot",
            "shard-0000.snapshot.cols",
            "shard-0001.snapshot",
            "shard-0001.snapshot.cols",
            "shard-0002.snapshot",
            "shard-0002.snapshot.cols",
        ]
        restored = ShardedSeda.load(str(target))
        # Lazy: the topology is known before any shard file is opened.
        assert all(not slot.loaded for slot in restored._slots)
        assert restored.node_count == sharded.node_count
        assert restored.document_count == sharded.document_count
        for pairs in QUERIES:
            assert _canon(restored.search(pairs, k=10)) == _canon(
                sharded.search(pairs, k=10)
            )
        assert all(slot.loaded for slot in restored._slots)

    def test_resave_without_rehydration(self, sharded, tmp_path):
        """Backing up a lazily restored collection is file-copy cheap:
        no shard is rehydrated, and the copy answers identically."""
        import shutil

        source = tmp_path / "source.shards"
        sharded.save(str(source))
        lazy = ShardedSeda.load(str(source))
        backup = tmp_path / "backup.shards"
        lazy.save(str(backup))
        assert all(not slot.loaded for slot in lazy._slots)
        # The live system stays backed by its source: deleting the
        # backup must not strand it.
        shutil.rmtree(backup)
        assert _canon(lazy.search(QUERIES[0], k=5)) == _canon(
            sharded.search(QUERIES[0], k=5)
        )
        lazy.save(str(backup))  # recreate for the restore checks below
        # A parallel build's payload-backed shards save the same way.
        parallel = ShardedSeda.from_documents(
            DOCS, shards=2, parallel=True, max_workers=2
        )
        fresh = tmp_path / "fresh.shards"
        parallel.save(str(fresh))
        assert all(not slot.loaded for slot in parallel._slots)
        for directory in (backup, fresh):
            restored = ShardedSeda.load(str(directory))
            assert _canon(restored.search(QUERIES[0], k=10)) == _canon(
                sharded.search(QUERIES[0], k=10)
            )

    def test_resave_over_existing_directory_is_generational(self, tmp_path):
        """Re-saving over a live directory must never let a crash leave
        the old manifest pointing at new shard files: the new
        generation gets fresh file names, the manifest commit flips
        atomically, and superseded files are cleaned up."""
        import json

        system = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        target = tmp_path / "live.shards"
        system.save(str(target))
        first = sorted(
            name for name in os.listdir(target) if name.startswith("shard-")
        )
        assert first == [
            "shard-0000.snapshot", "shard-0000.snapshot.cols",
            "shard-0001.snapshot", "shard-0001.snapshot.cols",
        ]

        system.add_documents([("mike", "<r><a>red blue</a></r>")])
        system.save(str(target))
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["generation"] == 1
        second = sorted(
            name for name in os.listdir(target) if name.startswith("shard-")
        )
        assert manifest["shard_files"] == [
            "shard-0000.g1.snapshot", "shard-0001.g1.snapshot",
        ]
        # Superseded generation-0 files (and their column sidecars) are
        # cleaned up; the new generation's pairs remain.
        assert second == [
            "shard-0000.g1.snapshot", "shard-0000.g1.snapshot.cols",
            "shard-0001.g1.snapshot", "shard-0001.g1.snapshot.cols",
        ]

        plain = Seda.from_documents(
            DOCS + [("mike", "<r><a>red blue</a></r>")]
        )
        restored = ShardedSeda.load(str(target))
        # A lazily loaded system survives a re-save into its own
        # source directory (its slots are repointed at the new files).
        restored.save(str(target))
        for pairs in QUERIES:
            assert _canon(restored.search(pairs, k=10)) == _canon(
                plain.topk.search(Query.parse(pairs), k=10)
            )

    def test_eager_load(self, sharded, tmp_path):
        target = tmp_path / "eager.shards"
        sharded.save(str(target))
        restored = ShardedSeda.load(str(target), lazy=False)
        assert all(slot.loaded for slot in restored._slots)

    def test_info_reads_only_the_manifest(self, sharded, tmp_path):
        target = tmp_path / "info.shards"
        sharded.save(str(target))
        info = sharded_snapshot_info(str(target))
        assert info["meta"]["shards"] == 3
        assert info["meta"]["partitioner"] == "hash"
        assert info["documents"] == len(DOCS)
        assert info["nodes"] == sharded.node_count
        assert len(info["shards"]) == 3
        assert info["total_bytes"] == sum(row[1] for row in info["shards"])

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="no manifest.json"):
            ShardedSeda.load(str(tmp_path))

    def test_missing_shard_file_rejected(self, sharded, tmp_path):
        target = tmp_path / "torn.shards"
        sharded.save(str(target))
        os.remove(target / "shard-0001.snapshot")
        with pytest.raises(SnapshotError, match="missing shard files"):
            ShardedSeda.load(str(target))

    def test_unknown_partitioner_name_rejected_at_load(self, sharded,
                                                       tmp_path):
        import json

        target = tmp_path / "future.shards"
        sharded.save(str(target))
        manifest_path = target / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["meta"]["partitioner"] = "range"  # a future policy
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="unknown partitioner"):
            ShardedSeda.load(str(target))
        # An explicit override still loads it.
        rescued = ShardedSeda.load(str(target), partitioner="hash")
        assert rescued.search(QUERIES[0], k=3) == sharded.search(
            QUERIES[0], k=3
        )

    def test_out_of_range_shard_index_rejected(self, sharded, tmp_path):
        import json

        target = tmp_path / "damaged.shards"
        sharded.save(str(target))
        manifest_path = target / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["documents"][0][1] = 5  # only 3 shard files exist
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="malformed document row"):
            ShardedSeda.load(str(target))
        with pytest.raises(SnapshotError, match="malformed document row"):
            sharded_snapshot_info(str(target))

    def test_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            '{"format": "something-else", "version": 1}'
        )
        with pytest.raises(SnapshotError, match="not a "):
            ShardedSeda.load(str(tmp_path))

    def test_custom_partitioner_roundtrip(self, tmp_path):
        def by_length(doc_name, index, shards):
            return len(doc_name) % shards

        system = ShardedSeda.from_documents(
            DOCS, shards=2, parallel=False, partitioner=by_length
        )
        target = tmp_path / "custom.shards"
        system.save(str(target))
        assert sharded_snapshot_info(str(target))["meta"][
            "partitioner"
        ] == "custom"
        restored = ShardedSeda.load(str(target))
        # Search works without the routing function...
        assert restored.search(QUERIES[0], k=3) == system.search(
            QUERIES[0], k=3
        )
        # ...but ingestion needs it back explicitly.
        with pytest.raises(ValueError, match="custom"):
            restored.add_documents([("kilo", "<r><a>red</a></r>")])
        rerouted = ShardedSeda.load(str(target), partitioner=by_length)
        rerouted.add_documents([("kilo", "<r><a>red</a></r>")])
        assert rerouted.document_count == len(DOCS) + 1

    def test_round_robin_ingest_after_load_matches_single_process(
        self, tmp_path
    ):
        # Regression: round-robin routes by *global index*, so a
        # restored system must keep counting from the persisted corpus
        # size -- ingest-after-load has to land every document on the
        # same shard as one uninterrupted build.
        extra = [
            ("kilo", "<r><a>red green</a></r>"),
            ("lima", "<r><b>blue</b><c>red</c></r>"),
            ("mike", "<r><c>green green</c></r>"),
        ]
        target = tmp_path / "rr.shards"
        ShardedSeda.from_documents(
            DOCS, shards=3, parallel=False, partitioner="round-robin"
        ).save(str(target))
        restored = ShardedSeda.load(str(target))
        restored.add_documents(extra)

        oneshot = ShardedSeda.from_documents(
            DOCS + extra, shards=3, parallel=False,
            partitioner="round-robin",
        )
        assert (
            [row[1] for row in restored._docs]
            == [row[1] for row in oneshot._docs]
        )
        baseline = Seda.from_documents(DOCS + extra)
        for pairs in QUERIES:
            assert restored.search(pairs, k=10) == (
                baseline.topk.search(Query.parse(pairs), k=10)
            )


class TestShardedService:
    def test_batch_matches_single_queries(self, sharded):
        service = ShardedQueryService(sharded, workers=3, cache_size=32)
        batch, stats = service.execute_batch(
            QUERIES + QUERIES[:2], k=10
        )
        for pairs, answer in zip(QUERIES + QUERIES[:2], batch):
            assert _canon(answer) == _canon(sharded.search(pairs, k=10))
        # The repeated queries are reported as in-batch cache hits.
        assert stats.cache_hits >= 2
        assert stats.queries == len(QUERIES) + 2

    def test_per_shard_stats_aggregate(self, sharded):
        service = ShardedQueryService(sharded, workers=2, cache_size=32)
        _results, stats = service.execute_batch(QUERIES, k=10)
        totals = stats.shard_totals
        assert set(totals) <= {0, 1, 2}
        assert stats.tuples_scored == sum(
            entry["tuples_scored"] for entry in totals.values()
        )
        assert stats.shard_summary().count("shard ") == len(totals)
        computed = [s for s in stats.per_query if not s.cache_hit]
        assert all(len(s.per_shard) == 3 for s in computed)
        record = computed[0].as_dict()
        assert "per_shard" in record and "sorted_accesses" in record

    def test_cache_hits_and_invalidation(self, sharded):
        service = sharded.query_service(workers=2)
        assert sharded.query_service() is service
        first, stats_a = service.execute(QUERIES[0], k=10)
        again, stats_b = service.execute(QUERIES[0], k=10)
        assert not stats_a.cache_hit and stats_b.cache_hit
        assert _canon(first) == _canon(again)
        service.invalidate()
        _third, stats_c = service.execute(QUERIES[0], k=10)
        assert not stats_c.cache_hit

    def test_mutation_expires_cached_results(self):
        system = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        plain = Seda.from_documents(DOCS)
        service = system.query_service(workers=2)
        before, _ = service.execute(QUERIES[0], k=10)
        new = [("lima", "<r><a>red blue</a><b>blue</b></r>")]
        system.add_documents(new)
        plain.add_documents(new)
        after, stats = service.execute(QUERIES[0], k=10)
        assert not stats.cache_hit  # version key changed on every shard
        assert _canon(after) == _canon(
            plain.topk.search(Query.parse(QUERIES[0]), k=10)
        )

    def test_search_many_facade(self, sharded):
        batches = sharded.search_many(QUERIES, k=5, workers=2)
        for pairs, answer in zip(QUERIES, batches):
            assert _canon(answer) == _canon(sharded.search(pairs, k=5))

    def test_rejects_nonpositive_workers(self, sharded):
        with pytest.raises(ValueError):
            ShardedQueryService(sharded, workers=0)


class TestParallelBuild:
    def test_parallel_build_is_lazy_and_identical(self):
        serial = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        parallel = ShardedSeda.from_documents(
            DOCS, shards=2, parallel=True, max_workers=2
        )
        assert all(not slot.loaded for slot in parallel._slots)
        def topology(system):
            return [
                (entry["shard"], entry["documents"], entry["nodes"])
                for entry in system.info()["per_shard"]
            ]
        assert topology(parallel) == topology(serial)
        for pairs in QUERIES:
            assert _canon(parallel.search(pairs, k=10)) == _canon(
                serial.search(pairs, k=10)
            )

    def test_empty_shards_are_harmless(self):
        system = ShardedSeda.from_documents(
            DOCS[:2], shards=6, parallel=False, partitioner="round-robin"
        )
        plain = Seda.from_documents(DOCS[:2])
        for pairs in QUERIES:
            assert _canon(system.search(pairs, k=10)) == _canon(
                plain.topk.search(Query.parse(pairs), k=10)
            )

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="shards must be"):
            ShardedSeda.from_documents(DOCS, shards=0)
