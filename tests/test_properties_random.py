"""Cross-implementation equivalence on randomized collections.

Hypothesis generates small random document collections; the properties
assert that independent implementations agree:

* index-based candidate enumeration == brute-force Definition 3 scan;
* TwigStack == naive structural join on random twigs;
* TA top-k scores == exhaustive search scores;
* path-index term buckets == paths of scanned matching nodes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.builder import IndexBuilder
from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph
from repro.query.matcher import TermMatcher
from repro.query.term import Query, QueryTerm
from repro.search.naive import NaiveSearcher
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher
from repro.storage.node_store import NodeStore
from repro.twig.pattern import TwigPattern
from repro.twig.twigstack import NaiveTwigJoin, TwigStackJoin
from repro.xmlio.dom import Element

_TAGS = ("a", "b", "c", "d")
_WORDS = ("red", "blue", "green", "red blue", "blue green red")


@st.composite
def _random_element(draw, depth=0):
    element = Element(draw(st.sampled_from(_TAGS)))
    if draw(st.booleans()):
        element.append(draw(st.sampled_from(_WORDS)))
    if depth < 3:
        for child in draw(
            st.lists(
                st.deferred(lambda: _random_element(depth + 1)),  # noqa: B023
                max_size=3,
            )
        ):
            element.append(child)
    return element


@st.composite
def _random_collection(draw):
    collection = DocumentCollection()
    for root in draw(st.lists(_random_element(), min_size=1, max_size=4)):
        collection.add_document(root)
    return collection


def _wire(collection):
    inverted, paths = IndexBuilder(collection).build()
    store = NodeStore(collection)
    matcher = TermMatcher(collection, inverted, paths, store)
    return inverted, paths, store, matcher


class TestCandidatesAgainstScan:
    @given(_random_collection(), st.sampled_from(["red", "blue", "green"]),
           st.sampled_from(["*", "a", "b"]))
    @settings(max_examples=60, deadline=None)
    def test_index_matches_definition3_scan(self, collection, word, context):
        _inverted, _paths, _store, matcher = _wire(collection)
        term = QueryTerm(context, word)
        candidates = set(matcher.candidates(term))
        # Brute force: direct-text containment + context check.
        analyzer = matcher.inverted.analyzer
        expected = set()
        for node in collection.iter_nodes():
            if not term.context.matches(node):
                continue
            if word in analyzer.terms(node.direct_text):
                expected.add(node.node_id)
        assert candidates == expected

    @given(_random_collection())
    @settings(max_examples=40, deadline=None)
    def test_phrase_candidates_subset_of_word_candidates(self, collection):
        _inverted, _paths, _store, matcher = _wire(collection)
        phrase_term = QueryTerm("*", '"blue green"')
        word_term = QueryTerm("*", "blue")
        assert set(matcher.candidates(phrase_term)) <= set(
            matcher.candidates(word_term)
        )

    @given(_random_collection(), st.sampled_from(["red", "blue"]))
    @settings(max_examples=40, deadline=None)
    def test_term_paths_match_candidate_paths(self, collection, word):
        _inverted, _paths, _store, matcher = _wire(collection)
        term = QueryTerm("*", word)
        from_index = matcher.term_paths(term)
        from_nodes = {
            collection.node(node_id).path
            for node_id in matcher.candidates(term)
        }
        assert from_index == from_nodes


class TestTwigEquivalence:
    @given(_random_collection())
    @settings(max_examples=50, deadline=None)
    def test_twigstack_equals_naive(self, collection):
        store = NodeStore(collection)
        # Build a twig from the two most frequent paths sharing a root.
        paths = sorted(
            store.paths(),
            key=lambda path: -len(store.by_path(path)),
        )
        chosen = None
        for i, first in enumerate(paths):
            for second in paths[i:]:
                if first.split("/")[1] != second.split("/")[1]:
                    continue
                root_path = "/" + first.split("/")[1]
                if first == second and (
                    first == root_path or len(store.by_path(first)) < 2
                ):
                    continue  # cannot bind two terms to one root node
                chosen = {0: first, 1: second}
                break
            if chosen:
                break
        if chosen is None:
            return  # degenerate collection; nothing to check
        pattern = TwigPattern.from_paths(chosen)
        fast = sorted(
            TwigStackJoin(collection, store).match_tuples(pattern)
        )
        slow = sorted(NaiveTwigJoin(collection, store).match_tuples(pattern))
        assert fast == slow


class TestTopKEquivalence:
    @given(_random_collection(),
           st.sampled_from([["red"], ["red", "blue"], ["blue", "green"]]))
    @settings(max_examples=40, deadline=None)
    def test_ta_scores_equal_naive_scores(self, collection, words):
        inverted, _paths, _store, matcher = _wire(collection)
        graph = DataGraph(collection)
        scoring = ScoringModel(collection, inverted, graph)
        topk = TopKSearcher(matcher, scoring)
        naive = NaiveSearcher(matcher, scoring, max_combinations=10**6)
        query = Query.parse([("*", word) for word in words])
        ta_scores = [
            round(result.score, 9) for result in topk.search(query, k=5)
        ]
        naive_scores = [
            round(result.score, 9) for result in naive.search(query, k=5)
        ]
        assert ta_scores == naive_scores

    @given(_random_collection(),
           st.sampled_from(["red", "blue", "green", "red blue"]))
    @settings(max_examples=40, deadline=None)
    def test_impact_stream_scores_equal_naive_content_scores(
        self, collection, words
    ):
        """The precomputed impact stream must carry exactly the scores a
        seed-style recomputation (re-analyzing each node's direct text)
        would produce -- same floats, impact-sorted."""
        inverted, _paths, _store, matcher = _wire(collection)
        graph = DataGraph(collection)
        scoring = ScoringModel(collection, inverted, graph)
        searcher = TopKSearcher(matcher, scoring)
        term = QueryTerm("*", words)
        stream = searcher._stream(term)
        analyzer = inverted.analyzer
        expected = {}
        for node_id in matcher.candidates(term):
            tokens = analyzer.terms(collection.node(node_id).direct_text)
            if not tokens:
                continue
            score = 0.0
            for word in term.search.terms():
                frequency = tokens.count(word)
                if frequency:
                    score += (
                        frequency
                        * inverted.inverse_document_frequency(word)
                    )
            if score > 0.0:
                expected[node_id] = score / (len(tokens) ** 0.5)
        assert dict(zip(stream.node_ids, stream.scores)) == expected
        pairs = stream.pairs()
        assert pairs == sorted(pairs, key=lambda pair: (-pair[0], pair[1]))
        # The precomputed=False escape hatch builds identical streams.
        slow = TopKSearcher(matcher, ScoringModel(
            collection, inverted, graph, precomputed=False,
        ))
        assert slow._stream(term).pairs() == pairs

    @given(_random_collection())
    @settings(max_examples=30, deadline=None)
    def test_results_satisfy_definition_4(self, collection):
        inverted, _paths, _store, matcher = _wire(collection)
        graph = DataGraph(collection)
        scoring = ScoringModel(collection, inverted, graph)
        topk = TopKSearcher(matcher, scoring)
        query = Query.parse([("*", "red"), ("*", "blue")])
        for result in topk.search(query, k=5):
            # Every returned tuple is connected (Definition 4) and every
            # node satisfies its term (Definition 3).
            assert graph.connects(result.node_ids, max_hops=12)
            for node_id, term in zip(result.node_ids, query.terms):
                assert matcher.satisfies(node_id, term)


class TestDataguideAgainstCollection:
    @given(_random_collection(), st.sampled_from([0.2, 0.4, 0.7]))
    @settings(max_examples=40, deadline=None)
    def test_guides_cover_collection_paths(self, collection, threshold):
        from repro.summaries.dataguide import DataguideBuilder

        guide_set = DataguideBuilder(threshold).build(collection=collection)
        union = set()
        for guide in guide_set:
            union |= guide.paths
        assert union == set(collection.paths())


class TestPersistenceRoundtrip:
    @given(collection=_random_collection())
    @settings(max_examples=25, deadline=None)
    def test_store_roundtrip_preserves_structure(self, tmp_path_factory,
                                                 collection):
        from repro.storage.document_store import DocumentStore

        store = DocumentStore(collection, DataGraph(collection))
        path = tmp_path_factory.mktemp("store") / "collection.jsonl"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert len(loaded.collection) == len(collection)
        assert loaded.collection.paths() == collection.paths()
        assert loaded.collection.node_count == collection.node_count
