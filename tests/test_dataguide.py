"""Dataguides: overlap, merging dynamics, false positives (Section 6.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.collection import DocumentCollection
from repro.summaries.dataguide import Dataguide, DataguideBuilder, overlap


class TestOverlap:
    def test_identical_sets(self):
        paths = {"/a", "/a/b"}
        assert overlap(paths, paths) == 1.0

    def test_disjoint_sets(self):
        assert overlap({"/a"}, {"/b"}) == 0.0

    def test_paper_formula(self):
        dg1 = {"/a", "/a/b", "/a/c", "/a/d"}
        dg2 = {"/a", "/a/b"}
        # common = 2; min(2/4, 2/2) = 0.5
        assert overlap(dg1, dg2) == 0.5

    def test_empty_set(self):
        assert overlap(set(), {"/a"}) == 0.0

    def test_symmetric(self):
        a = {"/a", "/a/b", "/a/c"}
        b = {"/a", "/a/c", "/a/d", "/a/e"}
        assert overlap(a, b) == overlap(b, a)


class TestMergeCases:
    def test_subset_absorbed_regardless_of_threshold(self):
        """Paper: subset/equal guides need no further processing --
        even when the overlap ratio is below the threshold."""
        builder = DataguideBuilder(threshold=0.9)
        big = {f"/a/p{i}" for i in range(20)} | {"/a"}
        small = {"/a", "/a/p0"}  # overlap = 2/21 << 0.9, but a subset
        builder.add_paths(big, 0)
        builder.add_paths(small, 1)
        assert builder.guide_count == 1

    def test_equal_absorbed(self):
        builder = DataguideBuilder(threshold=0.4)
        paths = {"/a", "/a/b"}
        builder.add_paths(paths, 0)
        builder.add_paths(set(paths), 1)
        assert builder.guide_count == 1

    def test_overlapping_merged_above_threshold(self):
        builder = DataguideBuilder(threshold=0.4)
        builder.add_paths({"/a", "/a/b", "/a/c"}, 0)
        builder.add_paths({"/a", "/a/b", "/a/d"}, 1)  # overlap 2/3
        assert builder.guide_count == 1
        guide = builder.build().guides[0]
        assert guide.paths == {"/a", "/a/b", "/a/c", "/a/d"}

    def test_below_threshold_new_guide(self):
        builder = DataguideBuilder(threshold=0.8)
        builder.add_paths({"/a", "/a/b", "/a/c"}, 0)
        builder.add_paths({"/a", "/a/b", "/a/d"}, 1)  # overlap 2/3 < 0.8
        assert builder.guide_count == 2

    def test_merges_into_best_overlap(self):
        builder = DataguideBuilder(threshold=0.4)
        builder.add_paths({"/a", "/a/b", "/a/c", "/a/x1", "/a/x2"}, 0)
        builder.add_paths({"/z", "/z/b"}, 1)
        # Overlaps 3/5 with guide 0, 0 with guide 1.
        builder.add_paths({"/a", "/a/b", "/a/c"}, 2)
        guides = builder.build().guides
        assert len(guides) == 2
        assert 2 in guides[0].document_ids

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DataguideBuilder(threshold=1.5)

    def test_higher_threshold_never_fewer_guides(self):
        """Monotonicity on a fixed stream of path sets."""
        streams = [
            {"/r", "/r/a", "/r/b"},
            {"/r", "/r/a", "/r/c"},
            {"/r", "/r/d", "/r/e"},
            {"/r", "/r/b", "/r/c", "/r/d"},
        ]
        counts = []
        for threshold in (0.2, 0.5, 0.8):
            builder = DataguideBuilder(threshold)
            for doc_id, paths in enumerate(streams):
                builder.add_paths(paths, doc_id)
            counts.append(builder.guide_count)
        assert counts == sorted(counts)


class TestDataguideStructure:
    def test_lca_path(self):
        guide = Dataguide(0, {"/a", "/a/b", "/a/b/c", "/a/b/d"}, 0)
        assert guide.lca_path("/a/b/c", "/a/b/d") == "/a/b"

    def test_lca_of_ancestor_pair(self):
        guide = Dataguide(0, {"/a", "/a/b"}, 0)
        assert guide.lca_path("/a", "/a/b") == "/a"

    def test_lca_unknown_path(self):
        guide = Dataguide(0, {"/a"}, 0)
        assert guide.lca_path("/a", "/zzz") is None

    def test_tree_distance(self):
        guide = Dataguide(0, {"/a", "/a/b", "/a/b/c", "/a/d"}, 0)
        assert guide.tree_distance("/a/b/c", "/a/d") == 3

    def test_co_occurrence_tracking(self):
        guide = Dataguide(0, {"/a", "/a/b"}, 0)
        guide.absorb({"/a", "/a/c"}, 1)
        assert guide.co_occurs("/a", "/a/b")
        assert guide.co_occurs("/a", "/a/c")
        assert not guide.co_occurs("/a/b", "/a/c")  # merge artifact


class TestDataguideSet:
    def test_guide_for_document(self):
        builder = DataguideBuilder(0.4)
        builder.add_paths({"/a", "/a/b"}, 0)
        builder.add_paths({"/z", "/z/y"}, 1)
        guide_set = builder.build()
        assert guide_set.guide_for_document(0).contains_path("/a/b")
        assert guide_set.guide_for_document(1).contains_path("/z/y")

    def test_guides_for_path(self):
        builder = DataguideBuilder(0.4)
        builder.add_paths({"/a", "/a/b"}, 0)
        builder.add_paths({"/z", "/z/b"}, 1)
        guide_set = builder.build()
        assert len(guide_set.guides_for_path("/a/b")) == 1

    def test_false_positive_pairs(self):
        builder = DataguideBuilder(0.4)
        builder.add_paths({"/a", "/a/b", "/a/c"}, 0)
        builder.add_paths({"/a", "/a/b", "/a/d"}, 1)
        guide_set = builder.build()
        false_pairs, total_pairs = guide_set.false_positive_pairs()
        # (c, d) never co-occur in one source document.
        assert false_pairs == 1
        assert total_pairs == 6  # C(4, 2)

    def test_reduction_factor(self):
        builder = DataguideBuilder(0.4)
        for doc_id in range(10):
            builder.add_paths({"/a", "/a/b"}, doc_id)
        guide_set = builder.build()
        assert guide_set.reduction_factor(10) == 10.0

    def test_build_from_collection(self):
        collection = DocumentCollection()
        collection.add_document("<a><b>1</b></a>")
        collection.add_document("<a><b>2</b></a>")
        guide_set = DataguideBuilder(0.4).build(collection=collection)
        assert len(guide_set) == 1

    def test_links_from_graph(self, linked_collection):
        collection, graph = linked_collection
        guide_set = DataguideBuilder(0.4).build(
            collection=collection, graph=graph
        )
        assert len(guide_set.links) == 1
        source_guide, source_path, target_guide, target_path, kind, label = (
            guide_set.links[0]
        )
        assert source_path == "/city/country_ref"
        assert target_path == "/country"


_path_sets = st.lists(
    st.sets(
        st.sampled_from(
            ["/r"] + [f"/r/s{i}" for i in range(12)]
        ).map(lambda p: p),
        min_size=1,
        max_size=8,
    ).map(lambda s: s | {"/r"}),
    min_size=1,
    max_size=12,
)


class TestMergeProperties:
    @given(_path_sets, st.sampled_from([0.0, 0.3, 0.5, 0.8, 1.0]))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, streams, threshold):
        builder = DataguideBuilder(threshold)
        for doc_id, paths in enumerate(streams):
            builder.add_paths(paths, doc_id)
        guide_set = builder.build()
        # Every document is assigned to exactly one guide.
        assigned = []
        for guide in guide_set:
            assigned.extend(guide.document_ids)
        assert sorted(assigned) == list(range(len(streams)))
        # Every document's paths are contained in its guide.
        for doc_id, paths in enumerate(streams):
            guide = guide_set.guide_for_document(doc_id)
            assert paths <= guide.paths
        # Guide paths equal the union of their sources.
        for guide in guide_set:
            union = set()
            for source in guide.source_path_sets:
                union |= source
            assert guide.paths == union

    @given(_path_sets)
    @settings(max_examples=30, deadline=None)
    def test_guide_count_bounded_by_documents(self, streams):
        builder = DataguideBuilder(0.4)
        for doc_id, paths in enumerate(streams):
            builder.add_paths(paths, doc_id)
        assert 1 <= builder.guide_count <= len(streams)
