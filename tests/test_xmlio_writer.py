"""Serialization and parse/serialize round-trips (with hypothesis)."""

from hypothesis import given, strategies as st

from repro.xmlio import parse, serialize
from repro.xmlio.dom import Comment, Element, ProcessingInstruction


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_text_escaped(self):
        element = Element("a", children=["x < y & z"])
        assert serialize(element) == "<a>x &lt; y &amp; z</a>"

    def test_attributes_escaped(self):
        element = Element("a", {"v": 'say "hi" & <bye>'})
        assert 'v="say &quot;hi&quot; &amp; &lt;bye&gt;"' in serialize(element)

    def test_comment(self):
        element = Element("a", children=[Comment("note")])
        assert serialize(element) == "<a><!--note--></a>"

    def test_processing_instruction(self):
        element = Element("a", children=[ProcessingInstruction("t", "d")])
        assert serialize(element) == "<a><?t d?></a>"

    def test_pretty_printing_element_only(self):
        root = Element("a")
        root.element("b", text="x")
        pretty = serialize(root, indent="  ")
        assert pretty == "<a>\n  <b>x</b>\n</a>"

    def test_pretty_printing_preserves_mixed_content(self):
        root = Element("a", children=["text"])
        root.element("b")
        # Mixed content must not gain whitespace.
        assert serialize(root, indent="  ") == "<a>text<b/></a>"


_tag_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_.-]{0,8}", fullmatch=True)
_texts = st.text(
    alphabet=st.characters(
        codec="utf-8",
        categories=("L", "N", "P", "Zs"),
        exclude_characters="<>&\"'\r",
    ),
    min_size=1,
    max_size=30,
).filter(lambda s: s.strip())


@st.composite
def _elements(draw, depth=0):
    element = Element(draw(_tag_names))
    for name in draw(st.lists(_tag_names, max_size=3, unique=True)):
        element.attributes[name] = draw(_texts)
    if depth < 3:
        for child in draw(
            st.lists(
                st.one_of(
                    _texts,
                    st.deferred(lambda: _elements(depth + 1)),  # noqa: B023
                ),
                max_size=3,
            )
        ):
            element.append(child)
    return element


def _normalize(element):
    """Shape signature for comparison: tags, attrs, merged text runs."""
    children = []
    buffer = []
    for child in element.children:
        if isinstance(child, str):
            buffer.append(child)
        elif isinstance(child, Element):
            if buffer:
                children.append("".join(buffer))
                buffer = []
            children.append(_normalize(child))
    if buffer:
        children.append("".join(buffer))
    return (element.tag, tuple(sorted(element.attributes.items())), tuple(children))


class TestRoundTrip:
    @given(_elements())
    def test_parse_of_serialize_is_identity(self, element):
        reparsed = parse(serialize(element), strip_whitespace=False)
        assert _normalize(reparsed) == _normalize(element)

    @given(_elements())
    def test_serialize_is_stable(self, element):
        once = serialize(element)
        assert serialize(parse(once, strip_whitespace=False)) == once

    def test_figure2_style_document_roundtrip(self):
        source = (
            "<country>United States<year>2006</year>"
            "<economy><GDP_ppp>12.31T</GDP_ppp></economy></country>"
        )
        assert serialize(parse(source)) == source
