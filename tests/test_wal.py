"""Write-ahead log: format, torn-tail recovery, replay equivalence."""

import os
import warnings

import pytest

from repro.query.term import Query
from repro.shard import ShardedSeda
from repro.storage.wal import (
    WAL_MAGIC,
    WALError,
    WriteAheadLog,
    replay_wal,
    sharded_wal_file_name,
    verify_wal,
    wal_file_name,
)
from repro.system import Seda

DOCS = [
    ("alpha", "<r><a>red blue</a><b>green</b></r>"),
    ("bravo", "<r><a>blue</a><c>red red</c></r>"),
    ("charlie", "<r><b>green green</b><a>red</a></r>"),
]
BATCH = [("delta", "<r><a>red green</a><b>blue blue</b></r>")]
QUERIES = ([("*", "red")], [("a", "blue")], [("*", "green"), ("b", "*")])


def _canon(results):
    return [
        (r.node_ids, r.content_scores, r.compactness, r.score)
        for r in results
    ]


def _seda_answers(system):
    return [
        _canon(system.search(pairs, k=10).results) for pairs in QUERIES
    ]


def _sharded_answers(system):
    return [_canon(system.search(pairs, k=10)) for pairs in QUERIES]


class TestWALFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.wal"
        log = WriteAheadLog(path)
        payloads = [
            {"op": "add_documents", "documents": [["a", "<x/>"]]},
            {"op": "add_documents", "documents": [["b", "<y>text</y>"]],
             "value_links": []},
        ]
        for payload in payloads:
            log.append(payload)
        log.close()
        records, warning = replay_wal(path)
        assert records == payloads
        assert warning is None

    def test_missing_file_is_empty(self, tmp_path):
        records, warning = replay_wal(tmp_path / "absent.wal")
        assert records == []
        assert warning is None

    def test_truncate_resets(self, tmp_path):
        path = tmp_path / "x.wal"
        log = WriteAheadLog(path)
        log.append({"op": "add_documents", "documents": []})
        log.truncate()
        records, warning = replay_wal(path)
        assert records == []
        assert warning is None
        # and the file is appendable again afterwards
        log.append({"op": "add_documents", "documents": [["c", "<z/>"]]})
        log.close()
        records, _warning = replay_wal(path)
        assert len(records) == 1

    def test_foreign_magic_rejected(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(WALError, match="not a write-ahead log"):
            replay_wal(path)

    def test_torn_magic_is_empty_log(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(WAL_MAGIC[:5])
        records, warning = replay_wal(path)
        assert records == []
        assert "torn magic" in warning
        # the repair leaves a cleanly-empty log
        records, warning = replay_wal(path)
        assert (records, warning) == ([], None)

    @pytest.mark.parametrize("keep", [1, 3, 6])
    def test_torn_tail_truncated_with_warning(self, tmp_path, keep):
        path = tmp_path / "x.wal"
        log = WriteAheadLog(path)
        first = {"op": "add_documents", "documents": [["a", "<x/>"]]}
        log.append(first)
        log.append({"op": "add_documents", "documents": [["b", "<y/>"]]})
        log.close()
        blob = path.read_bytes()
        # cut the final record short, leaving `keep` of its bytes
        records_clean, _ = replay_wal(path)
        assert len(records_clean) == 2
        # find the second record's start: replay once on a copy missing it
        log2 = WriteAheadLog(tmp_path / "y.wal")
        log2.append(first)
        log2.close()
        second_start = (tmp_path / "y.wal").stat().st_size
        path.write_bytes(blob[:second_start + keep])
        records, warning = replay_wal(path)
        assert records == [first]
        assert "torn final record" in warning
        assert path.stat().st_size == second_start
        # a second replay is clean: the tail was truncated away
        records, warning = replay_wal(path)
        assert records == [first]
        assert warning is None

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "x.wal"
        log = WriteAheadLog(path)
        log.append({"op": "add_documents", "documents": [["a", "<x/>"]]})
        log.append({"op": "add_documents", "documents": [["b", "<y/>"]]})
        log.close()
        blob = bytearray(path.read_bytes())
        blob[len(WAL_MAGIC) + 10] ^= 0xFF  # inside the first payload
        path.write_bytes(bytes(blob))
        with pytest.raises(WALError, match="checksum"):
            replay_wal(path)

    def test_verify_is_read_only(self, tmp_path):
        path = tmp_path / "x.wal"
        log = WriteAheadLog(path)
        log.append({"op": "add_documents", "documents": [["a", "<x/>"]]})
        log.close()
        blob = path.read_bytes()
        path.write_bytes(blob + b"\x99\x00")  # torn tail
        report = verify_wal(path)
        assert report["present"]
        assert report["records"] == 1
        assert "torn" in report["torn_tail"]
        assert path.read_bytes() == blob + b"\x99\x00"  # untouched

    def test_verify_missing_file_healthy(self, tmp_path):
        report = verify_wal(tmp_path / "absent.wal")
        assert report == {"present": False, "records": 0,
                          "torn_tail": None, "error": None}


class TestSedaDurability:
    def test_batch_after_save_is_logged_and_replayed(self, tmp_path):
        path = str(tmp_path / "s.snapshot")
        system = Seda.from_documents(DOCS)
        system.save(path)
        system.add_documents(BATCH)
        expected = _seda_answers(system)
        assert os.path.exists(wal_file_name(path))
        # no save since the batch: the snapshot alone is stale, the
        # snapshot + log replay is exact
        recovered = Seda.load(path)
        assert _seda_answers(recovered) == expected

    def test_save_truncates_log(self, tmp_path):
        path = str(tmp_path / "s.snapshot")
        system = Seda.from_documents(DOCS)
        system.save(path)
        system.add_documents(BATCH)
        system.save(path)
        records, warning = replay_wal(wal_file_name(path))
        assert (records, warning) == ([], None)
        recovered = Seda.load(path)
        assert _seda_answers(recovered) == _seda_answers(system)

    def test_torn_tail_replays_to_pre_batch_state(self, tmp_path):
        path = str(tmp_path / "s.snapshot")
        system = Seda.from_documents(DOCS)
        system.save(path)
        expected = _seda_answers(system)
        system.add_documents(BATCH)
        # tear the logged batch: only half its bytes reached disk
        wal_path = wal_file_name(path)
        blob = (tmp_path / "s.snapshot.wal").read_bytes()
        cut = len(WAL_MAGIC) + (len(blob) - len(WAL_MAGIC)) // 2
        (tmp_path / "s.snapshot.wal").write_bytes(blob[:cut])
        with pytest.warns(UserWarning, match="torn final record"):
            recovered = Seda.load(path)
        assert _seda_answers(recovered) == expected
        assert os.path.getsize(wal_path) == len(WAL_MAGIC)

    def test_unknown_wal_operation_raises(self, tmp_path):
        path = str(tmp_path / "s.snapshot")
        Seda.from_documents(DOCS).save(path)
        log = WriteAheadLog(wal_file_name(path))
        log.append({"op": "drop_everything"})
        log.close()
        with pytest.raises(WALError, match="unknown operation"):
            Seda.load(path)

    def test_replayed_value_links_survive(self, tmp_path):
        from repro.model.links import ValueLinkSpec

        path = str(tmp_path / "s.snapshot")
        system = Seda.from_documents(DOCS)
        system.save(path)
        spec = ValueLinkSpec("/r/a", "/r/c", label="wal-spec")
        system.add_documents(BATCH, value_links=[spec])
        recovered = Seda.load(path)
        assert [s.to_dict() for s in recovered.value_links] == [
            s.to_dict() for s in system.value_links
        ]

    def test_element_documents_are_logged_as_xml(self, tmp_path):
        """Elements must serialize into the log: replay re-parses the
        identical markup instead of crashing on a repr string."""
        from repro.xmlio.parser import parse

        path = str(tmp_path / "s.snapshot")
        system = Seda.from_documents(DOCS)
        system.save(path)
        element = parse("<r><a>parsed element</a></r>")
        system.add_documents([("echo", element)])
        recovered = Seda.load(path)
        assert _seda_answers(recovered) == _seda_answers(system)


class TestShardedDurability:
    def test_batch_after_save_is_logged_and_replayed(self, tmp_path):
        directory = str(tmp_path / "s.shards")
        system = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        system.save(directory)
        system.add_documents(BATCH)
        expected = _sharded_answers(system)
        assert os.path.exists(sharded_wal_file_name(directory))
        recovered = ShardedSeda.load(directory)
        assert _sharded_answers(recovered) == expected

    def test_save_truncates_log(self, tmp_path):
        directory = str(tmp_path / "s.shards")
        system = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        system.save(directory)
        system.add_documents(BATCH)
        system.save(directory)
        records, warning = replay_wal(sharded_wal_file_name(directory))
        assert (records, warning) == ([], None)
        recovered = ShardedSeda.load(directory)
        assert _sharded_answers(recovered) == _sharded_answers(system)

    def test_replay_matches_unsharded_answers(self, tmp_path):
        directory = str(tmp_path / "s.shards")
        system = ShardedSeda.from_documents(DOCS, shards=2, parallel=False)
        system.save(directory)
        system.add_documents(BATCH)
        plain = Seda.from_documents(DOCS + BATCH)
        recovered = ShardedSeda.load(directory)
        for pairs in QUERIES:
            assert _canon(recovered.search(pairs, k=10)) == _canon(
                plain.topk.search(Query.parse(pairs), k=10)
            )
