"""Graceful shard degradation: retries, recovery, timeouts, partial serving.

The default scatter is fail-fast and byte-identical to the unsharded
system; every behaviour here is opt-in through
:meth:`ShardedSeda.configure_degradation`.
"""

import time

import pytest

from repro.shard import ShardedSeda
from repro.shard.sharded import ShardSearchTimeout

DOCS = [
    ("alpha", "<r><a>red blue</a><b>green</b></r>"),
    ("bravo", "<r><a>blue</a><c>red red</c></r>"),
    ("charlie", "<r><b>green green</b><a>red</a></r>"),
    ("delta", "<r><a>red green</a><b>blue blue</b></r>"),
]
BATCH = [("echo", "<r><c>red blue green</c></r>")]
QUERY = [("*", "red")]


def _canon(results):
    return [
        (r.node_ids, r.content_scores, r.compactness, r.score)
        for r in results
    ]


class _BrokenSearcher:
    """Stands in for a shard searcher whose process state is wedged."""

    def __init__(self, error=None):
        self.error = error if error is not None else RuntimeError(
            "shard wedged"
        )

    def search(self, query, k=10, shared_bound=None):
        raise self.error


class _StallingSearcher:
    """A searcher that never comes back within any sane timeout."""

    def search(self, query, k=10, shared_bound=None):
        time.sleep(5)
        return []


@pytest.fixture
def saved(tmp_path):
    directory = str(tmp_path / "col.shards")
    ShardedSeda.from_documents(DOCS, shards=2, parallel=False).save(
        directory
    )
    return directory


class TestFailFastDefault:
    def test_shard_failure_propagates_without_a_policy(self, saved):
        system = ShardedSeda.load(saved)
        system._searchers[0] = _BrokenSearcher()
        with pytest.raises(RuntimeError, match="shard wedged"):
            system.search(QUERY, k=10)


class TestRetryAndRecovery:
    def test_retry_recovers_crashed_shard(self, saved):
        system = ShardedSeda.load(saved)
        expected = _canon(system.search(QUERY, k=10))
        system._searchers[0] = _BrokenSearcher()
        system.configure_degradation(retries=1, backoff=0)
        assert _canon(system.search(QUERY, k=10)) == expected
        assert system.recovery_epoch == 1
        assert system.last_search_stats["failed_shards"] == []

    def test_recovery_replays_live_wal_batches(self, saved):
        """A recovered shard must include batches acknowledged since the
        last save: they live only in the write-ahead log."""
        system = ShardedSeda.load(saved)
        system.add_documents(BATCH)
        expected = _canon(system.search(QUERY, k=10))
        system._searchers[0] = _BrokenSearcher()
        system._searchers[1] = _BrokenSearcher()
        system.configure_degradation(retries=1, backoff=0)
        assert _canon(system.search(QUERY, k=10)) == expected
        assert system.recovery_epoch == 2

    def test_disabling_restores_fail_fast(self, saved):
        system = ShardedSeda.load(saved)
        system.configure_degradation(retries=1, backoff=0)
        assert system.configure_degradation(enabled=False) is None
        system._searchers[0] = _BrokenSearcher()
        with pytest.raises(RuntimeError, match="shard wedged"):
            system.search(QUERY, k=10)


class TestPartialServing:
    def test_partial_results_flag_failed_shards(self, saved):
        system = ShardedSeda.load(saved)
        full = _canon(system.search(QUERY, k=10))
        system._searchers[0] = _BrokenSearcher()
        system.configure_degradation(
            retries=0, backoff=0, recover=False, allow_partial=True
        )
        partial = _canon(system.search(QUERY, k=10))
        failed = system.last_search_stats["failed_shards"]
        assert [entry["shard"] for entry in failed] == [0]
        assert "shard wedged" in failed[0]["error"]
        # The healthy shard's answers survive, nothing is invented.
        assert set(partial) <= set(full)
        assert partial != full
        # A healed shard serves complete answers again.
        system._searchers[0] = None
        assert _canon(system.search(QUERY, k=10)) == full
        assert system.last_search_stats["failed_shards"] == []

    def test_partial_answers_are_never_cached(self, saved):
        system = ShardedSeda.load(saved)
        system.configure_degradation(
            retries=0, backoff=0, recover=False, allow_partial=True
        )
        service = system.query_service(workers=1)
        full, _stats = service.execute(QUERY, k=10)
        # Wedge shard 0 in the only searcher group, bypassing the
        # version-keyed rebuild (same matcher = no rebuild).
        original = service._group_pool[0][0]
        broken = _BrokenSearcher()
        broken.matcher = original.matcher
        service._group_pool[0][0] = broken
        system._searchers = [None] * len(system._searchers)
        service.cache.invalidate()
        partial, stats = service.execute(QUERY, k=10)
        assert [entry["shard"] for entry in stats.failed_shards] == [0]
        assert _canon(partial) != _canon(full)
        # Heal the shard: the same query must be recomputed, not served
        # from a cache poisoned with the partial merge.
        service._group_pool[0][0] = original
        healed, stats = service.execute(QUERY, k=10)
        assert not stats.cache_hit
        assert _canon(healed) == _canon(full)
        assert not stats.failed_shards
        # ... and a complete answer *is* cached as usual.
        again, stats = service.execute(QUERY, k=10)
        assert stats.cache_hit
        assert _canon(again) == _canon(full)


class TestTimeouts:
    def test_stalled_shard_times_out(self, saved):
        system = ShardedSeda.load(saved)
        system._searchers[0] = _StallingSearcher()
        system.configure_degradation(
            retries=0, backoff=0, timeout=0.05, recover=False
        )
        with pytest.raises(ShardSearchTimeout, match="0.05"):
            system.search(QUERY, k=10)

    def test_timeout_retries_on_a_fresh_searcher(self, saved):
        system = ShardedSeda.load(saved)
        expected = _canon(system.search(QUERY, k=10))
        system._searchers[0] = _StallingSearcher()
        system.configure_degradation(
            retries=1, backoff=0, timeout=0.2, recover=False
        )
        assert _canon(system.search(QUERY, k=10)) == expected
        # A timeout is a slow shard, not a broken one: no recovery ran.
        assert system.recovery_epoch == 0
