"""Query language: full-text parser, context specs, Definition 3."""

import pytest

from repro.query.ast import (
    And,
    Keyword,
    MatchAll,
    Not,
    Or,
    Phrase,
    QuerySyntaxError,
)
from repro.query.parser import parse_query_text
from repro.query.term import (
    ContextDisjunction,
    EmptyContext,
    PathContext,
    Query,
    QueryTerm,
    TagContext,
    parse_context,
)


class TestSearchParser:
    def test_single_keyword(self):
        assert parse_query_text("Romania") == Keyword("romania")

    def test_bag_of_keywords_is_and(self):
        expr = parse_query_text("united import")
        assert expr == And([Keyword("united"), Keyword("import")])

    def test_phrase(self):
        assert parse_query_text('"United States"') == Phrase(
            ["united", "states"]
        )

    def test_single_word_phrase_is_keyword(self):
        assert parse_query_text('"Romania"') == Keyword("romania")

    def test_explicit_and(self):
        assert parse_query_text("a AND b") == And([Keyword("a"), Keyword("b")])

    def test_or(self):
        assert parse_query_text("a OR b") == Or([Keyword("a"), Keyword("b")])

    def test_precedence_and_binds_tighter(self):
        expr = parse_query_text("a b OR c")
        assert expr == Or([And([Keyword("a"), Keyword("b")]), Keyword("c")])

    def test_parentheses(self):
        expr = parse_query_text("a (b OR c)")
        assert expr == And([Keyword("a"), Or([Keyword("b"), Keyword("c")])])

    def test_not(self):
        expr = parse_query_text("a NOT b")
        assert expr == And([Keyword("a"), Not(Keyword("b"))])

    def test_star_is_match_all(self):
        assert parse_query_text("*") == MatchAll()

    def test_empty_is_match_all(self):
        assert parse_query_text("") == MatchAll()
        assert parse_query_text(None) == MatchAll()

    def test_operators_case_insensitive(self):
        assert parse_query_text("a and b") == And([Keyword("a"), Keyword("b")])

    @pytest.mark.parametrize("source", ['"unterminated', "a )", "( a", "AND"])
    def test_malformed_raises(self, source):
        with pytest.raises(QuerySyntaxError):
            parse_query_text(source)

    def test_terms_collected(self):
        expr = parse_query_text('"united states" AND import NOT export')
        assert expr.terms() == ["united", "states", "import"]


class TestContextParsing:
    def test_star_is_empty(self):
        assert parse_context("*") == EmptyContext()
        assert parse_context("") == EmptyContext()
        assert parse_context(None) == EmptyContext()

    def test_path(self):
        context = parse_context("/country/year")
        assert context == PathContext("/country/year")

    def test_tag(self):
        assert parse_context("percentage") == TagContext("percentage")

    def test_disjunction(self):
        context = parse_context("trade_country|/country/year")
        assert isinstance(context, ContextDisjunction)
        assert context.alternatives == (
            TagContext("trade_country"),
            PathContext("/country/year"),
        )

    def test_existing_context_passthrough(self):
        context = PathContext("/a")
        assert parse_context(context) is context

    def test_path_requires_leading_slash(self):
        with pytest.raises(ValueError):
            PathContext("country/year")


class TestContextMatching:
    def test_empty_matches_everything(self, figure2_collection):
        context = EmptyContext()
        assert all(
            context.matches(node) for node in figure2_collection.iter_nodes()
        )

    def test_tag_matches_node_name(self, figure2_collection):
        context = TagContext("percentage")
        matched = [
            node for node in figure2_collection.iter_nodes()
            if context.matches(node)
        ]
        assert len(matched) == 7  # 5 import + 2 export percentages... no:
        # usa-2006: 2 import + 1 export; usa-2002: 1 import;
        # mexico: 2 import + 1 export = 7 total.

    def test_tag_wildcard(self, figure2_collection):
        context = TagContext("GDP*")
        matched = {
            node.tag for node in figure2_collection.iter_nodes()
            if context.matches(node)
        }
        assert matched == {"GDP", "GDP_ppp"}

    def test_path_matches_full_context(self, figure2_collection):
        context = PathContext("/country/economy/GDP")
        matched = [
            node for node in figure2_collection.iter_nodes()
            if context.matches(node)
        ]
        assert len(matched) == 2  # usa-2002, mexico-2003

    def test_matches_path_string(self):
        assert TagContext("b").matches_path("/a/b")
        assert not TagContext("a").matches_path("/a/b")
        assert PathContext("/a/b").matches_path("/a/b")
        assert EmptyContext().matches_path("/anything")

    def test_disjunction_matches_any(self):
        context = parse_context("year|percentage")
        assert context.matches_path("/country/year")
        assert context.matches_path("/c/e/i/i/percentage")
        assert not context.matches_path("/country/economy")


class TestQueryConstruction:
    def test_parse_pairs(self):
        query = Query.parse([("*", '"United States"'), ("percentage", "*")])
        assert len(query) == 2
        assert query.terms[0].context == EmptyContext()
        assert query.terms[1].is_match_all

    def test_term_from_tuple(self):
        query = Query([("country", "Romania")])
        assert isinstance(query.terms[0], QueryTerm)

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            Query([])

    def test_prebuilt_search_expr(self):
        term = QueryTerm("*", Phrase(["united", "states"]))
        assert term.search == Phrase(["united", "states"])
