"""Crash sweep for the serving path: SIGKILL a live server everywhere.

``tests/test_crash_recovery.py`` proves the load-add-save cycle is
crash-consistent by SIGKILLing a writer child at every durable
operation.  This file makes the same claim about the *server*: a real
``repro serve`` subprocess, armed through the cross-process seam
(``REPRO_KILL_SWITCH=n`` -- see ``repro.testing.faults``), is killed
at the n-th durable operation while a client drives an online ingest
followed by an HTTP drain.  The parent then recovers whatever hit the
disk and asserts, for every n until the server survives:

* recovery lands on the pre-batch or post-batch answers, never a
  hybrid -- and once the client saw the ingest acknowledged (HTTP
  200), recovery *must* be post-batch: acknowledged means WAL-durable;
* the surviving files pass ``fsck``;
* outcomes are monotonic (pre ... pre, post ... post): durability
  never regresses as the kill point moves later.

The sweep therefore crashes into the WAL append of a live ingest, the
snapshot commit inside drain, and the WAL truncation after it --
every durable seam the serving path crosses.
"""

import os
import shutil
import signal
import subprocess
import sys
import warnings

from repro.serving import ServingClient
from repro.shard import ShardedSeda
from repro.storage.snapshot import fsck_report
from repro.system import Seda
from tests.test_server import _spawn_serve

DOCS = [
    ("alpha", "<r><a>red blue</a><b>green</b></r>"),
    ("bravo", "<r><a>blue</a><c>red red</c></r>"),
    ("charlie", "<r><b>green green</b><a>red</a></r>"),
]
BATCH = [("delta", "<r><a>red green</a><b>blue blue</b></r>")]
QUERIES = ([("*", "red")], [("a", "blue")], [("*", "green"), ("b", "*")])


def _canon(system):
    search = (system.search if isinstance(system, ShardedSeda)
              else lambda pairs, k: system.search(pairs, k=k).results)
    state = []
    for pairs in QUERIES:
        state.append([
            (r.node_ids, r.content_scores, r.compactness, r.score)
            for r in search(pairs, k=10)
        ])
    return state


def _copy_baseline(baseline, work):
    if os.path.isdir(baseline):
        shutil.copytree(baseline, work)
        return
    shutil.copy(baseline, work)
    for suffix in (".cols", ".wal"):
        if os.path.exists(baseline + suffix):
            shutil.copy(baseline + suffix, work + suffix)


def _drive_once(snapshot, n):
    """One armed server run: returns (returncode, ingest_acknowledged)."""
    process, host, port = _spawn_serve(
        snapshot, env_extra={"REPRO_KILL_SWITCH": str(n)}
    )
    acknowledged = False
    try:
        with ServingClient(host, port, timeout=30) as client:
            try:
                response = client.add_documents(
                    [list(pair) for pair in BATCH]
                )
                acknowledged = response["added"] == len(BATCH)
                client.drain()
            except Exception:
                # The kill switch took the server mid-request; the
                # parent's recovery checks below are the real assert.
                pass
        returncode = process.wait(timeout=60)
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup
            process.kill()
            process.wait(timeout=30)
            returncode = process.returncode
    return returncode, acknowledged


def _sweep(baseline, loader, pre, post, tmp_path):
    outcomes = []
    n = 0
    while True:
        n += 1
        assert n < 100, "kill sweep did not terminate"
        suffix = ".shards" if os.path.isdir(baseline) else ".snapshot"
        work = str(tmp_path / f"work-{n}{suffix}")
        _copy_baseline(baseline, work)
        returncode, acknowledged = _drive_once(work, n)
        if returncode != 0:
            assert returncode == -signal.SIGKILL, returncode
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovered = loader(work)
        got = _canon(recovered)
        assert got in (pre, post), (
            f"kill at operation {n} recovered to neither the pre- nor "
            f"the post-batch answers"
        )
        if acknowledged:
            assert got == post, (
                f"kill at operation {n}: the ingest was acknowledged "
                f"over HTTP but recovery lost it"
            )
        outcomes.append("post" if got == post else "pre")
        report = fsck_report(work)
        assert report["ok"], (n, report["problems"])
        if returncode == 0:
            return outcomes


def _check_outcomes(outcomes):
    assert "pre" in outcomes and "post" in outcomes
    assert outcomes[-1] == "post"
    # Durability is monotonic in time: once a kill point lands after
    # the acknowledgment, every later one must too.
    assert outcomes == sorted(outcomes, key=("pre", "post").index)


class TestServerCrashRecovery:
    def test_sigkill_live_server_at_every_operation(self, tmp_path):
        baseline = str(tmp_path / "baseline.snapshot")
        Seda.from_documents(DOCS).save(baseline)
        pre = _canon(Seda.load(baseline))
        reference = Seda.from_documents(DOCS)
        reference.add_documents(BATCH)
        post = _canon(reference)
        assert pre != post

        outcomes = _sweep(baseline, Seda.load, pre, post, tmp_path)
        _check_outcomes(outcomes)


class TestShardedServerCrashRecovery:
    def test_sigkill_live_sharded_server_at_every_operation(
        self, tmp_path
    ):
        baseline = str(tmp_path / "baseline.shards")
        ShardedSeda.from_documents(DOCS, shards=2, parallel=False).save(
            baseline
        )
        pre = _canon(ShardedSeda.load(baseline))
        reference = ShardedSeda.from_documents(DOCS, shards=2,
                                               parallel=False)
        reference.add_documents(BATCH)
        post = _canon(reference)
        assert pre != post

        outcomes = _sweep(baseline, ShardedSeda.load, pre, post,
                          tmp_path)
        _check_outcomes(outcomes)
