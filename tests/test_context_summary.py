"""Context summaries (Section 5)."""

from repro.query.term import PathContext, Query
from repro.summaries.context import ContextSummaryGenerator


QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


class TestContextBuckets:
    def test_bucket_per_term(self, figure2_matcher):
        generator = ContextSummaryGenerator(figure2_matcher)
        summary = generator.generate(Query.parse(QUERY_1))
        assert len(summary) == 3

    def test_example1_contexts(self, figure2_matcher):
        """Example 1 on the Figure 2 fragments: 3 contexts for 'United
        States', 2 for trade_country, 2 for percentage."""
        generator = ContextSummaryGenerator(figure2_matcher)
        summary = generator.generate(Query.parse(QUERY_1))
        assert [len(bucket) for bucket in summary] == [3, 2, 2]

    def test_twelve_combinations(self, figure2_matcher):
        """'This suggests 12 different ways of combining these nodes.'"""
        generator = ContextSummaryGenerator(figure2_matcher)
        summary = generator.generate(Query.parse(QUERY_1))
        assert summary.combination_count() == 12

    def test_sorted_by_absolute_path_frequency(self, figure2_collection,
                                               figure2_matcher):
        generator = ContextSummaryGenerator(figure2_matcher)
        summary = generator.generate(Query.parse(QUERY_1))
        bucket = summary.bucket(0)
        frequencies = [entry.occurrences for entry in bucket]
        assert frequencies == sorted(frequencies, reverse=True)
        # Frequencies are collection-wide path counts, irrespective of
        # the keyword (the paper's departure from faceted search).
        for entry in bucket:
            assert entry.occurrences == figure2_collection.path_occurrences(
                entry.path
            )

    def test_document_frequency_exposed(self, figure2_collection,
                                        figure2_matcher):
        generator = ContextSummaryGenerator(figure2_matcher)
        summary = generator.generate(Query.parse(QUERY_1))
        for entry in summary.bucket(0):
            assert (
                entry.document_frequency
                == figure2_collection.path_document_frequency(entry.path)
            )


class TestRefinement:
    def test_refine_restricts_context(self, figure2_matcher):
        generator = ContextSummaryGenerator(figure2_matcher)
        query = Query.parse(QUERY_1)
        refined = generator.refine(
            query,
            {1: ["/country/economy/import_partners/item/trade_country"]},
        )
        assert isinstance(refined.terms[1].context, PathContext)
        # Untouched terms keep their context objects.
        assert refined.terms[0].context is query.terms[0].context

    def test_refine_multiple_paths_is_disjunction(self, figure2_matcher):
        from repro.query.term import ContextDisjunction

        generator = ContextSummaryGenerator(figure2_matcher)
        query = Query.parse(QUERY_1)
        refined = generator.refine(
            query,
            {2: [
                "/country/economy/import_partners/item/percentage",
                "/country/economy/export_partners/item/percentage",
            ]},
        )
        assert isinstance(refined.terms[2].context, ContextDisjunction)

    def test_refined_candidates_shrink(self, figure2_matcher):
        generator = ContextSummaryGenerator(figure2_matcher)
        query = Query.parse(QUERY_1)
        refined = generator.refine(
            query,
            {0: ["/country"]},
        )
        before = figure2_matcher.candidates(query.terms[0])
        after = figure2_matcher.candidates(refined.terms[0])
        assert set(after) < set(before)
        assert len(after) == 2  # the two US documents
