"""Tokenizer, analyzer, and Porter stemmer (with hypothesis)."""

from hypothesis import given, strategies as st

from repro.text.analyzer import Analyzer
from repro.text.stemmer import PorterStemmer
from repro.text.tokenizer import tokenize


class TestTokenizer:
    def test_simple_words(self):
        assert [t.text for t in tokenize("hello world")] == ["hello", "world"]

    def test_positions_sequential(self):
        tokens = tokenize("a b c")
        assert [t.position for t in tokens] == [0, 1, 2]

    def test_offsets_match_source(self):
        text = "alpha  beta"
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_percentage_value_single_token(self):
        assert [t.text for t in tokenize("16.9%")] == ["16.9%"]

    def test_magnitude_suffix(self):
        assert [t.text for t in tokenize("12.31T")] == ["12.31T"]

    def test_thousands_separator(self):
        assert [t.text for t in tokenize("2,450 people")] == ["2,450", "people"]

    def test_underscore_tag_names(self):
        assert [t.text for t in tokenize("GDP_ppp")] == ["GDP_ppp"]

    def test_trailing_punctuation_dropped(self):
        assert [t.text for t in tokenize("end.")] == ["end"]

    def test_hyphenated_word(self):
        assert [t.text for t in tokenize("Guinea-Bissau")] == ["Guinea-Bissau"]

    def test_empty_and_punctuation_only(self):
        assert tokenize("") == []
        assert tokenize("... !!! ---") == []

    @given(st.text(max_size=200))
    def test_never_hangs_or_misaligns(self, text):
        for token in tokenize(text):
            assert 0 <= token.start < token.end <= len(text)
            assert text[token.start:token.end] == token.text

    @given(st.text(alphabet="ab-.% $", max_size=50))
    def test_punctuation_boundaries(self, text):
        tokens = tokenize(text)
        positions = [t.position for t in tokens]
        assert positions == list(range(len(tokens)))


class TestAnalyzer:
    def test_lowercases_by_default(self):
        assert Analyzer().terms("United States") == ["united", "states"]

    def test_no_lowercase_option(self):
        analyzer = Analyzer(lowercase=False)
        assert analyzer.terms("United") == ["United"]

    def test_stopword_removal_preserves_positions(self):
        analyzer = Analyzer(remove_stopwords=True)
        tokens = analyzer.analyze("the quick fox")
        assert [t.text for t in tokens] == ["quick", "fox"]
        assert [t.position for t in tokens] == [1, 2]

    def test_stopwords_kept_by_default(self):
        assert "the" in Analyzer().terms("the fox")

    def test_stemming(self):
        analyzer = Analyzer(stem=True)
        assert analyzer.terms("connections") == ["connect"]

    def test_term_single(self):
        assert Analyzer().term("Romania") == "romania"

    def test_term_vanishing(self):
        analyzer = Analyzer(remove_stopwords=True)
        assert analyzer.term("the") is None


class TestPorterStemmer:
    def test_classic_examples(self):
        stemmer = PorterStemmer()
        expected = {
            "caresses": "caress",
            "ponies": "poni",
            "caress": "caress",
            "cats": "cat",
            "feed": "feed",
            "agreed": "agre",
            "plastered": "plaster",
            "motoring": "motor",
            "sing": "sing",
            "conflated": "conflat",
            "troubling": "troubl",
            "sized": "size",
            "hopping": "hop",
            "falling": "fall",
            "hissing": "hiss",
            "happy": "happi",
            "relational": "relat",
            "conditional": "condit",
            "valency": "valenc",
            "digitizer": "digit",
            "conformably": "conform",
            "radically": "radic",
            "differently": "differ",
            "analogously": "analog",
            "vietnamization": "vietnam",
            "predication": "predic",
            "operator": "oper",
            "feudalism": "feudal",
            "decisiveness": "decis",
            "hopefulness": "hope",
            "callousness": "callous",
            "formality": "formal",
            "sensitivity": "sensit",
            "sensibility": "sensibl",
            "triplicate": "triplic",
            "formative": "form",
            "formalize": "formal",
            "electricity": "electr",
            "electrical": "electr",
            "hopeful": "hope",
            "goodness": "good",
            "revival": "reviv",
            "allowance": "allow",
            "inference": "infer",
            "airliner": "airlin",
            "adjustable": "adjust",
            "defensible": "defens",
            "irritant": "irrit",
            "replacement": "replac",
            "adjustment": "adjust",
            "dependent": "depend",
            "adoption": "adopt",
            "communism": "commun",
            "activate": "activ",
            "angularity": "angular",
            "homologous": "homolog",
            "effective": "effect",
            "bowdlerize": "bowdler",
            "probate": "probat",
            "rate": "rate",
            "cease": "ceas",
            "controll": "control",
            "roll": "roll",
        }
        failures = {
            word: (stemmer.stem(word), stem)
            for word, stem in expected.items()
            if stemmer.stem(word) != stem
        }
        assert not failures

    def test_short_words_untouched(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("at") == "at"
        assert stemmer.stem("of") == "of"

    @given(st.from_regex(r"[a-z]{1,20}", fullmatch=True))
    def test_idempotent_on_stems(self, word):
        stemmer = PorterStemmer()
        once = stemmer.stem(word)
        assert stemmer.stem(once) == stemmer.stem(once)

    @given(st.from_regex(r"[a-zA-Z]{1,20}", fullmatch=True))
    def test_output_nonempty_lowercase(self, word):
        stem = PorterStemmer().stem(word)
        assert stem
        assert stem == stem.lower()
