"""Documentation stays true: runnable API docs, consistency gates.

Three enforcement layers:

* ``docs/API.md``'s python blocks are executed, top to bottom, in one
  shared namespace -- the walk-through *is* a test.
* Consistency gates: every CLI subcommand must be documented in the
  README, every ``docs/*.md`` cross-reference must resolve, and
  ``CHANGES.md`` must carry an entry for the sharding PR (the
  convention: every PR appends one line, so the next session knows
  what is done).
* Every module under ``src/repro`` must open with a docstring stating
  its role (checked via ``ast``, no imports needed).
"""

import argparse
import ast
import pathlib
import re

import pytest

from repro.cli import build_parser


def _subparser_actions(parser):
    return [
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    ]

ROOT = pathlib.Path(__file__).parent.parent
DOCS = ROOT / "docs"
SRC = ROOT / "src" / "repro"


def _python_blocks(markdown_path):
    """The ``python`` fenced code blocks of a markdown file, in order."""
    text = markdown_path.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestApiWalkthrough:
    def test_api_md_snippets_run(self):
        """docs/API.md executes cleanly as one cumulative session."""
        blocks = _python_blocks(DOCS / "API.md")
        assert len(blocks) >= 6, "API.md lost its runnable walk-through"
        namespace = {"__name__": "docs_api_walkthrough"}
        for index, block in enumerate(blocks):
            try:
                exec(compile(block, f"docs/API.md[block {index}]", "exec"),
                     namespace)
            except Exception as error:  # pragma: no cover - failure path
                pytest.fail(
                    f"docs/API.md block {index} failed: {error}\n{block}"
                )

    def test_api_md_covers_the_entry_points(self):
        text = (DOCS / "API.md").read_text(encoding="utf-8")
        for name in ("Seda.from_documents", "search_many", "query_service",
                     "ShardedSeda", "shard_summary", "save", "load"):
            assert name in text, f"API.md no longer documents {name}"


class TestCliReadmeConsistency:
    def test_every_subcommand_is_in_the_readme(self):
        """`repro --help` and README.md must agree on the CLI surface."""
        readme = (ROOT / "README.md").read_text(encoding="utf-8")
        parser = build_parser()
        (subparsers,) = _subparser_actions(parser)
        for command, sub in sorted(subparsers.choices.items()):
            assert command in readme, (
                f"README.md does not mention the `{command}` subcommand"
            )
            for group in _subparser_actions(sub):
                for nested_command in group.choices:
                    assert f"{command} {nested_command}" in readme, (
                        f"README.md does not mention "
                        f"`{command} {nested_command}`"
                    )

    def test_docs_cross_references_resolve(self):
        """Relative markdown links inside docs/ and README must exist."""
        for source in (ROOT / "README.md", *DOCS.glob("*.md")):
            base = source.parent
            for target in re.findall(
                r"\]\((?!https?://|#)([^)#]+)\)",
                source.read_text(encoding="utf-8"),
            ):
                assert (base / target).exists(), (
                    f"{source.name} links to missing {target}"
                )

    def test_docs_suite_is_present(self):
        for name in ("ARCHITECTURE.md", "OPERATIONS.md", "API.md"):
            assert (DOCS / name).exists(), f"docs/{name} is missing"
        architecture = (DOCS / "ARCHITECTURE.md").read_text(encoding="utf-8")
        assert "## Sharding" in architecture


class TestChangelogDiscipline:
    def test_changes_md_has_one_entry_per_pr(self):
        text = (ROOT / "CHANGES.md").read_text(encoding="utf-8")
        entries = [
            line for line in text.splitlines()
            if line.startswith("- PR ")
        ]
        assert len(entries) >= 4, (
            "CHANGES.md must keep one `- PR n:` line per merged PR"
        )

    def test_changes_md_records_the_sharding_pr(self):
        text = (ROOT / "CHANGES.md").read_text(encoding="utf-8").lower()
        assert "shard" in text, (
            "CHANGES.md lacks an entry for the sharding PR"
        )


class TestModuleDocstrings:
    def test_every_module_states_its_role(self):
        missing = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            if ast.get_docstring(tree) is None:
                missing.append(str(path.relative_to(ROOT)))
        assert not missing, (
            f"modules without a module docstring: {missing}"
        )

    def test_every_package_states_its_role(self):
        for package in sorted(SRC.rglob("__init__.py")):
            tree = ast.parse(package.read_text(encoding="utf-8"))
            docstring = ast.get_docstring(tree)
            assert docstring and len(docstring.split()) >= 5, (
                f"{package.relative_to(ROOT)} needs a real package "
                f"docstring"
            )
