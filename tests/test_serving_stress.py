"""Serving under concurrent readers and a mutating writer.

The serving contract (see ``repro.service.query_service``) is
single-writer / many-readers: mutations are serialized against query
execution, but *between* mutations any number of threads may hammer
the service.  This battery drives both facades through that regime:

* N reader threads issue batches while a writer thread ingests
  documents (under the product
  :class:`~repro.serving.rwlock.ReadWriteLock` -- the same lock
  ``repro serve`` uses for this exact discipline);
* every answer a reader observes must equal the ground truth computed
  by a bare searcher *at the graph version the answer was served
  under* -- a stale cache hit surviving a version bump would surface
  here as a cross-version mismatch;
* no thread may observe an exception;
* with observability on, the registry's total must equal the number
  of queries actually served.
"""

import json
import threading

import pytest

from repro.query.term import Query
from repro.search.topk import TopKSearcher
from repro.serving.rwlock import ReadWriteLock
from repro.system import Seda

READERS = 4
ROUNDS = 6
INGESTS = 3

QUERIES = (
    [("*", "france"), ("gdp", "*")],
    [("name", "*")],
    [("*", "spain"), ("year", "*")],
    [("gdp", "*"), ("year", "*")],
)


def _doc(index):
    names = ("France", "Spain", "Chile", "Japan", "Ghana", "Peru", "Oman")
    name = names[index % len(names)]
    return (
        f"doc-{index}.xml",
        f"<country><name>{name} city{index}</name>"
        f"<gdp>{100 * (index + 1)}</gdp>"
        f"<year>{2000 + index}</year></country>",
    )


def _canonical(results):
    return json.dumps(
        [[list(r.node_ids), round(r.score, 12)] for r in results],
        separators=(",", ":"),
    )


def _stress(system, service, version_of, searcher_factory):
    """Drive readers + writer; return (errors, served_count, truth_map)."""
    lock = ReadWriteLock()
    errors = []
    served = []
    ground_truth = {}

    def snapshot_truth():
        version = version_of()
        searcher = searcher_factory()
        ground_truth[version] = {
            index: _canonical(searcher(Query.parse(pairs), 5))
            for index, pairs in enumerate(QUERIES)
        }

    snapshot_truth()
    start = threading.Barrier(READERS + 1)

    def reader():
        try:
            start.wait()
            for _ in range(ROUNDS):
                lock.acquire_read()
                try:
                    version = version_of()
                    results, _stats = service.execute_batch(
                        list(QUERIES), k=5
                    )
                    observed = [
                        (version, index, _canonical(result))
                        for index, result in enumerate(results)
                    ]
                finally:
                    lock.release_read()
                served.extend(observed)  # GIL-atomic appends
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def writer():
        try:
            start.wait()
            for round_index in range(INGESTS):
                lock.acquire_write()
                try:
                    system.add_documents([_doc(100 + round_index)])
                    snapshot_truth()
                finally:
                    lock.release_write()
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors, served, ground_truth


class TestQueryServiceStress:
    def test_concurrent_readers_with_mutating_writer(self):
        system = Seda.from_documents([_doc(index) for index in range(5)])
        registry = system.enable_observability(slow_threshold=10.0)
        service = system.query_service(workers=3)
        errors, served, ground_truth = _stress(
            system,
            service,
            lambda: system.graph.version,
            lambda: (
                lambda searcher: searcher.search
            )(TopKSearcher(system.matcher, system.scoring).warm()),
        )
        assert errors == []
        assert len(served) == READERS * ROUNDS * len(QUERIES)
        for version, index, answer in served:
            assert answer == ground_truth[version][index], (
                f"stale answer for query {index} at version {version}"
            )
        assert registry.total_queries == len(served)

    def test_sharded_service_stress(self):
        from repro.shard import ShardedSeda

        sharded = ShardedSeda.from_documents(
            [_doc(index) for index in range(6)], shards=2, parallel=False
        )
        registry = sharded.enable_observability(slow_threshold=10.0)
        service = sharded.query_service(workers=3)
        errors, served, ground_truth = _stress(
            sharded,
            service,
            lambda: tuple(
                shard.graph.version for shard in sharded.shards
            ),
            lambda: (lambda pairs, k: sharded.search(pairs, k=k)),
        )
        assert errors == []
        assert len(served) == READERS * ROUNDS * len(QUERIES)
        for version, index, answer in served:
            assert answer == ground_truth[version][index], (
                f"stale answer for query {index} at version {version}"
            )
        assert registry.total_queries == len(served)
