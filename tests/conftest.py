"""Shared fixtures: small hand-built collections and dataset slices."""

import os

import pytest

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    _hypothesis_settings = None

if _hypothesis_settings is not None:
    # "ci" replays the same examples every run (derandomize), so CI
    # failures reproduce; "dev" keeps local runs exploring fresh inputs.
    # CI selects the profile via HYPOTHESIS_PROFILE=ci (see the
    # workflow); a bare CI=true environment gets it too.
    _hypothesis_settings.register_profile(
        "ci", derandomize=True, deadline=None
    )
    _hypothesis_settings.register_profile("dev", deadline=None)
    _hypothesis_settings.load_profile(
        os.environ.get(
            "HYPOTHESIS_PROFILE",
            "ci" if os.environ.get("CI") else "dev",
        )
    )

from repro.index.builder import IndexBuilder
from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph
from repro.model.links import LinkDiscoverer
from repro.query.matcher import TermMatcher
from repro.storage.node_store import NodeStore

# A miniature Figure 2-style fragment set: three country documents.
USA_2006 = """
<country>United States
  <year>2006</year>
  <economy>
    <GDP_ppp>12.31T</GDP_ppp>
    <import_partners>
      <item><trade_country>China</trade_country><percentage>15%</percentage></item>
      <item><trade_country>Canada</trade_country><percentage>16.9%</percentage></item>
    </import_partners>
    <export_partners>
      <item><trade_country>Canada</trade_country><percentage>23.4%</percentage></item>
    </export_partners>
  </economy>
</country>
"""

USA_2002 = """
<country>United States
  <year>2002</year>
  <economy>
    <GDP>10.082T</GDP>
    <import_partners>
      <item><trade_country>Canada</trade_country><percentage>17.8%</percentage></item>
    </import_partners>
  </economy>
</country>
"""

MEXICO_2003 = """
<country>Mexico
  <year>2003</year>
  <economy>
    <GDP>924.4B</GDP>
    <import_partners>
      <item><trade_country>United States</trade_country><percentage>70.6%</percentage></item>
      <item><trade_country>Germany</trade_country><percentage>3.5%</percentage></item>
    </import_partners>
    <export_partners>
      <item><trade_country>United States</trade_country><percentage>87.6%</percentage></item>
    </export_partners>
  </economy>
</country>
"""


@pytest.fixture
def figure2_collection():
    collection = DocumentCollection(name="figure2")
    collection.add_document(USA_2006, name="usa-2006")
    collection.add_document(USA_2002, name="usa-2002")
    collection.add_document(MEXICO_2003, name="mexico-2003")
    return collection


@pytest.fixture
def figure2_indexes(figure2_collection):
    inverted, paths = IndexBuilder(figure2_collection).build()
    return inverted, paths


@pytest.fixture
def figure2_matcher(figure2_collection, figure2_indexes):
    inverted, paths = figure2_indexes
    store = NodeStore(figure2_collection)
    return TermMatcher(figure2_collection, inverted, paths, store)


@pytest.fixture
def figure2_graph(figure2_collection):
    return DataGraph(figure2_collection)


@pytest.fixture
def linked_collection():
    """Two documents joined by an IDREF and a value link."""
    collection = DocumentCollection(name="linked")
    collection.add_document(
        '<country id="c1"><name>Atlantis</name>'
        "<capital>Poseidonia</capital></country>",
        name="atlantis",
    )
    collection.add_document(
        '<city><name>Poseidonia</name><country_ref ref="c1"/>'
        "<population>9000</population></city>",
        name="poseidonia",
    )
    graph = DataGraph(collection)
    LinkDiscoverer(graph).discover_idrefs()
    return collection, graph


@pytest.fixture(scope="session")
def small_factbook():
    """A small but complete Factbook slice (session-scoped: expensive)."""
    from repro.datasets.factbook import FactbookGenerator

    return FactbookGenerator(scale=0.02).build_collection()


@pytest.fixture(scope="session")
def small_factbook_seda():
    from repro.datasets.factbook import FactbookGenerator
    from repro.system import Seda

    generator = FactbookGenerator(scale=0.02)
    seda = Seda(
        generator.build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
    )
    FactbookGenerator.register_standard_definitions(seda.registry)
    return seda
