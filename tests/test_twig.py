"""Twig patterns, TwigStack vs naive equivalence, complete results."""

import pytest

from repro.model.graph import DataGraph
from repro.model.links import LinkDiscoverer, ValueLinkSpec
from repro.query.term import Query
from repro.storage.node_store import NodeStore
from repro.summaries.connection import LinkConnection, TreeConnection
from repro.twig.complete import CompleteResultGenerator
from repro.twig.pattern import TwigPattern
from repro.twig.twigstack import NaiveTwigJoin, TwigStackJoin
from repro.model.graph import EdgeKind

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"
PARTNERS_PATH = "/country/economy/import_partners"


class TestTwigPattern:
    def test_prefix_tree_shape(self):
        pattern = TwigPattern.from_paths({0: TC_PATH, 1: PCT_PATH})
        assert pattern.root.path == "/country"
        # Shared chain: economy -> import_partners -> item.
        tags = [node.tag for node in pattern.nodes()]
        assert tags.count("item") == 1
        assert pattern.term_indexes() == [0, 1]

    def test_root_binding(self):
        pattern = TwigPattern.from_paths({0: "/country", 1: "/country/year"})
        assert pattern.root.term_index == 0

    def test_distinct_roots_rejected(self):
        with pytest.raises(ValueError):
            TwigPattern.from_paths({0: "/a/b", 1: "/c/d"})

    def test_two_terms_same_path_get_own_leaves(self):
        pattern = TwigPattern.from_paths({0: PCT_PATH, 1: PCT_PATH})
        leaves = [node for node in pattern.nodes() if node.term_index is not None]
        assert len(leaves) == 2

    def test_output_nodes_in_term_order(self):
        pattern = TwigPattern.from_paths({2: TC_PATH, 0: PCT_PATH})
        assert pattern.term_indexes() == [0, 2]


@pytest.fixture
def joiners(figure2_collection):
    store = NodeStore(figure2_collection)
    return (
        TwigStackJoin(figure2_collection, store),
        NaiveTwigJoin(figure2_collection, store),
    )


class TestTwigStack:
    def test_sibling_twig_matches(self, figure2_collection, joiners):
        twigstack, _naive = joiners
        pattern = TwigPattern.from_paths({0: TC_PATH, 1: PCT_PATH})
        tuples = twigstack.match_tuples(pattern)
        # Per document: items x items pairings under one shared item
        # node?  No: the shared item pattern node forces the SAME item,
        # so pairs are (tc, pct) of the same item: 2 + 1 + 2 = 5.
        assert len(tuples) == 5
        for tc_id, pct_id in tuples:
            tc = figure2_collection.node(tc_id)
            pct = figure2_collection.node(pct_id)
            assert tc.parent_id == pct.parent_id

    def test_root_plus_leaf(self, figure2_collection, joiners):
        twigstack, _naive = joiners
        pattern = TwigPattern.from_paths({0: "/country", 1: "/country/year"})
        tuples = twigstack.match_tuples(pattern)
        assert len(tuples) == 3

    def test_candidate_stream_filter(self, figure2_collection, joiners):
        twigstack, _naive = joiners
        china = [
            node.node_id for node in figure2_collection.iter_nodes()
            if node.tag == "trade_country" and node.value == "China"
        ]
        pattern = TwigPattern.from_paths({0: TC_PATH, 1: PCT_PATH})
        tuples = twigstack.match_tuples(pattern, candidate_streams={0: china})
        assert len(tuples) == 1
        pct = figure2_collection.node(tuples[0][1])
        assert pct.value == "15%"

    def test_empty_stream_no_matches(self, joiners):
        twigstack, _naive = joiners
        pattern = TwigPattern.from_paths({0: TC_PATH, 1: PCT_PATH})
        assert twigstack.match_tuples(pattern, candidate_streams={0: []}) == []

    @pytest.mark.parametrize(
        "term_paths",
        [
            {0: TC_PATH, 1: PCT_PATH},
            {0: "/country", 1: TC_PATH, 2: PCT_PATH},
            {0: "/country/year", 1: "/country/economy/GDP"},
            {0: ITEM_PATH, 1: TC_PATH},
            {0: PCT_PATH, 1: PCT_PATH},
        ],
    )
    def test_agrees_with_naive(self, joiners, term_paths):
        twigstack, naive = joiners
        pattern = TwigPattern.from_paths(term_paths)
        fast = sorted(twigstack.match_tuples(pattern))
        slow = sorted(naive.match_tuples(pattern))
        assert fast == slow


@pytest.fixture
def complete_generator(figure2_collection, figure2_matcher):
    graph = DataGraph(figure2_collection)
    LinkDiscoverer(graph).apply_value_links([
        ValueLinkSpec("/country", TC_PATH, label="trade partner"),
    ])
    store = NodeStore(figure2_collection)
    return CompleteResultGenerator(
        figure2_collection, graph, store, figure2_matcher
    ), graph


QUERY_1 = Query.parse([
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
])

QUERY_1_PATHS = {0: "/country", 1: TC_PATH, 2: PCT_PATH}

SIBLING = TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)
COUSIN = TreeConnection(TC_PATH, PCT_PATH, PARTNERS_PATH)
COUNTRY_TC = TreeConnection("/country", TC_PATH, "/country")


class TestCompleteResults:
    def test_figure3_result_shape(self, figure2_collection,
                                  complete_generator):
        generator, _graph = complete_generator
        table = generator.generate(
            QUERY_1, QUERY_1_PATHS,
            connections=[((0, 1), COUNTRY_TC), ((1, 2), SIBLING)],
        )
        # US documents only (2006 has 2 items, 2002 has 1): 3 rows.
        assert len(table) == 3
        assert table.schema == [
            "nodeid1", "path1", "nodeid2", "path2", "nodeid3", "path3",
        ]
        for row in table.display_rows():
            assert row[1] == "/country"
            assert row[3] == TC_PATH
            assert row[5] == PCT_PATH

    def test_sibling_constraint_enforced(self, figure2_collection,
                                         complete_generator):
        generator, _graph = complete_generator
        table = generator.generate(
            QUERY_1, QUERY_1_PATHS,
            connections=[((0, 1), COUNTRY_TC), ((1, 2), SIBLING)],
        )
        for _us, tc_id, pct_id in table.rows:
            assert (
                figure2_collection.node(tc_id).parent_id
                == figure2_collection.node(pct_id).parent_id
            )

    def test_cousin_constraint_selects_cross_item_pairs(
        self, figure2_collection, complete_generator
    ):
        generator, _graph = complete_generator
        table = generator.generate(
            QUERY_1, QUERY_1_PATHS,
            connections=[((0, 1), COUNTRY_TC), ((1, 2), COUSIN)],
        )
        assert len(table) == 2  # usa-2006: (China, 16.9%) and (Canada, 15%)
        for _us, tc_id, pct_id in table.rows:
            assert (
                figure2_collection.node(tc_id).parent_id
                != figure2_collection.node(pct_id).parent_id
            )

    def test_link_connection_cross_twig_join(self, figure2_collection,
                                             complete_generator):
        generator, _graph = complete_generator
        query = Query.parse([
            ("/country", '"United States"'),
            ("trade_country", '"United States"'),
        ])
        link = LinkConnection(
            "/country", TC_PATH, TC_PATH, "/country",
            EdgeKind.VALUE, "trade partner",
        )
        table = generator.generate(
            query, {0: "/country", 1: TC_PATH},
            connections=[((0, 1), link)],
        )
        # Mexico's import 'United States' links to both US documents.
        assert len(table) == 2

    def test_missing_term_path_raises(self, complete_generator):
        generator, _graph = complete_generator
        with pytest.raises(ValueError):
            generator.generate(QUERY_1, {0: "/country"})

    def test_no_connections_connectivity_product(self, figure2_collection,
                                                 complete_generator):
        generator, _graph = complete_generator
        query = Query.parse([("year", "2006"), ("GDP_ppp", "*")])
        table = generator.generate(
            query, {0: "/country/year", 1: "/country/economy/GDP_ppp"}
        )
        assert len(table) == 1  # same usa-2006 document

    def test_rows_deduplicated_and_sorted(self, complete_generator):
        generator, _graph = complete_generator
        table = generator.generate(
            QUERY_1, QUERY_1_PATHS,
            connections=[((0, 1), COUNTRY_TC), ((1, 2), SIBLING)],
        )
        assert table.rows == sorted(set(table.rows))

    def test_column_paths_and_values(self, complete_generator):
        generator, _graph = complete_generator
        table = generator.generate(
            QUERY_1, QUERY_1_PATHS,
            connections=[((0, 1), COUNTRY_TC), ((1, 2), SIBLING)],
        )
        assert table.column_paths(1) == {TC_PATH}
        assert set(table.values(2)) <= {"15%", "16.9%", "17.8%"}
