"""The compact layer: interning, byte-column codecs, trie, sidecars.

Unit coverage for ``repro.compact`` plus the properties the rest of the
system leans on: every codec is a lossless inverse pair, the trie is an
exact bijection between path strings and small int ids, and the lazy
column decode in :class:`~repro.index.inverted.InvertedIndex` stays
race-free under concurrent lock-free readers (the S3 surface).
"""

import struct
import threading

import pytest
from hypothesis import given, strategies as st

from repro.compact import (
    PathTrie,
    Sidecar,
    StringTable,
    decode_postings,
    decode_sorted_ids,
    decode_stream,
    deep_sizeof,
    encode_postings,
    encode_sorted_ids,
    encode_stream,
    posting_count,
    publish_shared_memory,
)
from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex
from repro.index.path_index import PathIndex
from repro.text.analyzer import Analyzer


class TestStringTable:
    def test_intern_is_idempotent_and_dense(self):
        table = StringTable()
        assert table.intern("country") == 0
        assert table.intern("economy") == 1
        assert table.intern("country") == 0
        assert table[1] == "economy"
        assert len(table) == 2

    def test_id_of_unknown_is_none(self):
        table = StringTable()
        table.intern("year")
        assert table.id_of("year") == 0
        assert table.id_of("month") is None

    def test_round_trip_preserves_ids(self):
        table = StringTable()
        for label in ("a", "b", "c"):
            table.intern(label)
        restored = StringTable.from_list(table.to_list())
        assert restored.to_list() == ["a", "b", "c"]
        assert restored.id_of("b") == table.id_of("b")


class TestPostingColumns:
    ENTRIES = [(3, [0, 2, 9]), (7, [1]), (400, [5, 6, 7]), (401, [])]

    def test_round_trip(self):
        blob = encode_postings(self.ENTRIES)
        assert decode_postings(blob) == self.ENTRIES

    def test_df_reads_one_varint(self):
        blob = encode_postings(self.ENTRIES)
        assert posting_count(blob) == len(self.ENTRIES)
        # Truncating everything after the count must not break the df
        # probe -- it never reads past the first varint.
        assert posting_count(blob[:1]) == len(self.ENTRIES)

    def test_unsorted_node_ids_rejected(self):
        with pytest.raises(ValueError):
            encode_postings([(5, [0]), (3, [0])])

    def test_unsorted_positions_rejected(self):
        with pytest.raises(ValueError):
            encode_postings([(1, [4, 2])])

    def test_decodes_from_memoryview(self):
        blob = encode_postings(self.ENTRIES)
        assert decode_postings(memoryview(blob)) == self.ENTRIES


class TestSortedIdColumns:
    def test_round_trip(self):
        ids = [0, 1, 5, 5, 130, 4096]
        assert decode_sorted_ids(encode_sorted_ids(ids)) == ids

    def test_empty(self):
        assert decode_sorted_ids(encode_sorted_ids([])) == []

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            encode_sorted_ids([2, 1])


class TestStreamColumns:
    def test_round_trip_preserves_score_order_ids(self):
        scores = [0.9, 0.5, 0.5, 0.1]
        node_ids = [42, 7, 300, 11]  # score order, not id order
        decoded_scores, decoded_ids = decode_stream(
            encode_stream(scores, node_ids)
        )
        assert list(decoded_scores) == scores
        assert list(decoded_ids) == node_ids

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_stream([1.0], [1, 2])

    def test_decodes_from_memoryview(self):
        blob = encode_stream([0.25], [9])
        scores, ids = decode_stream(memoryview(blob))
        assert list(scores) == [0.25] and list(ids) == [9]


class TestPathTrie:
    def test_insert_find_render_round_trip(self):
        trie = PathTrie()
        paths = ["/country", "/country/economy", "/country/economy/GDP"]
        ids = [trie.insert(path) for path in paths]
        assert [trie.render(node) for node in ids] == paths
        assert [trie.find(path) for path in paths] == ids
        assert trie.find("/country/year") is None

    def test_prefixes_are_not_terminal(self):
        trie = PathTrie()
        trie.insert("/a/b/c")
        assert trie.find("/a/b") is None  # interior node, never inserted
        trie.insert("/a/b")
        assert trie.find("/a/b") is not None

    def test_shared_prefixes_share_nodes(self):
        trie = PathTrie()
        trie.insert("/country/economy/GDP")
        before = trie.node_count
        trie.insert("/country/economy/year")
        # Only the one new leaf; the three prefix nodes are shared.
        assert trie.node_count == before + 1

    def test_insert_is_idempotent(self):
        trie = PathTrie()
        assert trie.insert("/x/y") == trie.insert("/x/y")
        assert len(trie) == 1

    def test_paths_and_terminal_ids(self):
        trie = PathTrie()
        inserted = {"/b", "/a", "/a/c"}
        ids = {trie.insert(path) for path in inserted}
        assert set(trie.paths()) == inserted
        assert trie.terminal_ids() == ids
        assert len(trie) == 3
        assert "/a" in trie and "/z" not in trie

    def test_shared_label_table(self):
        labels = StringTable()
        one, two = PathTrie(labels=labels), PathTrie(labels=labels)
        one.insert("/country/year")
        two.insert("/country/name")
        assert len(labels) == 4  # "", country, year, name -- each once


class TestDeepSizeof:
    def test_shared_objects_count_once(self):
        shared = ["x" * 100]
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_memoryview_counts_the_view_only(self):
        blob = b"z" * 100_000
        assert deep_sizeof(memoryview(blob)) < 1000

    def test_walks_slots_and_containers(self):
        trie = PathTrie()
        empty = deep_sizeof(trie)
        for i in range(50):
            trie.insert(f"/a/b{i}/c")
        assert deep_sizeof(trie) > empty


class TestSidecar:
    def test_from_bytes_views(self):
        sidecar = Sidecar.from_bytes(b"abcdef")
        assert bytes(sidecar.view(2, 3)) == b"cde"
        assert len(sidecar) == 6

    def test_from_file_mmaps(self, tmp_path):
        path = tmp_path / "cols.bin"
        path.write_bytes(b"0123456789")
        sidecar = Sidecar.from_file(str(path))
        assert bytes(sidecar.view(3, 4)) == b"3456"
        sidecar.close()

    def test_from_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        sidecar = Sidecar.from_file(str(path))
        assert len(sidecar) == 0

    def test_shared_memory_round_trip(self):
        data = b"shared-column-bytes" * 10
        segment = publish_shared_memory("seda-test-compact-rt", data)
        try:
            attached = Sidecar.from_shared_memory("seda-test-compact-rt")
            # The segment may round up to a page; the logical window
            # must still read back exactly.
            assert len(attached) >= len(data)
            assert bytes(attached.view(0, len(data))) == data
            attached.close()
        finally:
            segment.close()
            segment.unlink()


# -- Hypothesis properties (S4): codecs are inverses, trie == dict ----------

_positions = st.lists(st.integers(min_value=0, max_value=500), max_size=6
                      ).map(sorted)
_posting_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000), _positions),
    max_size=20,
    unique_by=lambda entry: entry[0],
).map(lambda entries: sorted(entries, key=lambda entry: entry[0]))

_path_segments = st.text(
    alphabet=st.characters(blacklist_characters="/", blacklist_categories=("Cs",)),
    max_size=8,
)
_paths = st.lists(
    st.builds(lambda parts: "/" + "/".join(parts),
              st.lists(_path_segments, min_size=1, max_size=5)),
    max_size=15,
)


class TestCodecProperties:
    @given(_posting_lists)
    def test_posting_round_trip(self, entries):
        blob = encode_postings(entries)
        assert decode_postings(blob) == entries
        assert posting_count(blob) == len(entries)

    @given(st.lists(st.integers(min_value=0, max_value=10**9)).map(sorted))
    def test_sorted_ids_round_trip(self, ids):
        assert decode_sorted_ids(encode_sorted_ids(ids)) == ids

    @given(st.lists(
        st.tuples(st.floats(allow_nan=True, allow_infinity=True,
                            width=64),
                  st.integers(min_value=0, max_value=10**7)),
        max_size=20,
    ))
    def test_stream_round_trip_bit_exact(self, pairs):
        scores = [score for score, _ in pairs]
        node_ids = [node_id for _, node_id in pairs]
        decoded_scores, decoded_ids = decode_stream(
            encode_stream(scores, node_ids)
        )
        # Bit-pattern comparison so NaNs count as preserved too.
        assert (struct.pack(f"<{len(scores)}d", *decoded_scores)
                == struct.pack(f"<{len(scores)}d", *scores))
        assert list(decoded_ids) == node_ids

    @given(_paths)
    def test_trie_render_inverts_insert(self, paths):
        trie = PathTrie()
        for path in paths:
            assert trie.render(trie.insert(path)) == path

    @given(_paths, _paths)
    def test_trie_lookup_matches_set_lookup(self, inserted, probed):
        trie = PathTrie()
        for path in inserted:
            trie.insert(path)
        reference = set(inserted)
        assert set(trie.paths()) == reference
        for path in inserted + probed:
            assert (trie.find(path) is not None) == (path in reference)


# -- S3: lazy column decode under concurrent lock-free readers ---------------

def _built_indexes(collection):
    inverted, paths = IndexBuilder(collection).build()
    return inverted, paths


class TestLazyDecodeConcurrency:
    THREADS = 8

    def _hammer(self, index, reference, terms):
        """Race THREADS readers into the cold index from one barrier;
        every observation must match the always-hot reference."""
        barrier = threading.Barrier(self.THREADS)
        failures = []

        def reader():
            barrier.wait()
            for _ in range(20):
                for term in terms:
                    postings = index.postings(term)
                    expected = reference.postings(term)
                    if postings != expected:
                        failures.append((term, postings, expected))
                    if (index.document_frequency(term)
                            != reference.document_frequency(term)):
                        failures.append(("df", term))

        threads = [threading.Thread(target=reader)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[:3]

    def test_compacted_index_reads_match_hot_twin(self, figure2_collection):
        hot, _ = _built_indexes(figure2_collection)
        cold, _ = _built_indexes(figure2_collection)
        cold.compact()
        terms = sorted(hot.vocabulary())[:12]
        self._hammer(cold, hot, terms)
        stats = cold.estimated_memory()
        assert stats["materialized_terms"] > 0  # decodes actually ran

    def test_sidecar_loaded_index_reads_match_hot_twin(
        self, figure2_collection, tmp_path
    ):
        from repro.storage.snapshot import (
            SIDECAR_KEY, read_snapshot, write_snapshot,
        )

        hot, _ = _built_indexes(figure2_collection)
        analyzer = Analyzer()
        # A full snapshot needs every component; wrap just the index
        # payload in a minimal sidecar pair instead.
        cold_source, _ = _built_indexes(figure2_collection)
        cold_source.compact()
        payload = cold_source.to_dict(columnar=True)
        path = tmp_path / "inverted.snapshot"
        write_snapshot(str(path), {"collection": "t"}, {
            "collection": {"name": "t", "documents": []},
            "graph": {"version": 0, "edges": []},
            "inverted": payload,
            "path_index": {"all_paths": [], "content": {}, "tags": {}},
            "node_store": {"nodes": {}},
            "dataguides": {"threshold": 0.4, "guides": [], "links": []},
            "registry": {"definitions": []},
        })
        _meta, records = read_snapshot(str(path))
        cold = InvertedIndex.from_dict(
            records["inverted"], analyzer,
            sidecar=records.get(SIDECAR_KEY),
        )
        terms = sorted(hot.vocabulary())[:12]
        self._hammer(cold, hot, terms)

    def test_path_index_probes_match_after_compact(self, figure2_collection):
        _, hot = _built_indexes(figure2_collection)
        _, cold = _built_indexes(figure2_collection)
        cold.compact()
        barrier = threading.Barrier(self.THREADS)
        failures = []

        def reader():
            barrier.wait()
            for term in sorted(hot.vocabulary())[:8]:
                if cold.paths_for_term(term) != hot.paths_for_term(term):
                    failures.append(term)
            for tag in sorted(hot.tags())[:8]:
                if cold.paths_for_tag(tag) != hot.paths_for_tag(tag):
                    failures.append(tag)

        threads = [threading.Thread(target=reader)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[:3]


class TestEstimatedMemory:
    def test_inverted_reports_columns_after_compact(self, figure2_collection):
        inverted, paths = _built_indexes(figure2_collection)
        before = inverted.estimated_memory()
        assert before["column_terms"] == 0
        inverted.compact()
        after = inverted.estimated_memory()
        assert after["column_terms"] == after["terms"] > 0
        assert after["column_bytes"] > 0

    def test_path_index_reports_trie(self, figure2_collection):
        _, paths = _built_indexes(figure2_collection)
        paths.compact()
        stats = paths.estimated_memory()
        assert stats["paths"] == len(paths) > 0
        assert stats["trie_nodes"] >= stats["paths"]
        assert stats["column_bytes"] > 0
