"""Elastic shard topology: split, merge, rebalance, skew, crash safety.

The topology operations (:mod:`repro.shard.topology`) reshape a
sharded collection -- splitting a hot shard, merging cold ones, moving
documents between shards -- while answers stay **byte-identical** to
an unsharded build over the same corpus.  This battery asserts the
contract from every direction:

* every operation, in memory and on disk, before and after reload,
  against the unsharded oracle -- including write-ahead batches
  appended under the *old* routing epoch and replayed after the
  topology changed;
* the on-disk commit rewrites **only the affected shards' files**:
  untouched shards keep their exact bytes under a new manifest
  generation;
* co-location safety: link-connected document groups refuse to split
  or move piecemeal;
* a long-lived :class:`~repro.shard.service.ShardedQueryService`
  survives shard-count changes mid-flight;
* the ``/admin/rebalance`` serving endpoint performs topology changes
  online (and rejects them while draining or unsharded);
* ``fsck`` rejects a manifest whose assignment map disagrees with the
  shard files;
* a SIGKILL sweep over every durable operation of every topology op
  recovers fsck-clean onto exactly the old or the new topology --
  never a hybrid -- with answers byte-identical either way.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import warnings

import pytest

from repro.model.links import ValueLinkSpec
from repro.query.term import Query
from repro.serving import ServingApp, load_serving_system
from repro.shard import (
    ShardedSeda,
    colocation_units,
    skew_report,
)
from repro.storage.snapshot import (
    fsck_report,
    read_sharded_manifest,
    sharded_snapshot_info,
)
from repro.system import Seda

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCS = [
    ("alpha", "<r><a>red blue</a><b>green</b><a>blue</a></r>"),
    ("bravo", "<r><a>blue green</a><c>red</c></r>"),
    ("charlie", "<r><b>red red blue</b><a>green red</a></r>"),
    ("delta", "<r><a>red</a><b>blue</b><c>green blue</c></r>"),
    ("echo", "<r><c>blue blue</c><a>red green</a></r>"),
    ("foxtrot", "<r><b>green green</b><a>red blue green</a></r>"),
    ("golf", "<r><a>blue</a><a>blue</a></r>"),
    ("hotel", "<r><a>blue</a><b>red</b></r>"),
    ("india", "<r><c>red green</c><b>blue</b></r>"),
    ("juliet", "<r><b>blue blue</b><c>green</c></r>"),
]

BATCH = [
    ("kilo", "<r><a>red green</a><b>blue blue</b></r>"),
    ("lima", "<r><c>green</c><a>red red</a></r>"),
]

QUERIES = [
    [("*", "red"), ("*", "blue")],
    [("a", "blue"), ("*", "green")],
    [("*", "red"), ("*", "blue"), ("*", "green")],
    [("*", "blue")],
    [("b", "*"), ("*", "red")],
]


def _canon(system):
    """Every query's full answer state, comparable across system kinds."""
    if isinstance(system, ShardedSeda):
        def search(pairs, k):
            return system.search(pairs, k=k)
    else:
        def search(pairs, k):
            return system.topk.search(Query.parse(pairs), k=k)
    return [
        [(r.node_ids, r.content_scores, r.compactness, r.score)
         for r in search(pairs, k=10)]
        for pairs in QUERIES
    ]


@pytest.fixture(scope="module")
def oracle():
    return _canon(Seda.from_documents(DOCS))


@pytest.fixture(scope="module")
def oracle_with_batch():
    return _canon(Seda.from_documents(DOCS + BATCH))


def _build_sharded():
    return ShardedSeda.from_documents(
        DOCS, shards=3, parallel=False, partitioner="round-robin"
    )


def _shard_file_bytes(directory):
    """``{file_name: content}`` for every manifest-listed shard file."""
    manifest = read_sharded_manifest(directory)
    contents = {}
    for shard_file in manifest["shard_files"]:
        for name in (shard_file, f"{shard_file}.cols"):
            path = os.path.join(directory, name)
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    contents[name] = handle.read()
    return contents


# -- in-memory operations -----------------------------------------------------------


class TestInMemoryTopology:
    def test_split_preserves_answers_and_bumps_epoch(self, oracle):
        system = _build_sharded()
        assert _canon(system) == oracle
        summary = system.split(1)
        assert summary["op"] == "split"
        assert summary["new_shard"] == 3
        assert summary["shards"] == 4
        assert summary["routing_epoch"] == 1
        assert summary["committed"] is False      # no WAL attached
        assert summary["moved_documents"] >= 1
        assert system.shard_count == 4
        assert _canon(system) == oracle

    def test_merge_preserves_answers(self, oracle):
        system = _build_sharded()
        summary = system.merge(2, 0)
        assert summary["surviving_shard"] == 0
        assert summary["merged"] == [0, 2]
        assert summary["shards"] == 2
        assert system.shard_count == 2
        assert _canon(system) == oracle
        # The positional shift: every document still routes somewhere.
        counts = [len(system._shard_docs[i]) for i in range(2)]
        assert sum(counts) == len(DOCS) and all(c > 0 for c in counts)

    def test_rebalance_realizes_the_proposed_plan(self, oracle):
        system = _build_sharded()
        plan = system.propose_rebalance(metric="documents")
        assert plan["metric"] == "documents"
        summary = system.rebalance(plan)
        assert summary["moved_documents"] == len(plan["moves"])
        assert _canon(system) == oracle
        realized = [len(system._shard_docs[i])
                    for i in range(system.shard_count)]
        assert realized == plan["projected_loads"]

    def test_propose_is_deterministic_and_validates_metric(self):
        system = _build_sharded()
        assert (system.propose_rebalance(metric="nodes")
                == system.propose_rebalance(metric="nodes"))
        with pytest.raises(ValueError, match="unknown metric"):
            system.propose_rebalance(metric="bytes")

    def test_empty_plan_is_a_noop(self):
        system = _build_sharded()
        before = system.routing_epoch
        keep = dict(enumerate(row[1] for row in system._docs))
        summary = system.rebalance({"moves": keep})   # all same-shard
        assert summary["moved_documents"] == 0
        assert summary["committed"] is False
        assert summary["affected_shards"] == []
        assert system.routing_epoch == before

    def test_string_keys_round_trip(self, oracle):
        system = _build_sharded()
        target = (system._docs[0][1] + 1) % system.shard_count
        summary = system.rebalance({"moves": {"0": str(target)}})
        assert summary["moved_documents"] == 1
        assert system._docs[0][1] == target
        assert _canon(system) == oracle

    def test_operations_compose(self, oracle):
        system = _build_sharded()
        system.split(0)
        moved = system.rebalance(
            system.propose_rebalance(metric="nodes")
        )["moved_documents"]
        system.merge(1, 3)
        system.split(2)
        # Split and merge always bump the epoch; a rebalance only when
        # the plan actually moved something.
        assert system.routing_epoch == 3 + (1 if moved else 0)
        assert _canon(system) == oracle

    def test_bad_arguments(self):
        system = _build_sharded()
        with pytest.raises(ValueError, match="no shard 7"):
            system.split(7)
        with pytest.raises(ValueError, match="itself"):
            system.merge(1, 1)
        with pytest.raises(ValueError, match="no shard"):
            system.merge(0, 9)
        with pytest.raises(ValueError, match="no document"):
            system.rebalance({"moves": {99: 0}})
        with pytest.raises(ValueError, match="no shard"):
            system.rebalance({"moves": {0: 9}})


# -- co-location safety -------------------------------------------------------------


LINKED_DOCS = [
    ("keys-one", "<r><k>K1</k><a>red</a></r>"),
    ("refs-one", "<r><f>K1</f><a>blue</a></r>"),
    ("keys-two", "<r><k>K2</k><b>green</b></r>"),
    ("refs-two", "<r><f>K2</f><b>red</b></r>"),
    ("loner", "<r><a>blue green</a></r>"),
]
LINK_SPEC = ValueLinkSpec("/r/k", "/r/f", label="ref")


def _linked_partitioner(doc_name, global_index, shards):
    # Pair co-location: keys-one/refs-one -> 0, keys-two/refs-two/loner -> 1.
    return 0 if doc_name.endswith("-one") else 1 % shards


class TestColocation:
    def _system(self):
        return ShardedSeda.from_documents(
            LINKED_DOCS, shards=2, parallel=False,
            value_links=[LINK_SPEC], partitioner=_linked_partitioner,
        )

    def test_units_group_linked_documents(self):
        system = self._system()
        assert colocation_units(system, 0) == [[0, 1]]
        assert colocation_units(system, 1) == [[2, 3], [4]]

    def test_split_refuses_an_unsplittable_shard(self):
        system = self._system()
        with pytest.raises(ValueError, match="link-connected unit"):
            system.split(0)
        # Shard 1 holds two units, so it can split.
        summary = system.split(1)
        assert summary["shards"] == 3

    def test_rebalance_refuses_partial_unit_moves(self):
        system = self._system()
        with pytest.raises(ValueError, match="must move together"):
            system.rebalance({"moves": {0: 1}})       # half of [0, 1]
        with pytest.raises(ValueError, match="must move together"):
            system.rebalance({"moves": {2: 0, 3: 1}})  # split targets

    def test_whole_unit_moves_preserve_answers(self):
        oracle = _canon(
            Seda.from_documents(LINKED_DOCS, value_links=[LINK_SPEC])
        )
        system = self._system()
        assert _canon(system) == oracle
        system.rebalance({"moves": {0: 1, 1: 1}})
        assert _canon(system) == oracle
        assert len(system._shard_docs[0]) == 0        # emptied, still sound
        system.merge(0, 1)
        assert _canon(system) == oracle


# -- durable operations -------------------------------------------------------------


class TestDurableTopology:
    def test_split_rewrites_only_affected_shards(self, tmp_path, oracle):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)
        before = _shard_file_bytes(directory)
        before_manifest = read_sharded_manifest(directory)

        system = ShardedSeda.load(directory)
        summary = system.split(1)
        assert summary["committed"] is True

        after_manifest = read_sharded_manifest(directory)
        assert after_manifest["routing_epoch"] == 1
        assert after_manifest["generation"] > before_manifest["generation"]
        assert len(after_manifest["shard_files"]) == 4
        after = _shard_file_bytes(directory)
        for index, shard_file in enumerate(before_manifest["shard_files"]):
            if index == 1:
                # The split shard's files were superseded and deleted.
                assert shard_file not in after
            else:
                # Untouched shards keep their exact bytes (and names).
                assert after[shard_file] == before[shard_file]
                assert (after[f"{shard_file}.cols"]
                        == before[f"{shard_file}.cols"])
        report = fsck_report(directory)
        assert report["ok"], report["problems"]
        assert report["warnings"] == []

        assert _canon(ShardedSeda.load(directory)) == oracle

    def test_wal_batch_from_the_old_epoch_replays(self, tmp_path,
                                                  oracle_with_batch):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)

        writer = ShardedSeda.load(directory)
        writer.add_documents(BATCH)              # WAL-only, epoch 0
        summary = writer.split(1)                # commit under epoch 1
        assert summary["committed"] is True
        assert _canon(writer) == oracle_with_batch

        # The WAL survived the commit and its old-epoch batch routes
        # through the new assignment map on replay.
        report = fsck_report(directory)
        assert report["ok"], report["problems"]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovered = ShardedSeda.load(directory)
        assert recovered.routing_epoch == 1
        assert recovered.shard_count == 4
        assert _canon(recovered) == oracle_with_batch

    def test_ingest_after_topology_change(self, tmp_path,
                                          oracle_with_batch):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)

        system = ShardedSeda.load(directory)
        system.merge(0, 2)
        system.add_documents(BATCH)              # routed under epoch 1
        assert _canon(system) == oracle_with_batch

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovered = ShardedSeda.load(directory)
        assert _canon(recovered) == oracle_with_batch
        recovered.save(directory)
        assert _canon(ShardedSeda.load(directory)) == oracle_with_batch

    def test_operations_chain_across_reloads(self, tmp_path, oracle):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)

        system = ShardedSeda.load(directory)
        system.split(0)
        system = ShardedSeda.load(directory)
        assert system.routing_epoch == 1
        system.rebalance(system.propose_rebalance(metric="nodes"))
        system = ShardedSeda.load(directory)
        system.merge(0, 1)
        final = ShardedSeda.load(directory)
        assert final.routing_epoch >= 2
        assert _canon(final) == oracle
        info = sharded_snapshot_info(directory)
        assert info["routing_epoch"] == final.routing_epoch

    def test_fsck_rejects_a_corrupt_assignment_map(self, tmp_path):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        # Reassign one document without rewriting any shard file.
        row = manifest["documents"][0]
        row[1] = (row[1] + 1) % len(manifest["shard_files"])
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        report = fsck_report(directory)
        assert not report["ok"]
        assert any("assignment map" in problem
                   for problem in report["problems"])

    def test_skew_report_shape(self, tmp_path):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)
        report = skew_report(directory)
        assert report["shards"] == 3
        assert report["routing_epoch"] == 0
        assert sum(e["documents"] for e in report["per_shard"]) == len(DOCS)
        assert all(e["bytes"] > 0 for e in report["per_shard"])
        assert set(report["imbalance"]) == {
            "documents", "nodes", "bytes", "traffic"
        }
        assert report["imbalance"]["documents"] >= 1.0
        assert report["imbalance"]["traffic"] is None   # no obs state
        assert report["wal_present"] is False


# -- a long-lived query service across topology changes -----------------------------


class TestServiceAcrossTopology:
    def test_service_survives_shard_count_changes(self, oracle):
        system = _build_sharded()
        service = system.query_service(workers=2)
        results, _stats = service.execute(QUERIES[0], k=10)
        canon = [(r.node_ids, r.content_scores, r.compactness,
                  r.score) for r in results]
        assert canon == oracle[0]
        system.split(1)
        results, _stats = service.execute(QUERIES[0], k=10)
        canon = [(r.node_ids, r.content_scores, r.compactness,
                  r.score) for r in results]
        assert canon == oracle[0]
        system.merge(0, 3)
        for pairs, want in zip(QUERIES, oracle):
            results, _stats = service.execute(pairs, k=10)
            canon = [(r.node_ids, r.content_scores, r.compactness,
                      r.score) for r in results]
            assert canon == want


# -- the serving endpoint -----------------------------------------------------------


class TestRebalanceEndpoint:
    @pytest.fixture
    def app(self, tmp_path):
        directory = str(tmp_path / "seda.shards")
        _build_sharded().save(directory)
        return ServingApp(load_serving_system(directory), directory)

    def _results(self, app):
        response = app.handle(
            "POST", "/search", body={"query": "a:blue ;; *:green"}
        )
        assert response.status == 200
        return response.payload["results"]

    def test_online_split_merge_rebalance(self, app):
        before = self._results(app)

        response = app.handle("POST", "/admin/rebalance",
                              body={"op": "split", "shard": 1})
        assert response.status == 200
        assert response.payload["op"] == "split"
        assert response.payload["committed"] is True
        assert response.payload["generation"][2] == 1   # routing epoch
        assert self._results(app) == before

        response = app.handle("POST", "/admin/rebalance",
                              body={"op": "merge", "a": 0, "b": 3})
        assert response.status == 200
        assert self._results(app) == before

        response = app.handle(
            "POST", "/admin/rebalance",
            body={"op": "rebalance", "metric": "documents"},
        )
        assert response.status == 200
        assert response.payload["op"] == "rebalance"
        assert self._results(app) == before

        moves = {"0": 1}
        response = app.handle("POST", "/admin/rebalance",
                              body={"op": "rebalance", "moves": moves})
        assert response.status == 200
        assert self._results(app) == before

    def test_rejections(self, app, tmp_path):
        assert app.handle("POST", "/admin/rebalance",
                          body={"op": "teleport"}).status == 400
        assert app.handle("POST", "/admin/rebalance",
                          body={"op": "split", "shard": 99}).status == 400
        assert app.handle("GET", "/admin/rebalance").status == 405

        snapshot = str(tmp_path / "seda.snapshot")
        Seda.from_documents(DOCS).save(snapshot)
        unsharded = ServingApp(load_serving_system(snapshot), snapshot)
        response = unsharded.handle("POST", "/admin/rebalance",
                                    body={"op": "split", "shard": 0})
        assert response.status == 400

    def test_draining_rejects_topology_changes(self, app):
        assert app.handle("POST", "/admin/drain").status == 200
        response = app.handle("POST", "/admin/rebalance",
                              body={"op": "split", "shard": 0})
        assert response.status == 409


# -- SIGKILL sweep over every durable operation -------------------------------------


_CHILD = """
import sys
from repro.testing.faults import maybe_install_kill_switch_from_env
maybe_install_kill_switch_from_env()
from repro.shard import ShardedSeda
system = ShardedSeda.load(sys.argv[1])
op = sys.argv[2]
if op == "split":
    system.split(1)
elif op == "merge":
    system.merge(0, 2)
else:
    system.rebalance({"moves": {0: 1, 4: 2}})
"""


def _run_armed(directory, op, n):
    env = dict(os.environ)
    env["REPRO_KILL_SWITCH"] = str(n)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-c", _CHILD, directory, op],
        env=env, capture_output=True, timeout=120,
    ).returncode


class TestTopologyCrashSweep:
    @pytest.mark.parametrize("op", ["split", "merge", "rebalance"])
    def test_sigkill_at_every_commit_operation(self, op, tmp_path,
                                               oracle):
        baseline = str(tmp_path / "baseline.shards")
        _build_sharded().save(baseline)
        old_shards = 3
        reference = _build_sharded()          # in-memory: baseline untouched
        getattr(self, f"_{op}")(reference)
        new_epoch = reference.routing_epoch
        new_shards = reference.shard_count

        topologies = []
        n = 0
        while True:
            n += 1
            assert n < 60, "kill sweep did not terminate"
            work = str(tmp_path / f"work-{n}.shards")
            shutil.copytree(baseline, work)
            returncode = _run_armed(work, op, n)
            if returncode != 0:
                assert returncode == -signal.SIGKILL, returncode
            report = fsck_report(work)
            assert report["ok"], (n, report["problems"])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                recovered = ShardedSeda.load(work)
            # Old or new topology, never a hybrid -- and answers are
            # byte-identical to the unsharded oracle either way.
            assert recovered.shard_count in (old_shards, new_shards)
            assert recovered.routing_epoch in (0, new_epoch)
            if old_shards != new_shards:
                # The shard count and the epoch flip together or not
                # at all -- a hybrid would mean a torn commit.
                assert (recovered.shard_count == new_shards) == (
                    recovered.routing_epoch == new_epoch
                )
            assert _canon(recovered) == oracle
            topologies.append(
                "new" if recovered.routing_epoch == new_epoch else "old"
            )
            if returncode == 0:
                break
        assert topologies[-1] == "new"
        assert "old" in topologies
        # The manifest write is the single commit point: once a kill
        # lands after it, every later kill does too.
        assert topologies == sorted(topologies, key=("old", "new").index)

    @staticmethod
    def _split(system):
        system.split(1)

    @staticmethod
    def _merge(system):
        system.merge(0, 2)

    @staticmethod
    def _rebalance(system):
        system.rebalance({"moves": {0: 1, 4: 2}})
