"""Entity escaping and unescaping."""

import pytest

from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.escape import (
    escape_attribute,
    escape_text,
    resolve_entity,
    unescape,
)


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_ampersand(self):
        assert escape_text("a & b") == "a &amp; b"

    def test_angle_brackets(self):
        assert escape_text("<tag>") == "&lt;tag&gt;"

    def test_quotes_not_escaped_in_text(self):
        assert escape_text('say "hi"') == 'say "hi"'


class TestEscapeAttribute:
    def test_double_quote_escaped(self):
        assert escape_attribute('a "b"') == "a &quot;b&quot;"

    def test_ampersand_and_brackets(self):
        assert escape_attribute("<&>") == "&lt;&amp;&gt;"


class TestResolveEntity:
    @pytest.mark.parametrize(
        "name,expected",
        [("lt", "<"), ("gt", ">"), ("amp", "&"), ("apos", "'"),
         ("quot", '"')],
    )
    def test_named_entities(self, name, expected):
        assert resolve_entity(name) == expected

    def test_decimal_reference(self):
        assert resolve_entity("#65") == "A"

    def test_hex_reference(self):
        assert resolve_entity("#x41") == "A"

    def test_hex_uppercase_marker(self):
        assert resolve_entity("#X41") == "A"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("nbsp")

    def test_bad_decimal_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("#xyz")

    def test_out_of_range_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("#99999999999")


class TestUnescape:
    def test_no_entities_fast_path(self):
        text = "plain text"
        assert unescape(text) is text

    def test_mixed_entities(self):
        assert unescape("a &lt;b&gt; &amp; c") == "a <b> & c"

    def test_character_references(self):
        assert unescape("&#72;&#x69;") == "Hi"

    def test_unterminated_raises(self):
        with pytest.raises(XMLSyntaxError):
            unescape("a &amp b")

    def test_roundtrip_with_escape(self):
        original = 'x < y & "z" > w'
        assert unescape(escape_attribute(original).replace("&quot;", '"')) == original
