"""SRV -- serving: sustained HTTP throughput with byte-equality gates.

The server (``repro serve``) claims its concurrency buys throughput
without buying wrong answers: every response over the wire must be
byte-identical to an offline rebuild over the documents the server
held at that moment.  This module drives a *real* listening server --
sockets, HTTP parsing, admission control, the readers-writer lock --
through the full lifecycle and measures it:

* a sustained multi-client read phase over the hot query set (the
  keep-alive JSON protocol end to end), gated on a conservative
  queries-per-second floor *and* on every single response matching
  the offline oracle byte for byte;
* an online ingest phase (WAL-durable writes through the same HTTP
  surface), followed by a second read phase against the mutated
  oracle;
* a drain, gated on the directory left behind answering identically
  after a cold start.

Results land in ``BENCH_serving.json`` at the repo root (gitignored;
uploaded as a CI artifact), one section per test.
"""

import json
import os
import pathlib
import threading
import time

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.query.term import Query
from repro.serving import ServingClient, start_server
from repro.serving.app import result_to_dict
from repro.storage.snapshot import fsck_report
from repro.system import Seda
from repro.xmlio import serialize

#: Mirrors ``conftest.FULL_SCALE`` (benchmarks/ is not a package).
SCALE = float(os.environ.get("SEDA_BENCH_SCALE", "1.0"))

#: Queries-per-second floor for the cache-hot read phase.  This is a
#: smoke-level bound (keep-alive HTTP + result-cache hits run far
#: faster): it exists to catch pathological serialization -- e.g. a
#: lock held across the socket write -- not to race the hardware.
MIN_READ_QPS = 20.0

CLIENTS = 4
REQUESTS_PER_CLIENT = 40

QUERY_SET = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    [("*", "germany"), ("percentage", "*")],
]

ARTIFACT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _record(section, data):
    """Merge one section into the benchmark artifact (test-order safe)."""
    payload = {}
    if ARTIFACT.exists():
        try:
            payload = json.loads(ARTIFACT.read_text(encoding="utf-8"))
        except ValueError:
            payload = {}
    payload[section] = data
    ARTIFACT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _oracle(documents):
    """Offline rebuild -> wire-form answers for every hot query."""
    system = Seda.from_documents(list(documents))
    answers = []
    for pairs in QUERY_SET:
        results = system.topk.search(Query.parse(pairs), k=10)
        answers.append(json.dumps(
            [result_to_dict(result) for result in results],
            sort_keys=True, separators=(",", ":"),
        ))
    return answers


def _read_phase(server, expected):
    """CLIENTS threads, each REQUESTS_PER_CLIENT requests; returns QPS.

    Every response is compared byte-for-byte against the offline
    oracle *inside the phase*, so a consistency bug fails the gate
    even if it only shows under concurrency.
    """
    errors = []
    barrier = threading.Barrier(CLIENTS + 1)

    def worker(identity):
        try:
            with ServingClient(server.host, server.port,
                               client_id=f"bench-{identity}") as client:
                barrier.wait()
                for index in range(REQUESTS_PER_CLIENT):
                    pick = (identity + index) % len(QUERY_SET)
                    response = client.search(
                        [list(pair) for pair in QUERY_SET[pick]], k=10
                    )
                    wire = json.dumps(response["results"],
                                      sort_keys=True,
                                      separators=(",", ":"))
                    if wire != expected[pick]:
                        errors.append(
                            f"client {identity} request {index}: answer "
                            f"diverged from the offline oracle"
                        )
        except Exception as error:  # pragma: no cover - failure path
            errors.append(repr(error))

    threads = [
        threading.Thread(target=worker, args=(identity,))
        for identity in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - start
    assert errors == [], errors[:3]
    total = CLIENTS * REQUESTS_PER_CLIENT
    return total / wall if wall > 0 else float("inf")


@pytest.fixture(scope="module")
def corpus():
    documents = [
        (name, serialize(root))
        for name, root in FactbookGenerator(scale=SCALE).documents()
    ]
    split = max(1, int(len(documents) * 0.8))
    initial, tail = documents[:split], documents[split:]
    assert tail, "bench scale too small to leave online-ingest batches"
    return initial, tail


def test_sustained_qps_with_byte_equality(corpus, tmp_path):
    initial, tail = corpus
    snapshot = str(tmp_path / "factbook.snapshot")
    Seda.from_documents(list(initial)).save(snapshot)

    expected_initial = _oracle(initial)
    expected_full = _oracle(initial + tail)

    server = start_server(snapshot, workers=CLIENTS)
    try:
        # Phase 1: sustained reads over the initial corpus.
        cold_qps = _read_phase(server, expected_initial)
        warm_qps = _read_phase(server, expected_initial)

        # Phase 2: online ingest through the same HTTP surface.
        start = time.perf_counter()
        with ServingClient(server.host, server.port,
                           client_id="bench-writer") as client:
            for offset in range(0, len(tail), 5):
                client.add_documents(
                    [list(pair) for pair in tail[offset:offset + 5]]
                )
        ingest_seconds = time.perf_counter() - start

        # Phase 3: sustained reads over the mutated corpus.
        mutated_qps = _read_phase(server, expected_full)

        # Phase 4: drain; the leftovers must cold-start identically.
        start = time.perf_counter()
        with ServingClient(server.host, server.port) as client:
            assert client.drain()["drained"] is True
        assert server.wait(timeout=60)
        drain_seconds = time.perf_counter() - start
    finally:
        server.stop()

    assert fsck_report(snapshot)["ok"]
    assert _oracle_from_load(snapshot) == expected_full, (
        "the drained snapshot answers differently after a cold start"
    )

    assert warm_qps >= MIN_READ_QPS, (
        f"warm serving throughput {warm_qps:.1f} q/s fell below the "
        f"{MIN_READ_QPS} q/s floor"
    )
    _record("sustained_qps", {
        "scale": SCALE,
        "documents_initial": len(initial),
        "documents_final": len(initial) + len(tail),
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "cold_qps": round(cold_qps, 1),
        "warm_qps": round(warm_qps, 1),
        "qps_after_ingest": round(mutated_qps, 1),
        "online_ingest_seconds": round(ingest_seconds, 3),
        "drain_seconds": round(drain_seconds, 3),
        "min_read_qps_floor": MIN_READ_QPS,
    })
    print(
        f"\n[bench-serving] scale={SCALE} clients={CLIENTS} "
        f"cold={cold_qps:.0f}q/s warm={warm_qps:.0f}q/s "
        f"after_ingest={mutated_qps:.0f}q/s "
        f"ingest={ingest_seconds:.3f}s drain={drain_seconds:.3f}s"
    )


def _oracle_from_load(snapshot):
    """Wire-form answers of a cold-started system (drain epilogue)."""
    system = Seda.load(snapshot)
    answers = []
    for pairs in QUERY_SET:
        results = system.topk.search(Query.parse(pairs), k=10)
        answers.append(json.dumps(
            [result_to_dict(result) for result in results],
            sort_keys=True, separators=(",", ":"),
        ))
    return answers


def test_sharded_server_matches_unsharded_oracle(corpus, tmp_path):
    """Scatter-gather over HTTP: one read phase, byte-gated."""
    from repro.shard import ShardedSeda

    initial, _tail = corpus
    directory = str(tmp_path / "factbook.shards")
    ShardedSeda.from_documents(
        list(initial), shards=2, parallel=False
    ).save(directory)
    expected = _oracle(initial)

    server = start_server(directory, workers=CLIENTS)
    try:
        qps = _read_phase(server, expected)
    finally:
        server.stop()
    _record("sharded_read_phase", {
        "scale": SCALE,
        "documents": len(initial),
        "shards": 2,
        "qps": round(qps, 1),
    })
    print(f"\n[bench-serving] sharded read phase {qps:.0f} q/s")
