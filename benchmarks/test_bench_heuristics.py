"""HX -- Section 2 / [22]: flexible-querying heuristics comparison.

Runs SLCA, ELCA, MLCA, and SEDA's compactness ranking over the same
keyword workloads on the paper-scale Factbook, reporting answer counts
-- the quantitative face of "the proposed heuristics do not work on
all data scenarios".  The curated failure cases live in
tests/test_baselines.py; here we measure behaviour and cost at scale.
"""

import pytest

from repro.baselines.compactness import CompactnessRanker
from repro.baselines.elca import elca
from repro.baselines.mlca import mlca
from repro.baselines.slca import slca
from repro.baselines.xsearch import xsearch
from repro.index.builder import IndexBuilder

WORKLOADS = [
    ("united", "states"),
    ("china", "canada"),
    ("germany", "2006"),
]


@pytest.fixture(scope="module")
def indexed(factbook_seda):
    collection = factbook_seda.collection
    inverted, _paths = IndexBuilder(collection).build()
    return collection, inverted


@pytest.mark.parametrize("keywords", WORKLOADS, ids=lambda k: "+".join(k))
def test_slca(benchmark, indexed, keywords):
    collection, inverted = indexed
    answers = benchmark(slca, collection, inverted, list(keywords))
    print(f"\nSLCA{keywords}: {len(answers)} answers")


@pytest.mark.parametrize("keywords", WORKLOADS, ids=lambda k: "+".join(k))
def test_elca(benchmark, indexed, keywords):
    collection, inverted = indexed
    answers = benchmark(elca, collection, inverted, list(keywords))
    print(f"\nELCA{keywords}: {len(answers)} answers")


@pytest.mark.parametrize("keywords", WORKLOADS, ids=lambda k: "+".join(k))
def test_mlca(benchmark, indexed, keywords):
    collection, inverted = indexed
    answers = benchmark(mlca, collection, inverted, list(keywords))
    print(f"\nMLCA{keywords}: {len(answers)} answers")


@pytest.mark.parametrize("keywords", WORKLOADS, ids=lambda k: "+".join(k))
def test_xsearch(benchmark, indexed, keywords):
    collection, inverted = indexed
    answers = benchmark(xsearch, collection, inverted, list(keywords))
    print(f"\nXSEarch{keywords}: {len(answers)} answers")


@pytest.mark.parametrize("keywords", WORKLOADS, ids=lambda k: "+".join(k))
def test_compactness(benchmark, indexed, keywords):
    collection, inverted = indexed
    ranker = CompactnessRanker(collection, inverted)
    ranked = benchmark(ranker.rank_pairs, keywords[0], keywords[1])
    print(f"\ncompactness{keywords}: {len(ranked)} ranked pairs")


def test_answer_set_relationships(indexed):
    """ELCA answers include the SLCA answers; compactness never drops
    a combination that the LCA heuristics keep."""
    collection, inverted = indexed
    for keywords in WORKLOADS:
        slca_set = set(slca(collection, inverted, list(keywords)))
        elca_set = set(elca(collection, inverted, list(keywords)))
        assert slca_set <= elca_set
        ranker = CompactnessRanker(collection, inverted)
        ranked = ranker.rank_pairs(keywords[0], keywords[1])
        mlca_answers = mlca(collection, inverted, list(keywords))
        print(
            f"{keywords}: slca={len(slca_set)} elca={len(elca_set)} "
            f"mlca={len(mlca_answers)} compactness={len(ranked)}"
        )
        assert len(ranked) >= len(mlca_answers)
