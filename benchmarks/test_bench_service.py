"""SV -- the serving layer: batch throughput vs sequential, cache effect.

The paper's experiments measure one interactive user; the ROADMAP's
north star is a serving layer under heavy traffic.  The series of
interest here are (a) batched+cached throughput against the seed's
sequential serving path on a hot-query workload (every production
query log is skewed: a few distinct queries dominate), (b) the fully
cached steady state, and (c) the contract that makes caching and
concurrency admissible at all: byte-identical answers on every path,
tied scores included.
"""

import json
import time

from repro.query.term import Query
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher
from repro.service.query_service import QueryService

#: The Factbook query set: the paper's Query 1 terms and variants.  The
#: match-all pairs produce large runs of tied scores, so this set also
#: exercises deterministic tie-breaking under eviction.
QUERY_SET = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", '"United States"'), ("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    [("*", "germany"), ("percentage", "*")],
]

#: Hot-query skew: each distinct query is served this many times.
HOT_REPEAT = 6

K = 10


def _workload():
    return [Query.parse(pairs) for _ in range(HOT_REPEAT)
            for pairs in QUERY_SET]


def _canonical(results):
    """Byte-exact serialization of one query's full result list."""
    return json.dumps(
        [
            [list(r.node_ids), list(r.content_scores), r.compactness,
             r.score]
            for r in results
        ],
        separators=(",", ":"),
    ).encode("utf-8")


def test_batch_throughput_and_identical_results(factbook_seda):
    """4-worker batched serving must beat the sequential seed path by
    >= 2x on the hot-query workload, byte-identically."""
    queries = _workload()

    # The seed's serving path: one searcher, one query at a time, no
    # result cache (the reachability cache is warmed outside the clock,
    # as a long-running single-threaded server would have it).  It gets
    # a private scoring model and stream store so the two phases don't
    # warm each other's caches.
    searcher = TopKSearcher(
        factbook_seda.matcher,
        ScoringModel(
            factbook_seda.collection, factbook_seda.inverted,
            factbook_seda.graph, max_hops=factbook_seda.max_hops,
        ),
    ).warm()
    start = time.perf_counter()
    sequential = [searcher.search(query, k=K) for query in queries]
    seq_time = time.perf_counter() - start

    service = QueryService(factbook_seda, workers=4)
    start = time.perf_counter()
    batched, stats = service.execute_batch(queries, k=K)
    batch_time = time.perf_counter() - start

    # Steady state: the whole workload served from the result cache.
    cached, cached_stats = service.execute_batch(queries, k=K)

    sequential_bytes = [_canonical(r) for r in sequential]
    assert [_canonical(r) for r in batched] == sequential_bytes
    assert [_canonical(r) for r in cached] == sequential_bytes
    assert cached_stats.cache_hits == len(queries)

    speedup = seq_time / batch_time
    print(
        f"\nsequential: {len(queries) / seq_time:8.0f} q/s "
        f"({seq_time * 1000:.1f}ms)"
        f"\nbatch     : {stats.summary()}"
        f"\ncached    : {cached_stats.summary()}"
        f"\nspeedup   : {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"batched serving only {speedup:.2f}x sequential "
        f"({seq_time * 1000:.1f}ms vs {batch_time * 1000:.1f}ms)"
    )


def test_worker_count_does_not_change_answers(factbook_seda):
    """1 vs 4 workers: identical bytes (scheduling must not leak)."""
    queries = _workload()
    single, _ = QueryService(factbook_seda, workers=1).execute_batch(
        queries, k=K
    )
    multi, _ = QueryService(factbook_seda, workers=4).execute_batch(
        queries, k=K
    )
    assert [_canonical(r) for r in single] == [_canonical(r) for r in multi]


def test_cached_batch_throughput(benchmark, factbook_seda):
    """Steady-state serving rate with a warm result cache."""
    queries = _workload()
    service = QueryService(factbook_seda, workers=4)
    service.execute_batch(queries, k=K)  # fill the cache

    def serve():
        results, stats = service.execute_batch(queries, k=K)
        return results, stats

    results, stats = benchmark(serve)
    assert stats.hit_rate == 1.0
    print(f"\ncached steady state: {stats.summary()}")
