"""XIV -- snapshot cold starts: ``Seda.load`` vs. full construction.

The paper's prototype precomputes indexes and dataguides and loads
them "into memory only once from disk" (Section 6.1).  This module
measures that cold-start contract end to end on the Factbook dataset:
full construction (parse XML from disk, discover links, build both
indexes, mine dataguides) against ``Seda.load`` of a whole-system
snapshot, asserting the >= 5x speedup the snapshot subsystem exists
for, plus byte-identical top-k results for the Figure 3 query.
"""

import gc
import json
import os
import time

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.system import Seda
from repro.xmlio import serialize

SCALE = float(os.environ.get("SEDA_BENCH_SCALE", "1.0"))

QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


def _topk_bytes(system, k=10):
    results = system.search(QUERY_1, k=k).results
    return json.dumps([
        [list(r.node_ids), list(r.content_scores), r.compactness, r.score]
        for r in results
    ]).encode("utf-8")


@pytest.fixture(scope="module")
def xml_dir(tmp_path_factory):
    """The Factbook as XML files on disk -- what a cold start reads."""
    directory = tmp_path_factory.mktemp("factbook-xml")
    for name, root in FactbookGenerator(scale=SCALE).documents():
        (directory / f"{name}.xml").write_text(
            serialize(root), encoding="utf-8"
        )
    return directory


def _cold_construct(xml_dir):
    documents = [
        (path.stem, path.read_text(encoding="utf-8"))
        for path in sorted(xml_dir.glob("*.xml"))
    ]
    return Seda.from_documents(
        documents,
        value_links=FactbookGenerator.value_link_specs(),
        name="world-factbook",
    )


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory, xml_dir):
    seda = _cold_construct(xml_dir)
    FactbookGenerator.register_standard_definitions(seda.registry)
    path = tmp_path_factory.mktemp("snapshot") / "factbook.snapshot"
    seda.save(path)
    return path


def test_snapshot_save(benchmark, xml_dir, tmp_path):
    seda = _cold_construct(xml_dir)
    path = tmp_path / "factbook.snapshot"
    benchmark.pedantic(seda.save, args=(path,), rounds=2, iterations=1)
    print(f"\nscale={SCALE}: snapshot bytes={path.stat().st_size}")
    assert path.stat().st_size > 0


def test_snapshot_load(benchmark, snapshot_path):
    seda = benchmark.pedantic(
        Seda.load, args=(snapshot_path,), rounds=3, iterations=1
    )
    print(f"\nscale={SCALE}: {len(seda.collection)} docs, "
          f"{seda.collection.node_count} nodes")
    assert len(seda.search(QUERY_1, k=10).results) > 0


def test_cold_start_speedup_and_identical_results(snapshot_path, xml_dir):
    """The acceptance contract: load >= 5x faster, results byte-identical."""

    def timed(callable_, rounds):
        best = None
        for _ in range(rounds):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                value = callable_()
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            if best is None or elapsed < best[0]:
                best = (elapsed, value)
        return best

    cold_seconds, cold = timed(lambda: _cold_construct(xml_dir), rounds=2)
    cold_bytes = _topk_bytes(cold)
    del cold  # keep the heap small while timing loads

    load_seconds, loaded = timed(lambda: Seda.load(snapshot_path), rounds=3)
    speedup = cold_seconds / load_seconds
    print(f"\nscale={SCALE}: cold={cold_seconds:.3f}s "
          f"load={load_seconds:.3f}s speedup={speedup:.1f}x")

    assert _topk_bytes(loaded) == cold_bytes
    assert speedup >= 5.0, (
        f"snapshot load must be >= 5x faster than cold construction, "
        f"got {speedup:.1f}x (cold {cold_seconds:.3f}s, "
        f"load {load_seconds:.3f}s)"
    )
