"""F6 -- Figure 6: the search/refine/complete/aggregate control flow.

Times each stage of the loop separately so the cost profile of the
interaction cycle is visible: top-k search, context summary,
connection summary, context-refined re-search, complete-result
materialization, and cube aggregation.
"""

import pytest

from repro.summaries.connection import TreeConnection

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"

QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


@pytest.fixture(scope="module")
def base_session(factbook_seda):
    return factbook_seda.search(QUERY_1, k=10)


@pytest.fixture(scope="module")
def refined_session(base_session):
    return base_session.refine_contexts({
        0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
    })


def test_stage1_topk_search(benchmark, factbook_seda):
    results = benchmark(lambda: factbook_seda.search(QUERY_1, k=10).results)
    print(f"\ntop-k: {len(results)} tuples")
    assert results


def test_stage2_context_summary(benchmark, factbook_seda):
    def build():
        session = factbook_seda.search(QUERY_1, k=10)
        return session.context_summary

    summary = benchmark(build)
    sizes = [len(bucket) for bucket in summary]
    print(f"\ncontext buckets: {sizes}, combinations: "
          f"{summary.combination_count()}")
    assert all(size > 0 for size in sizes)


def test_stage3_connection_summary(benchmark, factbook_seda):
    def build():
        session = factbook_seda.search(QUERY_1, k=10)
        return session.connection_summary

    summary = benchmark(build)
    print(f"\ndistinct connections: {len(summary)}")
    assert len(summary) > 0


def test_stage4_context_refined_research(benchmark, base_session):
    refined = benchmark(
        lambda: base_session.refine_contexts({
            0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
        })
    )
    assert refined.results


def test_stage5_complete_results(benchmark, refined_session):
    connections = [
        ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
        ((1, 2), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)),
    ]
    chosen = refined_session.refine_connections(connections)
    table = benchmark(chosen.complete_results)
    print(f"\ncomplete result: {len(table)} rows")
    assert len(table) > 0


def test_stage6_cube_and_aggregate(benchmark, refined_session, factbook_seda):
    connections = [
        ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
        ((1, 2), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)),
    ]
    chosen = refined_session.refine_connections(connections)
    table = chosen.complete_results()

    def build_and_aggregate():
        schema = chosen.build_cube(table)
        engine = chosen.olap(schema)
        return engine.report("import-trade-percentage", ["year"], agg="avg")

    report = benchmark(build_and_aggregate)
    print("\navg import share by year:")
    for row in report:
        print(f"  {row[0]}: {row[1]:.2f}")
    assert report
