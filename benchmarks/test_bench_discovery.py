"""DX -- extension benchmark: automatic fact/dimension/key discovery.

Not a paper table (it is the paper's named future work, Section 8);
benchmarked so the cost of the pay-as-you-go extension is on record:
path profiling, GORDIAN-style key search, and end-to-end discovery.
"""

import pytest

from repro.cube.discovery import FactDimensionDiscoverer, discover_key
from repro.storage.node_store import NodeStore

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"


@pytest.fixture(scope="module")
def setup(factbook_seda):
    collection = factbook_seda.collection
    return collection, NodeStore(collection)


def test_profile_all_paths(benchmark, setup):
    collection, store = setup
    discoverer = FactDimensionDiscoverer(collection, store)
    profiles = benchmark(discoverer.profile_paths)
    print(f"\nprofiled {len(profiles)} valued paths")
    assert profiles


def test_key_discovery_fact_path(benchmark, setup):
    collection, store = setup
    key = benchmark(discover_key, collection, store, PCT_PATH)
    print(f"\ndiscovered key for percentage: {list(key)}")
    assert key is not None


def test_key_discovery_dimension_path(benchmark, setup):
    collection, store = setup
    key = benchmark(discover_key, collection, store, TC_PATH)
    print(f"\ndiscovered key for trade_country: {list(key)}")
    assert key is not None


def test_full_discovery(benchmark, setup):
    collection, store = setup
    discoverer = FactDimensionDiscoverer(
        collection, store, dimension_cardinality=0.9
    )
    paths = [
        PCT_PATH, TC_PATH, "/country/year",
        "/country/economy/export_partners/item/percentage",
        "/country/people/population",
    ]
    facts, dims = benchmark.pedantic(
        discoverer.discover, args=(paths,), rounds=2, iterations=1
    )
    print(f"\nfacts: {[c.path for c in facts]}")
    print(f"dims : {[c.path for c in dims]}")
    assert facts
