"""E1 -- Example 1 and the Section 1/5 dataset measurements.

The paper's in-text numbers for the full World Factbook collection:

* the query term ``(*, "United States")`` matches 27 distinct paths;
* 1984 distinct root-to-leaf paths overall;
* ``/country`` occurs in 1577 of 1600 documents;
* the refugee country-of-origin path occurs in only 186 documents,
  one of a long tail of infrequent paths.
"""

import pytest

from repro.index.builder import IndexBuilder
from repro.query.matcher import TermMatcher
from repro.query.term import Query
from repro.storage.catalog import CollectionCatalog
from repro.storage.node_store import NodeStore

PAPER = {
    "us_paths": 27,
    "distinct_paths": 1984,
    "country_docs": 1577,
    "documents": 1600,
    "refugee_docs": 186,
}

REFUGEE_PATH = "/country/transnational_issues/refugees/country_of_origin"


@pytest.fixture(scope="module")
def matcher(factbook_full):
    inverted, paths = IndexBuilder(factbook_full).build()
    return TermMatcher(
        factbook_full, inverted, paths, NodeStore(factbook_full)
    )


def test_us_context_bucket(benchmark, matcher, factbook_full):
    query = Query.parse([("*", '"United States"')])
    paths = benchmark(matcher.term_paths, query.terms[0])
    print(
        f"\n'United States' contexts: {len(paths)} "
        f"(paper: {PAPER['us_paths']})"
    )
    assert len(paths) == PAPER["us_paths"]


def test_collection_statistics(benchmark, factbook_full):
    catalog = CollectionCatalog(factbook_full)
    summary = benchmark(catalog.summary)
    print(
        f"\ndocuments={summary['documents']} (paper {PAPER['documents']}), "
        f"distinct paths={summary['distinct_paths']} "
        f"(paper {PAPER['distinct_paths']})"
    )
    assert summary["documents"] == PAPER["documents"]
    assert abs(summary["distinct_paths"] - PAPER["distinct_paths"]) <= 60


def test_country_document_frequency(benchmark, factbook_full):
    frequency = benchmark(
        factbook_full.path_document_frequency, "/country"
    )
    print(f"\n/country docfreq: {frequency} (paper {PAPER['country_docs']})")
    assert frequency == PAPER["country_docs"]


def test_refugee_long_tail_path(benchmark, factbook_full):
    frequency = benchmark(
        factbook_full.path_document_frequency, REFUGEE_PATH
    )
    print(f"\nrefugee path docfreq: {frequency} (paper {PAPER['refugee_docs']})")
    assert frequency == PAPER["refugee_docs"]


def test_long_tail_profile(benchmark, factbook_full):
    """The long tail that 'makes shredding all the attributes into a
    data warehouse very difficult': most paths live in few documents."""
    catalog = CollectionCatalog(factbook_full)
    tail = benchmark(catalog.long_tail, 400)
    share = len(tail) / factbook_full.path_count()
    print(
        f"\npaths in <400 of {len(factbook_full)} docs: {len(tail)} "
        f"({share:.0%} of all paths)"
    )
    assert share > 0.5
