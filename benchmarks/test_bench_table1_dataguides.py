"""T1 -- Table 1: dataguide statistics at the 40% overlap threshold.

Paper (Table 1):

    Data set               # documents   # data guides
    Google Base snapshot         10000              88
    Mondial                       5563              86
    RecipeML                     10988               3
    World Factbook 2007           1600             500

Each benchmark times the full greedy merge over the paper-scale
synthetic collection and prints the regenerated table row.
"""

import pytest

from repro.summaries.dataguide import DataguideBuilder

PAPER_ROWS = {
    "google-base": (10000, 88),
    "mondial": (5563, 86),
    "recipeml": (10988, 3),
    "world-factbook": (1600, 500),
}


def _merge(collection, threshold=0.4):
    builder = DataguideBuilder(threshold)
    for document in collection.documents:
        builder.add_paths(document.paths(), document.doc_id)
    return builder


def _report(name, collection, builder):
    paper_docs, paper_guides = PAPER_ROWS[name]
    print(
        f"\nTable 1 row [{name}]: documents={len(collection)} "
        f"(paper {paper_docs}), dataguides={builder.guide_count} "
        f"(paper {paper_guides})"
    )


@pytest.mark.parametrize("dataset", sorted(PAPER_ROWS))
def test_table1_row(benchmark, dataset, googlebase_full, mondial_full,
                    recipeml_full, factbook_full):
    collection = {
        "google-base": googlebase_full,
        "mondial": mondial_full,
        "recipeml": recipeml_full,
        "world-factbook": factbook_full,
    }[dataset]
    builder = benchmark.pedantic(
        _merge, args=(collection,), rounds=1, iterations=1
    )
    _report(dataset, collection, builder)
    paper_docs, paper_guides = PAPER_ROWS[dataset]
    # The *shape* must hold: documents exact, guide count within 15%.
    if abs(len(collection) - paper_docs) <= 1:
        assert abs(builder.guide_count - paper_guides) <= max(
            2, round(0.15 * paper_guides)
        )
