"""IX -- Section 4 storage/indexing: index build cost scaling.

Builds the inverted + path indexes, the node store, the data graph
with link discovery, and the dataguide set over increasing Factbook
slices, giving the ingestion cost curve of the architecture's storage
and indexing component (Figure 4, bottom).
"""

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.index.builder import IndexBuilder
from repro.model.graph import DataGraph
from repro.model.links import LinkDiscoverer
from repro.storage.node_store import NodeStore
from repro.summaries.dataguide import DataguideBuilder

SCALES = (0.02, 0.05, 0.1)


@pytest.mark.parametrize("scale", SCALES)
def test_fulltext_index_build(benchmark, scale):
    collection = FactbookGenerator(scale=scale).build_collection()

    def build():
        return IndexBuilder(collection).build()

    inverted, paths = benchmark.pedantic(build, rounds=2, iterations=1)
    print(
        f"\nscale={scale}: {len(collection)} docs, "
        f"{collection.node_count} nodes, vocab={len(inverted.vocabulary())}, "
        f"paths={len(paths)}"
    )
    assert inverted.indexed_nodes > 0


@pytest.mark.parametrize("scale", SCALES)
def test_node_store_build(benchmark, scale):
    collection = FactbookGenerator(scale=scale).build_collection()
    store = benchmark.pedantic(
        NodeStore, args=(collection,), rounds=2, iterations=1
    )
    assert store.by_tag("country")


@pytest.mark.parametrize("scale", SCALES)
def test_link_discovery(benchmark, scale):
    collection = FactbookGenerator(scale=scale).build_collection()
    specs = FactbookGenerator.value_link_specs()

    def discover():
        graph = DataGraph(collection)
        return LinkDiscoverer(graph).discover_all(value_specs=specs)

    edges = benchmark.pedantic(discover, rounds=2, iterations=1)
    print(f"\nscale={scale}: {len(edges)} link edges")
    assert edges


@pytest.mark.parametrize("scale", SCALES)
def test_dataguide_build(benchmark, scale):
    collection = FactbookGenerator(scale=scale).build_collection()

    def build():
        builder = DataguideBuilder(0.4)
        for document in collection.documents:
            builder.add_paths(document.paths(), document.doc_id)
        return builder

    builder = benchmark.pedantic(build, rounds=2, iterations=1)
    print(f"\nscale={scale}: {builder.guide_count} guides")
    assert builder.guide_count > 0
