"""CB -- Section 7 cube construction: match / augment / extract cost,
key verification, and the fact-table merge optimization.
"""

import pytest

from repro.cube.augment import Augmenter
from repro.cube.extract import TableExtractor
from repro.cube.matching import ResultMatcher
from repro.cube.star import FactTable, StarSchema
from repro.summaries.connection import TreeConnection
from repro.cube.keys import RelativeKey

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"


@pytest.fixture(scope="module")
def result_table(factbook_seda):
    """A large complete result: every import (tc, pct) sibling pair."""
    from repro.query.term import Query

    query = Query.parse([("trade_country", "*"), ("percentage", "*")])
    return factbook_seda.complete_generator.generate(
        query,
        {0: TC_PATH, 1: PCT_PATH},
        connections=[((0, 1), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH))],
    )


def test_step1_matching(benchmark, factbook_seda, result_table):
    matcher = ResultMatcher(factbook_seda.registry)
    report = benchmark(matcher.match, result_table)
    print(
        f"\nR(q) rows={len(result_table)}; matched facts="
        f"{[f.name for f in report.facts]}, dims="
        f"{[d.name for d in report.dimensions]}"
    )
    assert report.facts


def test_step2_augmentation(benchmark, factbook_seda, result_table):
    report = ResultMatcher(factbook_seda.registry).match(result_table)
    augmenter = Augmenter(
        factbook_seda.collection, factbook_seda.node_store,
        factbook_seda.registry,
    )
    augmented = benchmark(
        augmenter.augment, result_table, report.facts, report.dimensions
    )
    print(
        f"\nadded key columns: {sorted(augmented.added_columns)}; "
        f"auto dimensions: {[d.name for d in augmented.auto_dimensions]}"
    )
    assert "/country/year" in augmented.added_columns


def test_step3_extraction(benchmark, factbook_seda, result_table):
    report = ResultMatcher(factbook_seda.registry).match(result_table)
    augmenter = Augmenter(
        factbook_seda.collection, factbook_seda.node_store,
        factbook_seda.registry,
    )
    augmented = augmenter.augment(result_table, report.facts,
                                  report.dimensions)
    dimensions = report.dimensions + augmented.auto_dimensions
    extractor = TableExtractor(
        factbook_seda.collection, factbook_seda.node_store,
        factbook_seda.registry,
    )
    schema = benchmark(
        extractor.extract, augmented, report.facts, dimensions
    )
    fact = schema.fact("import-trade-percentage")
    print(f"\nfact rows: {len(fact)}; dims: {sorted(schema.dimension_tables)}")
    assert len(fact) > 0


def test_key_verification_cost(benchmark, factbook_seda, result_table):
    key = RelativeKey(["/country", "/country/year", "../trade_country"])
    node_ids = [row[1] for row in result_table.rows]
    unique, duplicates = benchmark(
        key.verify_uniqueness, factbook_seda.collection,
        factbook_seda.node_store, node_ids,
    )
    print(f"\nkey unique over {len(node_ids)} nodes: {unique}")
    assert unique


def test_fact_merge_optimization(benchmark):
    left = FactTable(
        "a", ["country", "year"], ["a"],
        [(f"c{i}", str(2000 + i % 6), float(i)) for i in range(5000)],
    )
    right = FactTable(
        "b", ["country", "year"], ["b"],
        [(f"c{i}", str(2000 + i % 6), float(i) * 2) for i in range(5000)],
    )

    def merge():
        return StarSchema([left, right], []).merge_compatible_facts()

    schema = benchmark(merge)
    assert len(schema.fact_tables) == 1
