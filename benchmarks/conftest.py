"""Shared benchmark fixtures: paper-scale collections, built once.

Every module here regenerates one table or figure of the paper (see
DESIGN.md's experiment index); fixtures are session-scoped because the
paper-scale collections are expensive to build.  ``FULL_SCALE`` can be
lowered via the ``SEDA_BENCH_SCALE`` environment variable for quick
smoke runs.
"""

import os

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.datasets.googlebase import GoogleBaseGenerator
from repro.datasets.mondial import MondialGenerator
from repro.datasets.recipeml import RecipeMLGenerator
from repro.system import Seda

FULL_SCALE = float(os.environ.get("SEDA_BENCH_SCALE", "1.0"))
# The interactive-pipeline benchmarks use a smaller slice so that each
# benchmark iteration stays sub-second; Table 1 uses FULL_SCALE.
PIPELINE_SCALE = min(FULL_SCALE, 0.05)


@pytest.fixture(scope="session")
def factbook_full():
    return FactbookGenerator(scale=FULL_SCALE).build_collection()


@pytest.fixture(scope="session")
def mondial_full():
    return MondialGenerator(scale=FULL_SCALE).build_collection()


@pytest.fixture(scope="session")
def googlebase_full():
    return GoogleBaseGenerator(scale=FULL_SCALE).build_collection()


@pytest.fixture(scope="session")
def recipeml_full():
    return RecipeMLGenerator(scale=FULL_SCALE).build_collection()


@pytest.fixture(scope="session")
def factbook_seda():
    """A fully wired SEDA instance on the pipeline-scale Factbook."""
    generator = FactbookGenerator(scale=PIPELINE_SCALE)
    seda = Seda(
        generator.build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
    )
    FactbookGenerator.register_standard_definitions(seda.registry)
    return seda
