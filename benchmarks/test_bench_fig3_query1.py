"""F3 -- Figure 3: Query 1 end-to-end to the star schema.

Query 1: ``(*, "United States") AND (trade_country, *) AND
(percentage, *)`` with contexts restricted to import partners and the
sibling connection -- the paper's running example.  Regenerates:

* R(q), the full result with <nodeid, path> column pairs (Fig. 3a);
* the matched facts/dimensions + automatically added year column (3b);
* the final fact table (country, year, import-country, percentage) and
  the dimension tables (3c).
"""

from repro.summaries.connection import TreeConnection

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"
ITEM_PATH = "/country/economy/import_partners/item"

QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]

CONNECTIONS = [
    ((0, 1), TreeConnection("/country", TC_PATH, "/country")),
    ((1, 2), TreeConnection(TC_PATH, PCT_PATH, ITEM_PATH)),
]

# Figure 3(c) rows the paper prints (year, partner, percentage).
PAPER_FACT_ROWS = {
    ("United States", "2006", "China", 15.0),
    ("United States", "2006", "Canada", 16.9),
    ("United States", "2005", "China", 13.8),
    ("United States", "2005", "Mexico", 10.3),
    ("United States", "2004", "Mexico", 10.7),
    ("United States", "2004", "China", 12.5),
}


def _run_query1(seda):
    session = seda.search(QUERY_1, k=10)
    refined = session.refine_contexts({
        0: ["/country"], 1: [TC_PATH], 2: [PCT_PATH],
    })
    chosen = refined.refine_connections(CONNECTIONS)
    table = chosen.complete_results()
    schema = chosen.build_cube(table)
    return table, schema


def test_figure3_query1_pipeline(benchmark, factbook_seda):
    table, schema = benchmark.pedantic(
        _run_query1, args=(factbook_seda,), rounds=3, iterations=1
    )
    fact = schema.fact("import-trade-percentage")
    rows = set(fact.rows)

    print(f"\nR(q): {len(table)} tuples, schema {table.schema}")
    for display in table.display_rows()[:3]:
        print("  ", display)
    print(f"fact table columns: {fact.columns}")
    for row in sorted(PAPER_FACT_ROWS, key=str):
        marker = "ok" if row in rows else "MISSING"
        print(f"  paper row {row}: {marker}")
    for name, dimension in sorted(schema.dimension_tables.items()):
        print(f"dimension {name}: {list(dimension)[:6]}")

    assert PAPER_FACT_ROWS <= rows
    assert fact.key_columns == ["country", "year", "import-country"]
    assert fact.has_primary_key()
