"""F8 -- Figure 8: the path full-text index and its three probe modes.

Section 5 describes the index (keyword -> distinct paths, counts kept
in the document store) and three usages: term-only probe, tag + term
probe, and full-path + term probe.  Times each probe mode on the
paper-scale Factbook and reports bucket sizes.
"""

import pytest

from repro.index.builder import IndexBuilder
from repro.query.matcher import TermMatcher
from repro.query.term import QueryTerm
from repro.storage.node_store import NodeStore


@pytest.fixture(scope="module")
def matcher(factbook_full):
    inverted, paths = IndexBuilder(factbook_full).build()
    return TermMatcher(
        factbook_full, inverted, paths, NodeStore(factbook_full)
    )


def test_probe_term_only(benchmark, matcher):
    term = QueryTerm("*", '"United States"')
    paths = benchmark(matcher.term_paths, term)
    print(f"\n(*, 'United States') -> {len(paths)} paths (paper: 27)")
    assert len(paths) == 27


def test_probe_tag_plus_term(benchmark, matcher):
    term = QueryTerm("trade_country", '"United States"')
    paths = benchmark(matcher.term_paths, term)
    print(f"\n(trade_country, 'United States') -> {sorted(paths)}")
    assert paths == {
        "/country/economy/import_partners/item/trade_country",
        "/country/economy/export_partners/item/trade_country",
    }


def test_probe_full_path_plus_term(benchmark, matcher):
    term = QueryTerm(
        "/country/economy/import_partners/item/trade_country",
        '"United States"',
    )
    paths = benchmark(matcher.term_paths, term)
    assert len(paths) == 1


def test_probe_boolean_query(benchmark, matcher):
    term = QueryTerm("*", "united AND states NOT kingdom")
    paths = benchmark(matcher.term_paths, term)
    assert paths


def test_frequencies_from_document_store(benchmark, matcher, factbook_full):
    """The paper's split: the index returns paths; per-path occurrence
    counts come from the document store."""
    term = QueryTerm("*", '"United States"')
    paths = matcher.term_paths(term)

    def lookup_counts():
        return {
            path: factbook_full.path_occurrences(path) for path in paths
        }

    counts = benchmark(lookup_counts)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print("\nmost frequent 'United States' contexts:")
    for path, count in top:
        print(f"  {count:7d}  {path}")
    assert counts["/country"] > 0
