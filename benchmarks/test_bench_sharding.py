"""SH -- sharding: parallel build speedup, equality-gated scatter-gather.

The ROADMAP's north star is a system over corpora far larger than one
index build can hold; sharding is the horizontal layer that gets there.
The series of interest:

* parallel (multi-process) shard builds against the same build done
  serially -- the gate the ISSUE demands (>= 1.5x on >= 2 shards),
  meaningful only on a multi-core machine;
* the contract that makes sharding admissible at all: scatter-gather
  answers byte-identical to an unsharded build over the same corpus,
  ties and all, on every path (direct search, the sharded service,
  cache hits);
* scatter-gather serving throughput on the hot-query workload, against
  the single-shard sequential path (reported, and equality-gated).

The equivalence suites build **without value links**: the hash
partitioner does not co-locate value-linked documents, and the
sharded-vs-unsharded contract covers exactly the corpora whose link
edges stay within one shard (docs/ARCHITECTURE.md, "Sharding").  The
build-speedup gate compares serial-sharded against parallel-sharded
(identical partitions either way), so it keeps value links on -- link
discovery is exactly the kind of per-shard CPU the fan-out exists for.
"""

import json
import os
import time

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.query.term import Query
from repro.search.topk import TopKSearcher
from repro.shard import ShardedSeda
from repro.system import Seda

#: Mirrors ``conftest.PIPELINE_SCALE`` (benchmarks/ is not a package,
#: so the conftest module is not importable here).
PIPELINE_SCALE = min(
    float(os.environ.get("SEDA_BENCH_SCALE", "1.0")), 0.05
)

#: The build-speedup corpus is deliberately larger than the pipeline
#: slice: process fan-out has fixed costs (fork, payload transfer,
#: lazy-slot bookkeeping) that a sub-100ms build cannot amortize.
BUILD_SCALE = 0.25


def _available_cpus():
    """CPUs this process may actually use (cgroup/affinity aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1

#: The service-benchmark query set: Query 1 terms and variants; the
#: match-all pairs produce tied scores, exercising the merge's
#: deterministic tie-break across shard boundaries.
QUERY_SET = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", '"United States"'), ("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    [("*", "germany"), ("percentage", "*")],
    [("percentage", "*")],
]

HOT_REPEAT = 6
K = 10
SHARDS = 3


def _canonical(results):
    """Byte-exact serialization of one query's full result list."""
    return json.dumps(
        [
            [list(r.node_ids), list(r.content_scores), r.compactness,
             r.score]
            for r in results
        ],
        separators=(",", ":"),
    ).encode("utf-8")


@pytest.fixture(scope="module")
def corpus():
    return list(FactbookGenerator(scale=PIPELINE_SCALE).documents())


@pytest.fixture(scope="module")
def unsharded(corpus):
    return Seda.from_documents(corpus)


@pytest.fixture(scope="module")
def sharded(corpus):
    return ShardedSeda.from_documents(corpus, shards=SHARDS, parallel=False)


def test_parallel_build_speedup():
    """Multi-process shard builds must beat the same builds done
    serially by >= 1.5x on >= 2 shards (the ISSUE gate).

    The corpus arrives as XML *text* with value links enabled -- the
    realistic heavy-ingest shape: parsing and link discovery are
    worker-side CPU that parallelizes, while the transfer cost is the
    compact text, not pickled node trees.  The fan-out's serial
    remainder (argument/payload transfer, pool startup) caps the
    achievable speedup well below core count, so the timed gate needs
    >= 4 usable cores; with fewer the test skips rather than reporting
    a meaningless number.
    """
    cpus = _available_cpus()
    if cpus < 4:
        pytest.skip(
            f"parallel build speedup gate needs >= 4 usable CPU cores "
            f"(found {cpus})"
        )
    from repro.datasets.factbook import FactbookGenerator as Generator
    from repro.xmlio.writer import serialize

    generator = Generator(scale=BUILD_SCALE)
    text_corpus = [
        (doc_name, serialize(root)) for doc_name, root in
        generator.documents()
    ]
    links = Generator.value_link_specs()
    shards = 4

    def timed(**kwargs):
        start = time.perf_counter()
        system = ShardedSeda.from_documents(
            text_corpus, shards=shards, value_links=links, **kwargs
        )
        return system, time.perf_counter() - start

    # Best of two rounds per mode: shared CI runners are noisy, and a
    # single contended measurement must not fail the gate.
    serial, serial_time = timed(parallel=False)
    parallel, parallel_time = timed(
        parallel=True, max_workers=min(shards, cpus)
    )
    _again, serial_retime = timed(parallel=False)
    serial_time = min(serial_time, serial_retime)
    _again, parallel_retime = timed(
        parallel=True, max_workers=min(shards, cpus)
    )
    parallel_time = min(parallel_time, parallel_retime)

    # Same topology and same answers, whichever path built it (this
    # also forces the parallel build's lazy shards live, so the timing
    # above excludes -- and the correctness check includes -- them).
    def topology(system):
        return [
            (entry["shard"], entry["documents"], entry["nodes"])
            for entry in system.info()["per_shard"]
        ]

    assert topology(serial) == topology(parallel)
    query = Query.parse(QUERY_SET[0])
    assert _canonical(serial.search(query, k=K)) == _canonical(
        parallel.search(query, k=K)
    )
    speedup = serial_time / parallel_time if parallel_time > 0 else 1.0
    assert speedup >= 1.5, (
        f"parallel shard build only {speedup:.2f}x faster than serial "
        f"({parallel_time * 1000:.0f}ms vs {serial_time * 1000:.0f}ms "
        f"on {shards} shards / {cpus} cores)"
    )


def test_scatter_gather_byte_identical(unsharded, sharded):
    """The headline contract: merged top-k == unsharded top-k, byte for
    byte -- node ids, content scores, compactness, and combined score --
    for every query shape, every k, including k > corpus size."""
    for pairs in QUERY_SET:
        query = Query.parse(pairs)
        for k in (1, 3, K, 10_000, None):
            expected = unsharded.topk.search(query, k=k)
            merged = sharded.search(query, k=k)
            assert _canonical(expected) == _canonical(merged), (
                f"sharded results diverge on {pairs} at k={k}"
            )


def test_scatter_gather_throughput_and_service_equivalence(
    unsharded, sharded, benchmark
):
    """Equality-gated sharded serving on the hot-query workload.

    The single-shard sequential path is the baseline; the sharded
    service must return identical bytes from both the computed and the
    fully cached path (throughput is reported, not gated: under the
    GIL scatter-gather buys correctness and capacity, not single-box
    speed).
    """
    queries = [Query.parse(pairs) for _ in range(HOT_REPEAT)
               for pairs in QUERY_SET]

    searcher = TopKSearcher(unsharded.matcher, unsharded.scoring,
                            streams=unsharded.streams).warm()
    start = time.perf_counter()
    expected = [searcher.search(query, k=K) for query in queries]
    seq_time = time.perf_counter() - start

    service = sharded.query_service(workers=4)
    start = time.perf_counter()
    answers, stats = service.execute_batch(queries, k=K)
    sharded_time = time.perf_counter() - start
    cached, cached_stats = service.execute_batch(queries, k=K)

    for want, computed, hot in zip(expected, answers, cached):
        assert _canonical(want) == _canonical(computed)
        assert _canonical(want) == _canonical(hot)
    assert cached_stats.hit_rate == 1.0

    # Per-shard accounting must cover every computed (non-cache) query.
    totals = stats.shard_totals
    assert set(totals) == set(range(SHARDS))
    assert sum(t["tuples_scored"] for t in totals.values()) == (
        stats.tuples_scored
    )

    benchmark.extra_info["sequential_qps"] = len(queries) / seq_time
    benchmark.extra_info["sharded_qps"] = len(queries) / sharded_time
    benchmark.pedantic(
        lambda: service.execute_batch(queries, k=K),
        rounds=3, iterations=1,
    )


def test_shared_bound_changes_no_answers(corpus, unsharded):
    """Cross-shard pruning is invisible: per-shard searches run with a
    fresh (never-offered) bound must merge to the same bytes as the
    coupled scatter."""
    from repro.search.topk import SharedBound

    sharded = ShardedSeda.from_documents(corpus, shards=SHARDS,
                                         parallel=False)
    for pairs in QUERY_SET:
        query = Query.parse(pairs)
        coupled = sharded.search(query, k=K)
        independent = sharded._merge(
            [
                TopKSearcher(
                    shard.matcher, shard.scoring, streams=shard.streams
                ).search(query, k=K, shared_bound=SharedBound())
                for shard in sharded.shards
            ],
            K,
        )
        assert _canonical(coupled) == _canonical(independent)
        assert _canonical(coupled) == _canonical(
            unsharded.topk.search(query, k=K)
        )
