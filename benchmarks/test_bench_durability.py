"""XIX -- durability: write-ahead logging overhead and recovery equality.

The crash-safety subsystem (``src/repro/storage/wal.py``) buys its
guarantee with one fsynced log append per ``add_documents`` batch.
This module measures that price on the Factbook dataset and gates the
property the log exists for: a system recovered from snapshot + log
replay answers queries byte-identical to the live system that never
crashed -- for both the single-file and the sharded form.
"""

import json
import os
import time

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.shard import ShardedSeda
from repro.system import Seda
from repro.xmlio import serialize

SCALE = float(os.environ.get("SEDA_BENCH_SCALE", "1.0"))

QUERY_1 = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


def _topk_bytes(results):
    return json.dumps([
        [list(r.node_ids), list(r.content_scores), r.compactness, r.score]
        for r in results
    ]).encode("utf-8")


@pytest.fixture(scope="module")
def corpus():
    """The Factbook as serialized documents, split build/post-save."""
    documents = [
        (name, serialize(root))
        for name, root in FactbookGenerator(scale=SCALE).documents()
    ]
    split = max(1, int(len(documents) * 0.8))
    initial, tail = documents[:split], documents[split:]
    assert tail, "bench scale too small to leave post-save batches"
    # Post-save ingestion arrives in several acknowledged batches.
    batches = [tail[i::3] for i in range(3) if tail[i::3]]
    return initial, batches


def test_wal_replay_is_byte_identical(corpus, tmp_path):
    initial, batches = corpus
    path = str(tmp_path / "factbook.snapshot")

    live = Seda.from_documents(
        initial, value_links=FactbookGenerator.value_link_specs(),
        name="world-factbook",
    )
    start = time.perf_counter()
    live.save(path)
    save_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for batch in batches:
        live.add_documents(batch)
    logged_seconds = time.perf_counter() - start

    start = time.perf_counter()
    recovered = Seda.load(path)  # snapshot restore + log replay
    recovery_seconds = time.perf_counter() - start

    expected = _topk_bytes(live.search(QUERY_1, k=10).results)
    replayed = _topk_bytes(recovered.search(QUERY_1, k=10).results)
    assert replayed == expected, (
        "recovery (snapshot + WAL replay) diverged from the live system"
    )

    wal_bytes = os.path.getsize(path + ".wal")
    print(
        f"\n[bench-durability] scale={SCALE} "
        f"initial_docs={len(initial)} batches={len(batches)} "
        f"save={save_seconds:.3f}s logged_ingest={logged_seconds:.3f}s "
        f"recovery={recovery_seconds:.3f}s wal_bytes={wal_bytes}"
    )


def test_sharded_wal_replay_is_byte_identical(corpus, tmp_path):
    initial, batches = corpus
    directory = str(tmp_path / "factbook.shards")

    live = ShardedSeda.from_documents(
        initial, shards=2, parallel=False,
        value_links=FactbookGenerator.value_link_specs(),
        name="world-factbook",
    )
    live.save(directory)
    for batch in batches:
        live.add_documents(batch)

    start = time.perf_counter()
    recovered = ShardedSeda.load(directory)
    recovery_seconds = time.perf_counter() - start

    expected = _topk_bytes(live.search(QUERY_1, k=10))
    replayed = _topk_bytes(recovered.search(QUERY_1, k=10))
    assert replayed == expected, (
        "sharded recovery (manifest + wal.log replay) diverged from "
        "the live collection"
    )
    print(
        f"\n[bench-durability] sharded recovery={recovery_seconds:.3f}s"
    )
