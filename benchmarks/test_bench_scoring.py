"""SC -- the scoring pipeline: precomputed hot path vs the slow path.

The seed's top-k unit recomputed everything at query time: every stream
rebuilt per query (re-analyzing node text per candidate), every
structural distance rewalked per tuple.  The reworked pipeline
precomputes term frequencies and length norms at build time,
materializes impact-ordered per-term streams once per graph version,
memoizes pair distances, and prunes candidate tuples by their content
upper bound.

The series of interest here are (a) the gated speedup of the
precomputed pipeline over the ``precomputed=False`` escape hatch (the
seed-equivalent recompute-everything path) on a repeated multi-term
workload, and (b) the contract that makes the precomputation
admissible at all: **byte-identical answers** from both paths.
"""

import json
import time

from repro.index.streams import ImpactStreamStore
from repro.query.term import Query
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher

#: Multi-term Factbook queries (the paper's Query 1 terms and
#: variants); a production query log is skewed, so each distinct query
#: repeats HOT_REPEAT times.
QUERY_SET = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", '"United States"'), ("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    [("*", "germany"), ("percentage", "*")],
]

HOT_REPEAT = 6

K = 10

#: The precomputed pipeline must beat the recompute-everything path by
#: at least this factor on the repeated workload.
MIN_SPEEDUP = 3.0


def _workload():
    return [Query.parse(pairs) for _ in range(HOT_REPEAT)
            for pairs in QUERY_SET]


def _canonical(results):
    """Byte-exact serialization of one query's full result list."""
    return json.dumps(
        [
            [list(r.node_ids), list(r.content_scores), r.compactness,
             r.score]
            for r in results
        ],
        separators=(",", ":"),
    ).encode("utf-8")


def _run(searcher, queries):
    start = time.perf_counter()
    results = [searcher.search(query, k=K) for query in queries]
    return results, time.perf_counter() - start


def test_precomputed_pipeline_speedup_and_equivalence(factbook_seda):
    """>= 3x over the slow path on the hot workload, byte-identically."""
    seda = factbook_seda
    queries = _workload()

    # The escape hatch: no stream cache, no tf tables, no distance
    # memo, no pruning -- everything recomputed per query, seed-style.
    slow_scoring = ScoringModel(
        seda.collection, seda.inverted, seda.graph,
        max_hops=seda.max_hops, precomputed=False,
    )
    slow_searcher = TopKSearcher(seda.matcher, slow_scoring).warm()
    slow_results, slow_time = _run(slow_searcher, queries)

    # The precomputed pipeline, cold: a fresh stream store and a fresh
    # scoring model, so stream builds and distance walks are paid
    # inside the measured window exactly once each.
    fast_scoring = ScoringModel(
        seda.collection, seda.inverted, seda.graph, max_hops=seda.max_hops
    )
    fast_searcher = TopKSearcher(
        seda.matcher, fast_scoring, streams=ImpactStreamStore()
    ).warm()
    fast_results, fast_time = _run(fast_searcher, queries)

    assert [_canonical(r) for r in fast_results] == [
        _canonical(r) for r in slow_results
    ]
    # The hot workload must actually exercise the caches.
    assert fast_searcher.streams.hits > 0
    assert fast_scoring.pair_hits > 0

    speedup = slow_time / fast_time
    print(
        f"\nslow (precomputed=False): {len(queries) / slow_time:8.0f} q/s "
        f"({slow_time * 1000:.1f}ms)"
        f"\nfast (precomputed)      : {len(queries) / fast_time:8.0f} q/s "
        f"({fast_time * 1000:.1f}ms)"
        f"\nspeedup                 : {speedup:.2f}x"
        f"\nstream cache            : {fast_searcher.streams.hits} hits / "
        f"{fast_searcher.streams.misses} misses"
        f"\ndistance memo           : {fast_scoring.pair_hits} hits / "
        f"{fast_scoring.pair_misses} misses"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"precomputed pipeline only {speedup:.2f}x the slow path "
        f"({slow_time * 1000:.1f}ms vs {fast_time * 1000:.1f}ms)"
    )


def test_warm_stream_topk_latency(benchmark, factbook_seda):
    """Steady-state top-k latency with warm streams (no result cache):
    the per-query cost that remains after precomputation."""
    seda = factbook_seda
    query = Query.parse(QUERY_SET[2])
    seda.topk.search(query, k=K)  # materialize the streams

    results = benchmark(seda.topk.search, query, K)
    stats = seda.topk.stats
    print(
        f"\nwarm 3-term query: {len(results)} results, "
        f"{stats['sorted_accesses']} sorted accesses, "
        f"{stats['tuples_scored']} tuples scored, "
        f"{stats['pruned']} pruned"
    )
    assert results
