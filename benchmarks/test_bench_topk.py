"""TK -- the Section 4 top-k unit: TA vs exhaustive, k sweep, ablation.

The paper gives no absolute latencies for the top-k unit; the series
of interest are (a) TA early termination vs the exhaustive baseline,
(b) cost as a function of k, and (c) the ranking ablation: content
only vs structure only vs combined (the compactness design decision).
"""

import pytest

from repro.query.term import Query
from repro.search.naive import NaiveSearcher
from repro.search.scoring import ScoringModel
from repro.search.topk import TopKSearcher

QUERY = [
    ("*", '"United States"'),
    ("trade_country", "*"),
]

QUERY_3TERM = [
    ("*", '"United States"'),
    ("trade_country", "*"),
    ("percentage", "*"),
]


@pytest.mark.parametrize("k", [1, 5, 10, 25])
def test_ta_topk_by_k(benchmark, factbook_seda, k):
    query = Query.parse(QUERY_3TERM)
    results = benchmark(factbook_seda.topk.search, query, k)
    stats = factbook_seda.topk.stats
    print(
        f"\nk={k}: {len(results)} results, sorted accesses "
        f"{stats['sorted_accesses']}, tuples scored "
        f"{stats['tuples_scored']}, early stop {stats['early_stop']}"
    )
    assert len(results) <= k


def test_naive_baseline(benchmark, factbook_seda):
    query = Query.parse(QUERY)
    naive = NaiveSearcher(
        factbook_seda.matcher, factbook_seda.scoring,
        max_combinations=50_000_000,
    )
    results = benchmark.pedantic(
        naive.search, args=(query, 10), rounds=1, iterations=1
    )
    print(f"\nnaive: {len(results)} results")
    assert results


def test_ta_vs_naive_agreement(factbook_seda):
    """Not a timing benchmark: the two must agree on top-k scores."""
    query = Query.parse(QUERY)
    naive = NaiveSearcher(
        factbook_seda.matcher, factbook_seda.scoring,
        max_combinations=50_000_000,
    )
    ta_scores = [
        round(result.score, 9)
        for result in factbook_seda.topk.search(query, k=10)
    ]
    naive_scores = [
        round(result.score, 9) for result in naive.search(query, k=10)
    ]
    print(f"\nTA     : {ta_scores}")
    print(f"naive  : {naive_scores}")
    assert ta_scores == naive_scores


@pytest.mark.parametrize("weights", [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0)])
def test_ranking_ablation(benchmark, factbook_seda, weights):
    """Content-only vs structure-only vs combined ranking."""
    content_weight, structure_weight = weights
    scoring = ScoringModel(
        factbook_seda.collection,
        factbook_seda.inverted,
        factbook_seda.graph,
        content_weight=content_weight,
        structure_weight=structure_weight,
    )
    searcher = TopKSearcher(factbook_seda.matcher, scoring)
    query = Query.parse(QUERY_3TERM)
    results = benchmark(searcher.search, query, 10)
    sibling_top = 0
    for result in results[:5]:
        tc = factbook_seda.collection.node(result.node_ids[1])
        pct = factbook_seda.collection.node(result.node_ids[2])
        if tc.parent_id == pct.parent_id:
            sibling_top += 1
    print(
        f"\nweights(content={content_weight}, structure={structure_weight}):"
        f" {sibling_top}/5 top results pair siblings"
    )
    # With structure in play, tight pairs dominate the top ranks.
    if structure_weight:
        assert sibling_top >= 3


@pytest.mark.parametrize("scale", [0.01, 0.03, 0.05])
def test_latency_vs_collection_size(benchmark, scale):
    """Latency as the collection grows (the TK series of DESIGN.md)."""
    from repro.datasets.factbook import FactbookGenerator
    from repro.system import Seda

    seda = Seda(
        FactbookGenerator(scale=scale).build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
    )
    query = Query.parse(QUERY_3TERM)
    results = benchmark.pedantic(
        seda.topk.search, args=(query, 10), rounds=3, iterations=1
    )
    print(
        f"\nscale={scale}: docs={len(seda.collection)} "
        f"results={len(results)} "
        f"tuples_scored={seda.topk.stats['tuples_scored']}"
    )
    assert results
