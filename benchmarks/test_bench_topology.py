"""TOPO -- shard topology: split/rebalance cost tracks the affected shards.

The topology operations (:mod:`repro.shard.topology`) claim *elastic*
resharding: splitting one shard or moving a few documents rewrites
only the affected shards' snapshot files and costs time proportional
to those shards -- not to the corpus.  This module measures that over
a real on-disk sharded Factbook corpus and gates it two ways:

* **bytes**: the set of files rewritten by each operation is exactly
  the affected shards' (every other shard file survives with its name
  and bytes intact), so I/O is bounded by affected-shard size by
  construction;
* **wall-clock**: one split out of ``SHARDS`` shards must finish in
  less time than the initial full build -- the operation rebuilds
  ~2/``SHARDS`` of the corpus, so this bound holds with a wide margin
  unless the implementation secretly rebuilds everything;

and, throughout, on **byte-equality**: every answer over the hot query
set must match an unsharded oracle before, between, and after the
operations.  Results land in ``BENCH_topology.json`` at the repo root
(gitignored; uploaded as a CI artifact).
"""

import json
import os
import pathlib
import time

import pytest

from repro.datasets.factbook import FactbookGenerator
from repro.query.term import Query
from repro.shard import ShardedSeda, skew_report
from repro.storage.snapshot import fsck_report, read_sharded_manifest
from repro.system import Seda
from repro.xmlio import serialize

#: Mirrors ``conftest.FULL_SCALE`` (benchmarks/ is not a package).
SCALE = float(os.environ.get("SEDA_BENCH_SCALE", "1.0"))

SHARDS = 8

QUERY_SET = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    [("*", "germany"), ("percentage", "*")],
]

ARTIFACT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_topology.json"


def _record(section, data):
    """Merge one section into the benchmark artifact (test-order safe)."""
    payload = {}
    if ARTIFACT.exists():
        try:
            payload = json.loads(ARTIFACT.read_text(encoding="utf-8"))
        except ValueError:
            payload = {}
    payload[section] = data
    ARTIFACT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _canon_sharded(system):
    return [
        [(r.node_ids, r.content_scores, r.compactness, r.score)
         for r in system.search(pairs, k=10)]
        for pairs in QUERY_SET
    ]


def _shard_files(directory):
    """``{file_name: size}`` for every manifest-listed shard file."""
    manifest = read_sharded_manifest(directory)
    sizes = {}
    for shard_file in manifest["shard_files"]:
        for name in (shard_file, f"{shard_file}.cols"):
            path = os.path.join(directory, name)
            if os.path.exists(path):
                sizes[name] = os.path.getsize(path)
    return sizes


@pytest.fixture(scope="module")
def corpus():
    return [
        (name, serialize(root))
        for name, root in FactbookGenerator(scale=SCALE).documents()
    ]


@pytest.fixture(scope="module")
def oracle(corpus):
    system = Seda.from_documents(list(corpus))
    return [
        [(r.node_ids, r.content_scores, r.compactness, r.score)
         for r in system.topk.search(Query.parse(pairs), k=10)]
        for pairs in QUERY_SET
    ]


def test_split_and_rebalance_cost_tracks_affected_shards(
    corpus, oracle, tmp_path
):
    directory = str(tmp_path / "factbook.shards")

    start = time.perf_counter()
    built = ShardedSeda.from_documents(
        list(corpus), shards=SHARDS, parallel=False,
        partitioner="round-robin",
    )
    build_seconds = time.perf_counter() - start
    built.save(directory)
    before_files = _shard_files(directory)
    total_bytes = sum(before_files.values())

    system = ShardedSeda.load(directory)
    assert _canon_sharded(system) == oracle

    # -- split one shard ------------------------------------------------------
    start = time.perf_counter()
    summary = system.split(0)
    split_seconds = time.perf_counter() - start
    assert summary["committed"] is True
    assert _canon_sharded(system) == oracle

    after_files = _shard_files(directory)
    rewritten = {
        name for name in after_files
        if before_files.get(name) is None
    }
    surviving = set(before_files) & set(after_files)
    # Every unaffected shard file survived the split untouched, so the
    # operation's I/O is bounded by the affected shards' size.
    assert len(surviving) == 2 * (SHARDS - 1)
    rewritten_bytes = sum(after_files[name] for name in rewritten)
    assert rewritten_bytes < total_bytes / 2, (
        f"split rewrote {rewritten_bytes} of {total_bytes} bytes -- "
        f"more than the affected shards can explain"
    )
    assert split_seconds < build_seconds, (
        f"splitting 1 of {SHARDS} shards took {split_seconds:.3f}s, "
        f"slower than the {build_seconds:.3f}s full build -- the cost "
        f"is not tracking the affected shards"
    )

    # -- rebalance a handful of documents -------------------------------------
    # A *bounded* plan -- a few documents between two shards -- is the
    # case the affected-shards claim covers (a full reshuffle, like
    # propose_rebalance right after a split, legitimately touches
    # every shard and costs accordingly).
    donor = max(range(system.shard_count),
                key=lambda i: len(system._shard_docs[i]))
    receiver = min(range(system.shard_count),
                   key=lambda i: len(system._shard_docs[i]))
    plan = {"moves": {g: receiver
                      for g in system._shard_docs[donor][:8]}}
    start = time.perf_counter()
    summary = system.rebalance(plan)
    rebalance_seconds = time.perf_counter() - start
    assert summary["committed"] is True
    assert summary["moved_documents"] >= 1
    assert _canon_sharded(system) == oracle
    assert rebalance_seconds < build_seconds, (
        f"rebalancing {summary['moved_documents']} documents took "
        f"{rebalance_seconds:.3f}s, slower than the "
        f"{build_seconds:.3f}s full build"
    )

    # -- epilogue: the directory is sound and cold-starts identically ---------
    report = fsck_report(directory)
    assert report["ok"], report["problems"]
    assert _canon_sharded(ShardedSeda.load(directory)) == oracle
    skew = skew_report(directory)

    _record("topology_ops", {
        "scale": SCALE,
        "documents": len(corpus),
        "shards": SHARDS,
        "full_build_seconds": round(build_seconds, 3),
        "split_seconds": round(split_seconds, 3),
        "split_rewritten_bytes": rewritten_bytes,
        "total_shard_bytes": total_bytes,
        "rebalance_seconds": round(rebalance_seconds, 3),
        "rebalance_moved_documents": summary["moved_documents"],
        "document_imbalance_after": skew["imbalance"]["documents"],
    })
    print(
        f"\n[bench-topology] scale={SCALE} shards={SHARDS} "
        f"build={build_seconds:.3f}s split={split_seconds:.3f}s "
        f"({rewritten_bytes}/{total_bytes}B rewritten) "
        f"rebalance={rebalance_seconds:.3f}s"
    )
