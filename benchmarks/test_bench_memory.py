"""MEM -- compact index memory: columnar postings, trie path tables.

The compact refactor stores postings as delta-encoded byte columns and
the path tables as a shared-prefix trie over interned label ids; the
legacy layout (``compact_indexes=False``, the seed's representation)
keeps per-term ``Posting`` object lists and per-term sets of full path
strings.  The series of interest:

* a ``sys.getsizeof``-walk byte count of both layouts on the largest
  built-in dataset, gated at >= :data:`MIN_RATIO` x reduction for the
  postings and for the path tables independently;
* the contract that makes the compact layout admissible at all:
  **byte-identical answers** from both systems on the hot query set;
* the shared-memory contract: N worker processes loading one sharded
  snapshot with ``shared_payload=True`` attach the *same* published
  segments (one physical copy of the columns) and still answer
  byte-identically to the live parent system.

Results land in ``BENCH_memory.json`` at the repo root (uploaded as a
CI artifact), so the ratio series is trackable across commits.
"""

import json
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor

from repro.compact.meminfo import deep_sizeof
from repro.datasets.factbook import FactbookGenerator
from repro.shard import ShardedSeda, publish_shared_payload
from repro.system import Seda

#: Mirrors ``conftest.FULL_SCALE`` (benchmarks/ is not a package, so
#: the conftest module is not importable here).
FULL_SCALE = float(os.environ.get("SEDA_BENCH_SCALE", "1.0"))
PIPELINE_SCALE = min(FULL_SCALE, 0.05)

#: The compact layout must shrink each measured table by at least this.
MIN_RATIO = 2.0

K = 10

#: Query 1 terms and variants (the hot set the serving benchmarks use).
QUERY_SET = [
    [("*", '"United States"'), ("trade_country", "*")],
    [("trade_country", "*"), ("percentage", "*")],
    [("*", '"United States"'), ("trade_country", "*"), ("percentage", "*")],
    [("*", "canada"), ("year", "*")],
    [("*", "germany"), ("percentage", "*")],
]

ARTIFACT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_memory.json"


def _record(section, data):
    """Merge one section into the benchmark artifact (test-order safe)."""
    payload = {}
    if ARTIFACT.exists():
        try:
            payload = json.loads(ARTIFACT.read_text(encoding="utf-8"))
        except ValueError:
            payload = {}
    payload[section] = data
    ARTIFACT.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _canonical(results):
    """Byte-exact serialization of one query's full result list."""
    return json.dumps(
        [
            [list(r.node_ids), list(r.content_scores), r.compactness,
             r.score]
            for r in results
        ],
        separators=(",", ":"),
    ).encode("utf-8")


def _build(compact):
    """A fully built system over its own full-scale Factbook parse.

    Each system parses its own collection so the two object graphs
    share nothing by identity -- ``deep_sizeof`` deduplicates by id,
    and a string shared across systems would undercount whichever
    side is measured second.
    """
    generator = FactbookGenerator(scale=FULL_SCALE)
    return Seda(
        generator.build_collection(),
        value_links=FactbookGenerator.value_link_specs(),
        compact_indexes=compact,
    )


def _legacy_path_tables(path_index):
    """The seed's path-table layout, rebuilt from the index probes:
    term -> set of path strings, tag -> set of path strings, and the
    all-paths set (strings shared across tables count once, exactly as
    the seed shared them)."""
    content = {
        term: set(path_index.paths_for_term(term))
        for term in path_index.vocabulary()
    }
    tags = {
        tag: set(path_index.paths_for_tag(tag))
        for tag in path_index.tags()
    }
    return [content, tags, set(path_index.all_paths())]


def test_compact_memory_ratio_and_equivalence():
    """>= 2x smaller postings and path tables, byte-identical answers."""
    legacy = _build(compact=False)
    compact = _build(compact=True)

    # Postings: hot Posting-object lists (+ the node-length dict they
    # need) against the encoded byte columns (+ the length arrays).
    legacy_postings = deep_sizeof(
        legacy.inverted._postings, legacy.inverted._node_lengths
    )
    compact_postings = deep_sizeof(
        compact.inverted._cols, compact.inverted._length_cols
    )

    # Path tables: the seed's dict-of-path-string-sets against the
    # encoded columns plus everything the trie owns -- label table,
    # parent/label arrays, child links, terminal set, id map.  The
    # render cache is excluded on both sides: it is a droppable memo
    # of the legacy strings, not part of either representation.
    legacy_paths = deep_sizeof(_legacy_path_tables(legacy.path_index))
    pi = compact.path_index
    trie = pi.trie
    compact_paths = deep_sizeof(
        pi._content_cols, pi._tag_cols, pi._id_map, pi._path_ids,
        trie.labels, trie._parent, trie._label, trie._children,
        trie._terminal,
    )

    posting_ratio = legacy_postings / compact_postings
    path_ratio = legacy_paths / compact_paths

    # The admissibility contract before the size gates: identical
    # answers, ties and all, from both layouts on the hot query set.
    mismatches = [
        pairs for pairs in QUERY_SET
        if _canonical(legacy.search(pairs, k=K).results)
        != _canonical(compact.search(pairs, k=K).results)
    ]

    inverted_stats = compact.inverted.estimated_memory()
    _record("compact_vs_legacy", {
        "scale": FULL_SCALE,
        "documents": len(compact.collection),
        "postings": {
            "legacy_bytes": legacy_postings,
            "compact_bytes": compact_postings,
            "ratio": round(posting_ratio, 2),
            "terms": inverted_stats["terms"],
            "posting_entries": inverted_stats["posting_entries"],
            "bytes_per_posting": round(
                inverted_stats["column_bytes"]
                / max(1, inverted_stats["posting_entries"]), 2
            ),
        },
        "path_tables": {
            "legacy_bytes": legacy_paths,
            "compact_bytes": compact_paths,
            "ratio": round(path_ratio, 2),
            "paths": len(pi),
            "trie_nodes": trie.node_count,
        },
        "queries_checked": len(QUERY_SET),
    })

    assert not mismatches, (
        f"compact and legacy layouts disagree on {len(mismatches)} queries"
    )
    assert posting_ratio >= MIN_RATIO, (
        f"postings shrank only {posting_ratio:.2f}x "
        f"({legacy_postings} -> {compact_postings} bytes); "
        f"the gate demands >= {MIN_RATIO}x"
    )
    assert path_ratio >= MIN_RATIO, (
        f"path tables shrank only {path_ratio:.2f}x "
        f"({legacy_paths} -> {compact_paths} bytes); "
        f"the gate demands >= {MIN_RATIO}x"
    )


def _attach_and_search(args):
    """Worker-process leg: attach the shared payload, answer a query.

    Returns the sidecar sources every shard actually reads from (the
    proof the columns came out of the published segments, not private
    file maps) plus the canonical answer bytes.
    """
    directory, pairs, k = args
    sharded = ShardedSeda.load(directory, shared_payload=True)
    sources = sorted(
        slot.get().inverted._sidecar.source for slot in sharded._slots
    )
    return sources, _canonical(sharded.search(pairs, k=k))


def test_sharded_workers_share_one_payload(tmp_path):
    """N loaders attach the same segments and answer byte-identically."""
    pairs = list(FactbookGenerator(scale=PIPELINE_SCALE).documents())
    sharded = ShardedSeda.from_documents(pairs, shards=2, parallel=False)
    directory = str(tmp_path / "mem.shards")
    sharded.save(directory)

    query = QUERY_SET[1]
    expected = _canonical(sharded.search(query, k=K))

    payload = publish_shared_payload(directory)
    try:
        with ProcessPoolExecutor(max_workers=2) as pool:
            reports = list(pool.map(
                _attach_and_search,
                [(directory, query, K)] * 2,
            ))
    finally:
        payload.unlink()

    sources = [report[0] for report in reports]
    _record("shared_payload", {
        "scale": PIPELINE_SCALE,
        "shards": sharded.shard_count,
        "workers": len(reports),
        "segments": sorted(payload.segment_names.values()),
        "sources": sources[0],
    })

    assert all(
        source.startswith("shm:") for report in sources for source in report
    ), f"a worker fell back to file-backed sidecars: {sources}"
    assert sources[0] == sources[1], (
        f"workers attached different segments: {sources}"
    )
    published = {f"shm:{name}" for name in payload.segment_names.values()}
    assert set(sources[0]) == published
    assert all(report[1] == expected for report in reports), (
        "a shared-payload worker answered differently from the live system"
    )
