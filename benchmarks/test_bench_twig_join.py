"""TW -- Section 7 twig processing: TwigStack vs the naive structural
join, and complete-result generation cost.
"""

import pytest

from repro.storage.node_store import NodeStore
from repro.twig.pattern import TwigPattern
from repro.twig.twigstack import NaiveTwigJoin, TwigStackJoin

TC_PATH = "/country/economy/import_partners/item/trade_country"
PCT_PATH = "/country/economy/import_partners/item/percentage"

QUERY1_TWIG = {0: "/country", 1: TC_PATH, 2: PCT_PATH}
SIBLING_TWIG = {0: TC_PATH, 1: PCT_PATH}


@pytest.fixture(scope="module")
def store(factbook_full):
    return NodeStore(factbook_full)


@pytest.mark.parametrize("twig_name,term_paths", [
    ("query1", QUERY1_TWIG),
    ("siblings", SIBLING_TWIG),
])
def test_twigstack(benchmark, factbook_full, store, twig_name, term_paths):
    joiner = TwigStackJoin(factbook_full, store)
    pattern = TwigPattern.from_paths(term_paths)
    tuples = benchmark.pedantic(
        joiner.match_tuples, args=(pattern,), rounds=2, iterations=1
    )
    print(f"\nTwigStack[{twig_name}]: {len(tuples)} matches")
    assert tuples


@pytest.mark.parametrize("twig_name,term_paths", [
    ("query1", QUERY1_TWIG),
    ("siblings", SIBLING_TWIG),
])
def test_naive_structural_join(benchmark, factbook_full, store, twig_name,
                               term_paths):
    joiner = NaiveTwigJoin(factbook_full, store)
    pattern = TwigPattern.from_paths(term_paths)
    tuples = benchmark.pedantic(
        joiner.matches, args=(pattern,), rounds=2, iterations=1
    )
    print(f"\nnaive[{twig_name}]: {len(tuples)} matches")
    assert tuples


def test_agreement_at_scale(factbook_full, store):
    """Correctness cross-check on the full collection (not timed)."""
    pattern = TwigPattern.from_paths(SIBLING_TWIG)
    fast = sorted(TwigStackJoin(factbook_full, store).match_tuples(pattern))
    slow = sorted(NaiveTwigJoin(factbook_full, store).match_tuples(pattern))
    print(f"\nboth algorithms: {len(fast)} matches")
    assert fast == slow
