"""S6 -- Section 6.1 ablation: overlap threshold vs guides vs false
positives.

The paper: "the effectiveness of the overlap threshold in reducing the
total number of generated dataguides depends on the dataset, ranging
from a factor of 3 to a factor of 100 reduction" and "the higher the
overlap threshold, the fewer the false positive connections because
there will be fewer dataguide merges."  This benchmark sweeps the
threshold and regenerates both series.
"""

import pytest

from repro.summaries.dataguide import DataguideBuilder

THRESHOLDS = (0.1, 0.2, 0.4, 0.6, 0.8)


def _sweep(collection):
    rows = []
    for threshold in THRESHOLDS:
        builder = DataguideBuilder(threshold)
        for document in collection.documents:
            builder.add_paths(document.paths(), document.doc_id)
        guide_set = builder.build()
        false_pairs, total_pairs = guide_set.false_positive_pairs()
        rate = false_pairs / total_pairs if total_pairs else 0.0
        rows.append((threshold, len(guide_set), rate))
    return rows


def test_threshold_sweep_factbook(benchmark, factbook_full):
    rows = benchmark.pedantic(
        _sweep, args=(factbook_full,), rounds=1, iterations=1
    )
    print("\nthreshold  guides  false-positive-pair rate")
    for threshold, guides, rate in rows:
        print(f"   {threshold:.1f}    {guides:6d}   {rate:.3f}")
    guides = [row[1] for row in rows]
    rates = [row[2] for row in rows]
    # Monotone shape: higher threshold -> more guides, fewer FPs.
    assert guides == sorted(guides)
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))


def test_reduction_factors_span_paper_range(benchmark, googlebase_full,
                                            recipeml_full, factbook_full):
    """Reduction factor 3x-100x across datasets at threshold 0.4."""

    def reductions():
        output = {}
        for name, collection in (
            ("google-base", googlebase_full),
            ("recipeml", recipeml_full),
            ("world-factbook", factbook_full),
        ):
            builder = DataguideBuilder(0.4)
            for document in collection.documents:
                builder.add_paths(document.paths(), document.doc_id)
            output[name] = len(collection) / builder.guide_count
        return output

    factors = benchmark.pedantic(reductions, rounds=1, iterations=1)
    print("\nreduction factors at threshold 0.4:")
    for name, factor in factors.items():
        print(f"  {name}: {factor:.1f}x")
    assert factors["world-factbook"] == pytest.approx(3.0, abs=0.5)
    assert factors["google-base"] > 100
    assert factors["recipeml"] > 1000


def test_false_positive_detection_cost(benchmark, factbook_full):
    builder = DataguideBuilder(0.4)
    for document in factbook_full.documents:
        builder.add_paths(document.paths(), document.doc_id)
    guide_set = builder.build()
    false_pairs, total_pairs = benchmark.pedantic(
        guide_set.false_positive_pairs, rounds=1, iterations=1
    )
    print(f"\nfalse pairs: {false_pairs} of {total_pairs}")
    assert total_pairs > 0
