"""DG -- Section 6.1 operational detail: dataguide load-once-from-disk.

"At query time, SEDA optimizes the use of the dataguide index by
loading it into memory only once from disk."  Measures the save and
load cost of the paper-scale Factbook dataguide set, versus rebuilding
it from the collection -- the saving that motivates the design.
"""

import pytest

from repro.summaries.dataguide import DataguideBuilder, DataguideSet


@pytest.fixture(scope="module")
def factbook_guides(factbook_full):
    builder = DataguideBuilder(0.4)
    for document in factbook_full.documents:
        builder.add_paths(document.paths(), document.doc_id)
    return builder.build()


def test_save(benchmark, factbook_guides, tmp_path_factory):
    directory = tmp_path_factory.mktemp("guides")

    counter = {"n": 0}

    def save():
        counter["n"] += 1
        path = directory / f"guides-{counter['n']}.json"
        factbook_guides.save(path)
        return path

    path = benchmark.pedantic(save, rounds=3, iterations=1)
    size_kb = path.stat().st_size / 1024
    print(f"\nsaved {len(factbook_guides)} guides, {size_kb:.0f} KiB")


def test_load_from_disk(benchmark, factbook_guides, tmp_path_factory):
    path = tmp_path_factory.mktemp("guides") / "guides.json"
    factbook_guides.save(path)
    loaded = benchmark.pedantic(
        DataguideSet.load, args=(path,), rounds=3, iterations=1
    )
    print(f"\nloaded {len(loaded)} guides")
    assert len(loaded) == len(factbook_guides)


def test_rebuild_from_collection(benchmark, factbook_full):
    """The alternative SEDA avoids: recomputing the merge per query."""

    def rebuild():
        builder = DataguideBuilder(0.4)
        for document in factbook_full.documents:
            builder.add_paths(document.paths(), document.doc_id)
        return builder.build()

    guide_set = benchmark.pedantic(rebuild, rounds=1, iterations=1)
    print(f"\nrebuilt {len(guide_set)} guides")
