"""Tokenizer for the XML parser.

Produces a flat stream of tokens -- start tags, end tags, text, CDATA,
comments, processing instructions, and document-type declarations --
leaving tree construction to :mod:`repro.xmlio.parser`.
"""

from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.escape import unescape

# Token kinds.
START_TAG = "start"
END_TAG = "end"
EMPTY_TAG = "empty"
TEXT = "text"
CDATA = "cdata"
COMMENT = "comment"
PI = "pi"
DOCTYPE = "doctype"

_WHITESPACE = set(" \t\r\n")


def _is_name_start(ch):
    """XML name start characters: letters (any script), '_', ':'."""
    return ch.isalpha() or ch in "_:"


def _is_name_char(ch):
    """XML name characters: name starts plus digits, '.', '-'."""
    return ch.isalnum() or ch in "_:.-"


class Token:
    """A single lexical token.

    ``kind`` is one of the module-level kind constants.  For tags,
    ``value`` is the tag name and ``attributes`` the attribute dict; for
    text-like tokens ``value`` is the (already unescaped) text.
    """

    __slots__ = ("kind", "value", "attributes", "position")

    def __init__(self, kind, value, attributes=None, position=0):
        self.kind = kind
        self.value = value
        self.attributes = attributes
        self.position = position

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


class Lexer:
    """Single-pass XML tokenizer over an in-memory string."""

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- error helpers ----------------------------------------------------

    def _error(self, message, position=None):
        position = self.pos if position is None else position
        prefix = self.source[:position]
        line = prefix.count("\n") + 1
        column = position - (prefix.rfind("\n") + 1) + 1
        raise XMLSyntaxError(message, position=position, line=line, column=column)

    # -- character helpers -------------------------------------------------

    def _peek(self):
        if self.pos < self.length:
            return self.source[self.pos]
        return ""

    def _expect(self, literal):
        if not self.source.startswith(literal, self.pos):
            self._error(f"expected {literal!r}")
        self.pos += len(literal)

    def _skip_whitespace(self):
        while self.pos < self.length and self.source[self.pos] in _WHITESPACE:
            self.pos += 1

    def _read_name(self):
        start = self.pos
        if self.pos >= self.length or not _is_name_start(
            self.source[self.pos]
        ):
            self._error("expected an XML name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.source[self.pos]):
            self.pos += 1
        return self.source[start : self.pos]

    # -- token readers ------------------------------------------------------

    def tokens(self):
        """Yield all tokens in the source."""
        while self.pos < self.length:
            if self._peek() == "<":
                yield self._read_markup()
            else:
                token = self._read_text()
                if token is not None:
                    yield token

    def _read_text(self):
        start = self.pos
        end = self.source.find("<", self.pos)
        if end == -1:
            end = self.length
        raw = self.source[start:end]
        self.pos = end
        return Token(TEXT, unescape(raw, position=start), position=start)

    def _read_markup(self):
        start = self.pos
        if self.source.startswith("<!--", self.pos):
            return self._read_comment(start)
        if self.source.startswith("<![CDATA[", self.pos):
            return self._read_cdata(start)
        if self.source.startswith("<!DOCTYPE", self.pos):
            return self._read_doctype(start)
        if self.source.startswith("<?", self.pos):
            return self._read_pi(start)
        if self.source.startswith("</", self.pos):
            return self._read_end_tag(start)
        return self._read_start_tag(start)

    def _read_comment(self, start):
        self.pos += len("<!--")
        end = self.source.find("-->", self.pos)
        if end == -1:
            self._error("unterminated comment", position=start)
        body = self.source[self.pos : end]
        if "--" in body:
            self._error("'--' not allowed inside a comment", position=start)
        self.pos = end + len("-->")
        return Token(COMMENT, body, position=start)

    def _read_cdata(self, start):
        self.pos += len("<![CDATA[")
        end = self.source.find("]]>", self.pos)
        if end == -1:
            self._error("unterminated CDATA section", position=start)
        body = self.source[self.pos : end]
        self.pos = end + len("]]>")
        return Token(CDATA, body, position=start)

    def _read_doctype(self, start):
        # SEDA data never carries a DTD subset with markup declarations,
        # so we accept a simple (possibly bracketed) DOCTYPE and skip it.
        self.pos += len("<!DOCTYPE")
        depth = 0
        while self.pos < self.length:
            ch = self.source[self.pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                body = self.source[start + len("<!DOCTYPE") : self.pos]
                self.pos += 1
                return Token(DOCTYPE, body.strip(), position=start)
            self.pos += 1
        self._error("unterminated DOCTYPE", position=start)

    def _read_pi(self, start):
        self.pos += len("<?")
        target = self._read_name()
        end = self.source.find("?>", self.pos)
        if end == -1:
            self._error("unterminated processing instruction", position=start)
        data = self.source[self.pos : end].strip()
        self.pos = end + len("?>")
        return Token(PI, target, attributes={"data": data}, position=start)

    def _read_end_tag(self, start):
        self.pos += len("</")
        name = self._read_name()
        self._skip_whitespace()
        self._expect(">")
        return Token(END_TAG, name, position=start)

    def _read_start_tag(self, start):
        self._expect("<")
        name = self._read_name()
        attributes = self._read_attributes()
        self._skip_whitespace()
        if self.source.startswith("/>", self.pos):
            self.pos += 2
            return Token(EMPTY_TAG, name, attributes=attributes, position=start)
        self._expect(">")
        return Token(START_TAG, name, attributes=attributes, position=start)

    def _read_attributes(self):
        attributes = {}
        while True:
            before = self.pos
            self._skip_whitespace()
            ch = self._peek()
            if ch in ("", ">", "/"):
                self.pos = before if ch == "" else self.pos
                return attributes
            if self.pos == before:
                self._error("expected whitespace before attribute")
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                self._error("attribute value must be quoted")
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end == -1:
                self._error("unterminated attribute value")
            raw = self.source[self.pos : end]
            if "<" in raw:
                self._error("'<' not allowed in attribute value")
            if name in attributes:
                self._error(f"duplicate attribute {name!r}")
            attributes[name] = unescape(raw, position=self.pos)
            self.pos = end + 1
