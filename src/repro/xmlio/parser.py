"""Tree construction on top of the XML lexer."""

from repro.xmlio import lexer as lx
from repro.xmlio.dom import Comment, Element, ProcessingInstruction
from repro.xmlio.errors import XMLSyntaxError, syntax_error


def parse(source, keep_comments=True, keep_pis=True, strip_whitespace=True):
    """Parse XML text into the root :class:`Element`.

    ``strip_whitespace`` drops text nodes that are purely inter-element
    whitespace (the overwhelmingly common case for data-oriented XML such
    as the World Factbook / Mondial collections).  Mixed content is kept
    verbatim.
    """
    tokens = lx.Lexer(source).tokens()
    root = None
    stack = []
    for token in tokens:
        if token.kind == lx.TEXT:
            text = token.value
            if strip_whitespace and not text.strip():
                continue
            if not stack:
                if text.strip():
                    raise syntax_error(
                        source,
                        "text content outside of the root element",
                        token.position,
                    )
                continue
            stack[-1].append(text)
        elif token.kind == lx.CDATA:
            if not stack:
                raise syntax_error(
                    source, "CDATA outside of the root element", token.position
                )
            stack[-1].append(token.value)
        elif token.kind in (lx.START_TAG, lx.EMPTY_TAG):
            element = Element(token.value, token.attributes)
            if stack:
                stack[-1].append(element)
            elif root is None:
                root = element
            else:
                raise syntax_error(
                    source, "multiple root elements", token.position
                )
            if token.kind == lx.START_TAG:
                stack.append(element)
        elif token.kind == lx.END_TAG:
            if not stack:
                raise syntax_error(
                    source,
                    f"unexpected closing tag </{token.value}>",
                    token.position,
                )
            open_element = stack.pop()
            if open_element.tag != token.value:
                raise syntax_error(
                    source,
                    f"mismatched closing tag </{token.value}>; "
                    f"expected </{open_element.tag}>",
                    token.position,
                )
        elif token.kind == lx.COMMENT:
            if keep_comments and stack:
                stack[-1].append(Comment(token.value))
        elif token.kind == lx.PI:
            if keep_pis and stack:
                stack[-1].append(
                    ProcessingInstruction(token.value, token.attributes["data"])
                )
        elif token.kind == lx.DOCTYPE:
            if stack or root is not None:
                raise syntax_error(
                    source,
                    "DOCTYPE must precede the root element",
                    token.position,
                )
        else:  # pragma: no cover - the lexer only emits the kinds above
            raise XMLSyntaxError(f"unknown token kind {token.kind}")
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if root is None:
        raise XMLSyntaxError("document has no root element")
    return root


def parse_file(path, **kwargs):
    """Parse the XML file at ``path``; see :func:`parse` for options."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read(), **kwargs)
