"""Entity escaping and unescaping for XML text and attribute values."""

from repro.xmlio.errors import XMLSyntaxError

# The five predefined XML entities.
_NAMED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value):
    """Escape ``value`` for use as XML element text content."""
    out = []
    for ch in value:
        out.append(_TEXT_ESCAPES.get(ch, ch))
    return "".join(out)


def escape_attribute(value):
    """Escape ``value`` for use inside a double-quoted attribute."""
    out = []
    for ch in value:
        out.append(_ATTR_ESCAPES.get(ch, ch))
    return "".join(out)


def resolve_entity(name, position=None):
    """Resolve an entity reference body (without ``&`` and ``;``).

    Supports the five predefined entities plus decimal (``#65``) and
    hexadecimal (``#x41``) character references.  Raises
    :class:`XMLSyntaxError` for anything else: SEDA documents never use
    DTD-defined entities, so an unknown name is always an input error.
    """
    if name in _NAMED_ENTITIES:
        return _NAMED_ENTITIES[name]
    if name.startswith("#x") or name.startswith("#X"):
        digits = name[2:]
        try:
            return chr(int(digits, 16))
        except (ValueError, OverflowError):
            raise XMLSyntaxError(
                f"invalid hexadecimal character reference &{name};",
                position=position,
            ) from None
    if name.startswith("#"):
        digits = name[1:]
        try:
            return chr(int(digits, 10))
        except (ValueError, OverflowError):
            raise XMLSyntaxError(
                f"invalid decimal character reference &{name};",
                position=position,
            ) from None
    raise XMLSyntaxError(f"unknown entity &{name};", position=position)


def unescape(value, position=None):
    """Replace all entity references in ``value`` with their characters."""
    if "&" not in value:
        return value
    out = []
    i = 0
    length = len(value)
    while i < length:
        ch = value[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = value.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError(
                "unterminated entity reference", position=position
            )
        name = value[i + 1 : end]
        out.append(resolve_entity(name, position=position))
        i = end + 1
    return "".join(out)
