"""Errors raised by the XML toolkit."""


class XMLSyntaxError(ValueError):
    """Malformed XML input.

    Carries the character ``position`` (0-based offset into the source
    text) and the ``line``/``column`` (1-based) where the problem was
    detected, so callers can produce useful diagnostics for hand-written
    test documents and generated datasets alike.
    """

    def __init__(self, message, position=None, line=None, column=None):
        location = ""
        if line is not None and column is not None:
            location = f" at line {line}, column {column}"
        elif position is not None:
            location = f" at offset {position}"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column


def syntax_error(source, message, position):
    """Build an :class:`XMLSyntaxError` with line/column from an offset."""
    prefix = source[:position]
    line = prefix.count("\n") + 1
    column = position - (prefix.rfind("\n") + 1) + 1
    return XMLSyntaxError(message, position=position, line=line, column=column)
