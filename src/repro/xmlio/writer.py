"""Serialization of DOM trees back to XML text."""

from repro.xmlio.dom import Comment, Element, ProcessingInstruction
from repro.xmlio.escape import escape_attribute, escape_text


def serialize(node, indent=None, _depth=0):
    """Render ``node`` (an :class:`Element` tree) as XML text.

    With ``indent`` (e.g. ``"  "``) the output is pretty-printed;
    pretty-printing is only applied to element-only content so that
    mixed content round-trips byte-identically.
    """
    parts = []
    _write(node, parts, indent, _depth)
    return "".join(parts)


def _write(node, parts, indent, depth):
    if isinstance(node, str):
        parts.append(escape_text(node))
        return
    if isinstance(node, Comment):
        parts.append(f"<!--{node.text}-->")
        return
    if isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"<?{node.target}{data}?>")
        return
    if not isinstance(node, Element):
        raise TypeError(f"cannot serialize {type(node).__name__}")

    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    if not node.children:
        parts.append(f"<{node.tag}{attrs}/>")
        return

    parts.append(f"<{node.tag}{attrs}>")
    element_only = indent is not None and all(
        not isinstance(child, str) for child in node.children
    )
    for child in node.children:
        if element_only:
            parts.append("\n" + indent * (depth + 1))
        _write(child, parts, indent, depth + 1)
    if element_only:
        parts.append("\n" + indent * depth)
    parts.append(f"</{node.tag}>")
