"""A small document object model for parsed XML.

The model is intentionally narrower than W3C DOM: SEDA's data-graph layer
needs elements, attributes, and text, with document order preserved.
Comments and processing instructions are kept so that serialization
round-trips, but the data-graph builder skips them.
"""


class Node:
    """Base class for all DOM nodes."""

    __slots__ = ("parent",)

    def __init__(self):
        self.parent = None


class Element(Node):
    """An XML element: tag, attributes, and ordered children.

    ``children`` holds :class:`Element`, :class:`Comment`,
    :class:`ProcessingInstruction`, and plain ``str`` text nodes, in
    document order.
    """

    __slots__ = ("tag", "attributes", "children")

    def __init__(self, tag, attributes=None, children=None):
        super().__init__()
        self.tag = tag
        self.attributes = dict(attributes) if attributes else {}
        self.children = []
        for child in children or []:
            self.append(child)

    def append(self, child):
        """Append a child node (or text string) and set its parent link."""
        if isinstance(child, Node):
            child.parent = self
        self.children.append(child)
        return child

    def element(self, tag, attributes=None, text=None):
        """Create, append, and return a child element (builder helper)."""
        child = Element(tag, attributes)
        if text is not None:
            child.append(str(text))
        return self.append(child)

    # -- navigation ------------------------------------------------------

    def iter_elements(self):
        """Yield child elements only, in document order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def iter_descendants(self):
        """Yield this element and all descendant elements, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.iter_elements())))

    def find(self, tag):
        """Return the first child element with ``tag``, or ``None``."""
        for child in self.iter_elements():
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag):
        """Return all child elements with ``tag``."""
        return [child for child in self.iter_elements() if child.tag == tag]

    # -- content ---------------------------------------------------------

    @property
    def text(self):
        """Concatenated direct text children (not descendants)."""
        return "".join(c for c in self.children if isinstance(c, str))

    def text_content(self):
        """Concatenated text of all descendants, in document order.

        This is the paper's ``content(n)``: "the concatenation of all the
        text node descendants of n by traversing parent/child edges only".
        """
        parts = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if isinstance(node, str):
                parts.append(node)
            elif isinstance(node, Element):
                stack.extend(reversed(node.children))
        return "".join(parts)

    def __repr__(self):
        return f"Element({self.tag!r}, attrs={len(self.attributes)}, children={len(self.children)})"


class Comment(Node):
    """An XML comment; preserved for round-tripping only."""

    __slots__ = ("text",)

    def __init__(self, text):
        super().__init__()
        self.text = text

    def __repr__(self):
        return f"Comment({self.text!r})"


class ProcessingInstruction(Node):
    """A processing instruction such as ``<?xml-stylesheet ...?>``."""

    __slots__ = ("target", "data")

    def __init__(self, target, data=""):
        super().__init__()
        self.target = target
        self.data = data

    def __repr__(self):
        return f"ProcessingInstruction({self.target!r}, {self.data!r})"
