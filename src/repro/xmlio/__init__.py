"""From-scratch XML toolkit used as SEDA's parsing substrate.

The paper stores XML in DB2 pureXML; this package provides the part of
that substrate SEDA actually exercises: turning XML text into a document
tree that the data-graph layer (:mod:`repro.model`) consumes.

Public surface:

* :func:`parse` / :func:`parse_file` -- parse XML text into a :class:`Element`.
* :class:`Element`, :class:`Comment`, :class:`ProcessingInstruction` -- DOM.
* :func:`serialize` -- render a DOM tree back to XML text.
* :class:`XMLSyntaxError` -- raised on malformed input.
"""

from repro.xmlio.dom import Comment, Element, ProcessingInstruction
from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.parser import parse, parse_file
from repro.xmlio.writer import serialize

__all__ = [
    "Comment",
    "Element",
    "ProcessingInstruction",
    "XMLSyntaxError",
    "parse",
    "parse_file",
    "serialize",
]
