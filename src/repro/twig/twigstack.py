"""Holistic twig joins: TwigStack [4] over Dewey-ordered streams.

TwigStack processes one sorted stream per twig-pattern node and a stack
per internal node; ``get_next`` picks the next stream to advance such
that no partial solution is ever constructed unless it is guaranteed to
extend to the leaf (optimal for ancestor-descendant twigs).  Path
solutions are emitted per leaf and merge-joined into full twig matches.

Our twig patterns carry full root-to-leaf paths on every node, so an
ancestor-descendant match between stream items is automatically a
parent-child match (each pattern edge adds exactly one path step and
Dewey levels mirror path steps one-to-one) -- no post-filtering pass is
needed.

:class:`NaiveTwigJoin` is the baseline: top-down nested-loop structural
join, used for correctness checks and the TW benchmark.
"""

import itertools

_INFINITY = float("inf")


class _Stream:
    """Cursor over a pattern node's Dewey-ordered node stream."""

    __slots__ = ("items", "pos")

    def __init__(self, items):
        self.items = items
        self.pos = 0

    @property
    def exhausted(self):
        return self.pos >= len(self.items)

    def head(self):
        return self.items[self.pos]

    def advance(self):
        self.pos += 1


def _begin_key(collection, node_id):
    """Region-encoding 'begin' emulated from (doc, dewey)."""
    node = collection.node(node_id)
    return (node.doc_id, node.dewey.components)

def _end_key(collection, node_id):
    """Region-encoding 'end': just after all of the node's descendants."""
    node = collection.node(node_id)
    return (node.doc_id, node.dewey.components + (_INFINITY,))


class TwigStackJoin:
    """Evaluate a :class:`TwigPattern` with the TwigStack algorithm."""

    def __init__(self, collection, node_store):
        self.collection = collection
        self.node_store = node_store

    # -- public API -------------------------------------------------------

    def matches(self, pattern, candidate_streams=None):
        """All twig matches as ``{pattern_node: node_id}`` dicts.

        ``candidate_streams`` optionally overrides the stream of an
        *output* node with pre-filtered node ids (e.g. the nodes that
        satisfied the full-text predicate), keyed by term index.
        """
        nodes = pattern.nodes()
        streams = {}
        for query_node in nodes:
            if (
                candidate_streams is not None
                and query_node.term_index is not None
                and query_node.term_index in candidate_streams
            ):
                ids = [
                    node_id
                    for node_id in candidate_streams[query_node.term_index]
                    if self.collection.node(node_id).path == query_node.path
                ]
                ids = self.node_store.sort_dewey(ids)
            else:
                ids = self.node_store.by_path(query_node.path)
            streams[query_node] = _Stream(ids)

        stacks = {query_node: [] for query_node in nodes}
        leaf_solutions = {
            leaf: [] for leaf in nodes if leaf.is_leaf
        }
        root = pattern.root

        while True:
            q = self._get_next(root, streams)
            if q is None:
                break
            if q.parent is not None:
                self._clean_stack(
                    stacks[q.parent], self._head_begin(q, streams)
                )
            if q.parent is None or stacks[q.parent]:
                self._clean_stack(stacks[q], self._head_begin(q, streams))
                self._push(q, streams, stacks)
                if q.is_leaf:
                    self._emit_path_solutions(q, stacks, leaf_solutions[q])
                    stacks[q].pop()
            else:
                streams[q].advance()

        return self._merge_path_solutions(pattern, leaf_solutions)

    def match_tuples(self, pattern, candidate_streams=None):
        """Matches projected to term order: list of node-id tuples."""
        outputs = pattern.output_nodes()
        tuples = []
        for match in self.matches(pattern, candidate_streams):
            tuples.append(tuple(match[node] for node in outputs))
        return tuples

    # -- TwigStack core -------------------------------------------------------

    def _head_begin(self, q, streams):
        stream = streams[q]
        if stream.exhausted:
            return None
        return _begin_key(self.collection, stream.head())

    def _head_end(self, q, streams):
        stream = streams[q]
        if stream.exhausted:
            return None
        return _end_key(self.collection, stream.head())

    def _get_next(self, q, streams):
        """The next pattern node to act on, or ``None`` when q's subtree
        can make no further progress.

        A leaf is *dead* once its stream is exhausted; an internal node
        is dead once every child subtree is.  A dead child subtree
        cannot contribute to new solutions (streams are in document
        order, so no future ancestor can contain an already-consumed
        descendant), but live siblings must keep advancing so that
        their path solutions under already-stacked ancestors are still
        emitted and merged.
        """
        if q.is_leaf:
            return None if streams[q].exhausted else q
        alive = []
        any_dead = False
        for child in q.children:
            descendant = self._get_next(child, streams)
            if descendant is None:
                any_dead = True
            elif descendant is not child:
                return descendant
            else:
                alive.append(child)
        if not alive:
            return None
        begins = {child: self._head_begin(child, streams) for child in alive}
        n_min = min(alive, key=lambda child: begins[child])
        if any_dead:
            # No new q-instances are useful; just drain the live branch.
            return n_min
        n_max = max(alive, key=lambda child: begins[child])
        # Skip q-stream items that end before the max child begins: they
        # cannot contain all child heads.
        while (
            not streams[q].exhausted
            and self._head_end(q, streams) < begins[n_max]
        ):
            streams[q].advance()
        if (
            not streams[q].exhausted
            and self._head_begin(q, streams) < begins[n_min]
        ):
            return q
        return n_min

    def _clean_stack(self, stack, begin):
        """Pop entries that are not ancestors of the next item."""
        while stack and not self._contains(stack[-1][0], begin):
            stack.pop()

    def _contains(self, node_id, begin):
        if begin is None:
            return False
        return (
            _begin_key(self.collection, node_id) < begin
            < _end_key(self.collection, node_id)
        )

    def _push(self, q, streams, stacks):
        node_id = streams[q].head()
        streams[q].advance()
        parent_size = len(stacks[q.parent]) if q.parent is not None else 0
        stacks[q].append((node_id, parent_size))

    def _emit_path_solutions(self, leaf, stacks, out):
        """Emit all root-to-leaf solutions ending at the new leaf entry.

        Stack entries record a pointer into the parent stack, but since
        every in-stack entry chain is an ancestor chain, the ancestor
        test on (begin, end) keys is an equivalent and simpler filter.
        """
        chain = []
        node = leaf
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()  # root .. leaf

        def expand(index, solution):
            if index == len(chain):
                out.append(dict(solution))
                return
            q = chain[index]
            stack = stacks[q]
            if index == len(chain) - 1:
                entries = [stack[-1]]  # only the newly pushed leaf entry
            else:
                entries = stack
            for node_id, _pointer in entries:
                if index > 0:
                    parent_id = solution[chain[index - 1]]
                    begin = _begin_key(self.collection, node_id)
                    if not self._contains(parent_id, begin):
                        continue
                solution[q] = node_id
                expand(index + 1, solution)
                del solution[q]

        expand(0, {})

    # -- merging path solutions ------------------------------------------------------

    def _merge_path_solutions(self, pattern, leaf_solutions):
        """Join per-leaf path solutions on their shared prefix nodes."""
        leaves = [leaf for leaf in pattern.nodes() if leaf.is_leaf]
        if not leaves:
            return []
        merged = leaf_solutions[leaves[0]]
        merged_nodes = set(self._chain(leaves[0]))
        for leaf in leaves[1:]:
            chain_nodes = set(self._chain(leaf))
            shared = merged_nodes & chain_nodes
            by_key = {}
            for solution in leaf_solutions[leaf]:
                key = tuple(
                    solution[node]
                    for node in sorted(shared, key=lambda n: n.path)
                )
                by_key.setdefault(key, []).append(solution)
            next_merged = []
            for left in merged:
                key = tuple(
                    left[node]
                    for node in sorted(shared, key=lambda n: n.path)
                )
                for right in by_key.get(key, ()):
                    combined = dict(left)
                    combined.update(right)
                    next_merged.append(combined)
            merged = next_merged
            merged_nodes |= chain_nodes
        return merged

    @staticmethod
    def _chain(leaf):
        chain = []
        node = leaf
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain


class NaiveTwigJoin:
    """Baseline: top-down nested-loop structural join.

    For every instance of the root path, recursively enumerate child
    pattern matches among its descendants.  Quadratic in the worst case
    -- the benchmark contrast for TwigStack.
    """

    def __init__(self, collection, node_store):
        self.collection = collection
        self.node_store = node_store

    def matches(self, pattern, candidate_streams=None):
        allowed = None
        if candidate_streams is not None:
            allowed = {}
            for node in pattern.output_nodes():
                if node.term_index in candidate_streams:
                    allowed[node] = set(candidate_streams[node.term_index])

        # Pre-order assignment: each node's parent is assigned before it.
        order = pattern.nodes()
        results = []

        def extend(index, solution):
            if index == len(order):
                results.append(dict(solution))
                return
            query_node = order[index]
            parent_id = solution[query_node.parent]
            for candidate in self.node_store.descendants_in_path(
                parent_id, query_node.path
            ):
                if candidate == parent_id:
                    continue
                if (
                    allowed is not None
                    and query_node in allowed
                    and candidate not in allowed[query_node]
                ):
                    continue
                solution[query_node] = candidate
                extend(index + 1, solution)
                del solution[query_node]

        root = pattern.root
        for root_id in self.node_store.by_path(root.path):
            if (
                allowed is not None
                and root in allowed
                and root_id not in allowed[root]
            ):
                continue
            extend(1, {root: root_id})
        return results

    def match_tuples(self, pattern, candidate_streams=None):
        outputs = pattern.output_nodes()
        return [
            tuple(match[node] for node in outputs)
            for match in self.matches(pattern, candidate_streams)
        ]
