"""Complete result generation (Section 7, Figure 3).

Once the user has fixed a context path per term and selected the
relevant connections, SEDA materializes the *entire* result set (not
just top-k).  The connection graph is partitioned into twigs along the
chosen tree connections; each twig runs through the holistic twig join
with the full-text hit lists as leaf streams; twig outputs are combined
by cross-twig joins (for link connections) or a connectivity-checked
product (when the user chose no connection between two groups).

The output is a :class:`ResultTable` with the Figure 3 schema: two
columns per query term -- the Dewey node reference and the node's full
root-to-leaf path.
"""

import itertools

from repro.query.term import PathContext, QueryTerm
from repro.summaries.connection import LinkConnection, TreeConnection
from repro.twig.joins import CrossTwigJoiner
from repro.twig.pattern import TwigNode, TwigPattern
from repro.twig.twigstack import TwigStackJoin


class ResultTable:
    """The full query result R(q): ``<nodeid1, path1, ..., pathm>``."""

    def __init__(self, query, term_paths, rows, collection):
        self.query = query
        self.term_paths = term_paths
        self.rows = rows  # list of node-id tuples in term order
        self.collection = collection

    @property
    def schema(self):
        columns = []
        for index in range(len(self.query.terms)):
            columns.append(f"nodeid{index + 1}")
            columns.append(f"path{index + 1}")
        return columns

    def display_rows(self):
        """Rows rendered like Figure 3(a): Dewey refs and paths."""
        rendered = []
        for row in self.rows:
            cells = []
            for node_id in row:
                node = self.collection.node(node_id)
                cells.append(f"n{node.dewey}")
                cells.append(node.path)
            rendered.append(tuple(cells))
        return rendered

    def column_paths(self, index):
        """Distinct paths bound in the ``index``-th term column."""
        return {
            self.collection.node(row[index]).path for row in self.rows
        }

    def values(self, index):
        """Node values of the ``index``-th term column, row order."""
        return [
            self.collection.node(row[index]).value for row in self.rows
        ]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class CompleteResultGenerator:
    """Materializes R(q) for chosen contexts and connections."""

    def __init__(self, collection, graph, node_store, matcher, max_hops=12):
        self.collection = collection
        self.graph = graph
        self.node_store = node_store
        self.matcher = matcher
        self.max_hops = max_hops
        self._twig_join = TwigStackJoin(collection, node_store)
        self._cross_join = CrossTwigJoiner(collection, graph, max_hops)

    # -- public API -----------------------------------------------------------

    def generate(self, query, term_paths, connections=()):
        """Compute the complete result table.

        ``term_paths`` maps term index -> the chosen context path.
        ``connections`` is a list of ``((i, j), Connection)`` pairs the
        user selected; tree connections group terms into one twig (and
        constrain the instance LCA), link connections become cross-twig
        joins.  Terms not mentioned in ``term_paths`` raise: a complete
        result requires every term to be disambiguated (Figure 6's flow
        reaches this stage only after context selection).
        """
        term_count = len(query.terms)
        missing = [i for i in range(term_count) if i not in term_paths]
        if missing:
            raise ValueError(
                f"complete results need a chosen context for every term; "
                f"missing term indexes: {missing}"
            )

        candidates = self._candidate_streams(query, term_paths)
        if any(not candidates[i] for i in range(term_count)):
            return ResultTable(query, dict(term_paths), [], self.collection)

        components = self._components(term_count, connections)
        partials = []
        for component in components:
            tuples = self._evaluate_twig(
                component, term_paths, connections, candidates
            )
            partials.append((tuples, component))

        rows, order = self._combine(partials, connections)
        # Re-project to query term order and drop tuples with repeats.
        final_rows = []
        for row in rows:
            projected = tuple(
                row[order.index(i)] for i in range(term_count)
            )
            if len(set(projected)) == len(projected):
                final_rows.append(projected)
        final_rows = sorted(set(final_rows))
        return ResultTable(query, dict(term_paths), final_rows, self.collection)

    # -- pieces -------------------------------------------------------------------

    def _candidate_streams(self, query, term_paths):
        """Per-term Dewey-ordered full-text hit lists, context-restricted."""
        candidates = {}
        for index, term in enumerate(query.terms):
            restricted = QueryTerm(
                PathContext(term_paths[index]), term.search, label=term.label
            )
            candidates[index] = self.matcher.candidates(restricted)
        return candidates

    def _components(self, term_count, connections):
        """Union-find over tree connections -> twig components."""
        parent = list(range(term_count))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for (i, j), connection in connections:
            if isinstance(connection, TreeConnection):
                parent[find(i)] = find(j)
        groups = {}
        for index in range(term_count):
            groups.setdefault(find(index), []).append(index)
        return sorted(groups.values())

    def _evaluate_twig(self, component, term_paths, connections, candidates):
        """Twig evaluation for one component; returns node-id tuples in
        ``component`` term order."""
        if len(component) == 1:
            index = component[0]
            return [(node_id,) for node_id in candidates[index]]

        paths = {index: term_paths[index] for index in component}
        tree_constraints = [
            ((i, j), connection)
            for (i, j), connection in connections
            if isinstance(connection, TreeConnection)
            and i in component and j in component
        ]
        pattern = self._build_twig(paths, tree_constraints)
        tuples = self._twig_join.match_tuples(
            pattern, candidate_streams=candidates
        )
        ordered_terms = pattern.term_indexes()
        # Project to component order.
        projection = [ordered_terms.index(i) for i in component]
        projected = [
            tuple(row[p] for p in projection) for row in tuples
        ]
        # Enforce exact instance-LCA constraints from the connections.
        for (i, j), connection in tree_constraints:
            pos_i = component.index(i)
            pos_j = component.index(j)
            projected = [
                row for row in projected
                if self._lca_path(row[pos_i], row[pos_j])
                == connection.lca_path
            ]
        return projected

    def _lca_path(self, node_a, node_b):
        first = self.collection.node(node_a)
        second = self.collection.node(node_b)
        if first.doc_id != second.doc_id:
            return None
        lca = first.dewey.common_ancestor(second.dewey)
        lca_node = self.collection.node_by_ref(first.doc_id, lca)
        return lca_node.path if lca_node is not None else None

    def _build_twig(self, term_paths, tree_constraints):
        """Prefix-merge term paths into a twig, honoring LCA split points.

        Two terms' chains may share a pattern node at depth ``d`` only
        if every chosen tree connection between them has its LCA at
        depth >= d... inverted: sharing below the chosen LCA depth is
        disallowed, so e.g. the "cousin" connection (LCA at
        ``import_partners``) forces separate ``item`` branches while the
        "sibling" connection (LCA at ``item``) shares one.
        """
        merge_depth = {}
        for (i, j), connection in tree_constraints:
            depth = connection.lca_path.count("/")
            key = frozenset((i, j))
            merge_depth[key] = min(merge_depth.get(key, depth), depth)

        roots = {path.split("/")[1] for path in term_paths.values()}
        if len(roots) != 1:
            raise ValueError(
                "terms grouped into one twig must share a document root; "
                f"got {sorted(roots)}"
            )
        root_path = f"/{next(iter(roots))}"
        root = TwigNode(root_path)
        node_terms = {root: set()}

        for index in sorted(term_paths):
            path = term_paths[index]
            if path == root_path:
                if root.term_index is not None:
                    raise ValueError(
                        "at most one query term may bind the twig root"
                    )
                root.term_index = index
                node_terms[root].add(index)
                continue
            steps = path.split("/")[1:]
            current = root
            node_terms[root].add(index)
            prefix = root_path
            for depth, step in enumerate(steps[1:-1], start=2):
                prefix = f"{prefix}/{step}"
                shared = None
                for child in current.children:
                    if child.path != prefix or child.term_index is not None:
                        continue
                    conflict = any(
                        merge_depth.get(frozenset((index, other)), 10**9)
                        < depth
                        for other in node_terms[child]
                    )
                    if not conflict:
                        shared = child
                        break
                if shared is None:
                    shared = current.add_child(TwigNode(prefix))
                    node_terms[shared] = set()
                node_terms[shared].add(index)
                current = shared
            leaf = current.add_child(TwigNode(path, index))
            node_terms[leaf] = {index}
        return TwigPattern(root)

    def _combine(self, partials, connections):
        """Cross-twig combination; returns (rows, term order)."""
        link_connections = [
            ((i, j), connection)
            for (i, j), connection in connections
            if isinstance(connection, LinkConnection)
        ]
        rows, order = partials[0]
        order = list(order)
        remaining = [(tuples, list(terms)) for tuples, terms in partials[1:]]
        while remaining:
            progressed = False
            for pos, (tuples, terms) in enumerate(remaining):
                link = self._find_link(order, terms, link_connections)
                if link is None and len(remaining) > 1:
                    continue
                if link is not None:
                    (left_term, right_term), connection = link
                    rows = self._cross_join.join(
                        rows, order, tuples, terms, connection,
                        left_term, right_term,
                    )
                    order = order + terms
                else:
                    rows = self._cross_join.connectivity_product(rows, tuples)
                    order = order + terms
                remaining.pop(pos)
                progressed = True
                break
            if not progressed:
                tuples, terms = remaining.pop(0)
                rows = self._cross_join.connectivity_product(rows, tuples)
                order = order + terms
        return rows, order

    def _find_link(self, left_terms, right_terms, link_connections):
        """A link connection bridging the two term groups, if any.

        Returns ``((left_term, right_term), connection)``; instance
        matching is orientation-tolerant so either side may be "left".
        """
        for (i, j), connection in link_connections:
            if i in left_terms and j in right_terms:
                return (i, j), connection
            if j in left_terms and i in right_terms:
                return (j, i), connection
        return None
