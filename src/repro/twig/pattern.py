"""Query pattern trees (twigs).

A twig is a rooted tree of :class:`TwigNode` objects; each node carries
the full root-to-leaf path it matches, so structural containment can
be checked with Dewey prefixes alone.  Twigs are built from the query
terms' chosen context paths by prefix-merging the paths into one tree
and recording, per term, which node returns its bindings.
"""


class TwigNode:
    """One node of a twig pattern.

    ``path`` is the full root-to-path-prefix for this node; ``term_index``
    is the query-term whose bindings this node produces (``None`` for
    purely structural internal nodes).
    """

    __slots__ = ("path", "tag", "term_index", "children", "parent")

    def __init__(self, path, term_index=None):
        self.path = path
        self.tag = path.rsplit("/", 1)[-1]
        self.term_index = term_index
        self.children = []
        self.parent = None

    def add_child(self, child):
        child.parent = self
        self.children.append(child)
        return child

    def iter_subtree(self):
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    @property
    def is_leaf(self):
        return not self.children

    def __repr__(self):
        term = f", term={self.term_index}" if self.term_index is not None else ""
        return f"TwigNode({self.path!r}{term})"


class TwigPattern:
    """A twig: the prefix-tree of a set of output paths."""

    def __init__(self, root):
        self.root = root

    @classmethod
    def from_paths(cls, term_paths):
        """Build a twig from ``{term_index: path}``.

        All paths must share the same root step (they come from
        documents matched by one connection graph component).  Internal
        prefix nodes are created as needed; when two terms share a full
        path, each gets its own pattern node under the same parent so
        that bindings remain per-term.
        """
        if not term_paths:
            raise ValueError("a twig needs at least one output path")
        roots = {path.split("/")[1] for path in term_paths.values()}
        if len(roots) != 1:
            raise ValueError(
                f"twig paths must share a root element, got {sorted(roots)}"
            )
        root_tag = next(iter(roots))
        root_path = f"/{root_tag}"
        root_terms = [
            index for index, path in term_paths.items() if path == root_path
        ]
        root = TwigNode(
            root_path, root_terms[0] if root_terms else None
        )
        by_prefix = {root_path: root}
        for term_index, path in sorted(term_paths.items()):
            if path == root_path:
                if root.term_index is None:
                    root.term_index = term_index
                elif root.term_index != term_index:
                    # Second term bound to the very root: dedicated child
                    # nodes are impossible (the root has no parent), so
                    # such queries must bind at most one term to the root.
                    raise ValueError(
                        "at most one query term may bind the twig root"
                    )
                continue
            steps = path.split("/")[1:]
            prefix = root_path
            node = root
            for step in steps[1:-1]:
                prefix = f"{prefix}/{step}"
                existing = by_prefix.get(prefix)
                if existing is None:
                    existing = node.add_child(TwigNode(prefix))
                    by_prefix[prefix] = existing
                node = existing
            # The leaf (output) node: always a dedicated node per term.
            leaf = node.add_child(TwigNode(path, term_index))
        return cls(root)

    # -- inspection --------------------------------------------------------

    def nodes(self):
        return list(self.root.iter_subtree())

    def output_nodes(self):
        """Pattern nodes bound to query terms, in term order."""
        outputs = [
            node for node in self.root.iter_subtree()
            if node.term_index is not None
        ]
        outputs.sort(key=lambda node: node.term_index)
        return outputs

    def term_indexes(self):
        return [node.term_index for node in self.output_nodes()]

    def __repr__(self):
        return f"TwigPattern(nodes={len(self.nodes())}, outputs={self.term_indexes()})"
