"""Cross-twig joins (Section 7).

Edges of the connection graph that are not parent/child edges within a
document become *cross-twig joins*: after each twig query is evaluated,
its result tuples are joined "according to the cross-twig join edges
... similar to a join in an RDBMS".

The join predicate is connection instantiation: the bound nodes of the
two twigs must realize the user-chosen :class:`LinkConnection`.  A
document-level hash prefilter keeps the nested verification loop from
going quadratic: only tuples whose documents are bridged by a matching
link edge are ever compared.
"""

import collections


class CrossTwigJoiner:
    """Joins twig result tuples along link connections."""

    def __init__(self, collection, graph, max_hops=12):
        self.collection = collection
        self.graph = graph
        self.max_hops = max_hops

    def join(self, left_tuples, left_terms, right_tuples, right_terms,
             connection, left_term, right_term):
        """Join two twig result sets along one link connection.

        ``left_tuples`` holds node-id tuples ordered by ``left_terms``
        (a list of term indexes), similarly for the right side;
        ``connection`` relates ``left_term`` (in the left twig) with
        ``right_term`` (in the right twig).  Returns combined tuples
        ordered by ``left_terms + right_terms``.
        """
        left_pos = left_terms.index(left_term)
        right_pos = right_terms.index(right_term)

        bridge = self._bridge_docs(connection)
        right_by_doc = collections.defaultdict(list)
        for row in right_tuples:
            doc_id = self.collection.node(row[right_pos]).doc_id
            right_by_doc[doc_id].append(row)

        joined = []
        for left_row in left_tuples:
            left_node = left_row[left_pos]
            left_doc = self.collection.node(left_node).doc_id
            for right_doc in bridge.get(left_doc, ()):
                for right_row in right_by_doc.get(right_doc, ()):
                    if connection.matches_instance(
                        self.collection, self.graph,
                        left_node, right_row[right_pos],
                        max_hops=self.max_hops,
                    ):
                        joined.append(left_row + right_row)
        return joined

    def _bridge_docs(self, connection):
        """doc -> docs reachable via edges matching the connection spec."""
        bridge = collections.defaultdict(set)
        for edge in self.graph.edges:
            if edge.kind != connection.kind or edge.label != connection.label:
                continue
            source = self.collection.node(edge.source_id)
            target = self.collection.node(edge.target_id)
            if {source.path, target.path} != {
                connection.source_path, connection.target_path
            }:
                continue
            bridge[source.doc_id].add(target.doc_id)
            bridge[target.doc_id].add(source.doc_id)
        return bridge

    def connectivity_product(self, left_tuples, right_tuples):
        """Fallback combination when no connection was chosen: keep the
        Definition 4 guarantee by testing graph connectivity between the
        two partial tuples."""
        joined = []
        for left_row in left_tuples:
            for right_row in right_tuples:
                if self.graph.connects(
                    set(left_row) | set(right_row), max_hops=self.max_hops
                ):
                    joined.append(left_row + right_row)
        return joined
