"""Complete result computation via holistic twig joins (Section 7).

"We partition each connection graph into twigs.  Each twig is a query
pattern tree, which includes the connection nodes and parent/child
edges within the same document.  The remaining edges are called
cross-twig joins...  We retrieve the data nodes from the full-text
search results in Dewey ID order, which can be directly used by the
XML twig processing.  After we compute the results of each twig query,
we join the results from different twigs according to the cross-twig
join edges."

* :class:`TwigPattern` / :class:`TwigNode` -- query pattern trees.
* :class:`TwigStackJoin` -- the holistic TwigStack algorithm [4] over
  Dewey-ordered streams.
* :class:`CrossTwigJoiner` -- hash joins across twigs along link edges.
* :class:`CompleteResultGenerator` -- end-to-end R(q) materialization
  honoring the user's chosen contexts and connections.
* :class:`ResultTable` -- the Figure 3 result relation
  ``<nodeid1, path1, ..., nodeidm, pathm>``.
"""

from repro.twig.complete import CompleteResultGenerator, ResultTable
from repro.twig.joins import CrossTwigJoiner
from repro.twig.pattern import TwigNode, TwigPattern
from repro.twig.twigstack import TwigStackJoin

__all__ = [
    "CompleteResultGenerator",
    "CrossTwigJoiner",
    "ResultTable",
    "TwigNode",
    "TwigPattern",
    "TwigStackJoin",
]
