"""SEDA data model: Dewey IDs, data nodes, documents, and the data graph.

Implements Section 3 of the paper (Definitions 2-4): XML collections are
modeled as a directed graph whose nodes are element and attribute nodes
and whose edges capture four relationship kinds -- parent/child, IDREF,
XLink/XPointer, and value-based (primary key / foreign key).
"""

from repro.model.collection import DocumentCollection
from repro.model.dewey import DeweyID
from repro.model.document import Document
from repro.model.graph import DataGraph, Edge, EdgeKind
from repro.model.links import LinkDiscoverer, ValueLinkSpec
from repro.model.node import DataNode, NodeKind

__all__ = [
    "DataGraph",
    "DataNode",
    "DeweyID",
    "Document",
    "DocumentCollection",
    "Edge",
    "EdgeKind",
    "LinkDiscoverer",
    "NodeKind",
    "ValueLinkSpec",
]
