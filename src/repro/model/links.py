"""Discovery of non-tree edges: IDREF, XLink/XPointer, and value links.

The paper assumes value-based relationships "are provided as input into
the system" (Section 3) and notes that ID/IDREF and XLink edges require
preprocessing of the XML data.  This module is that preprocessing step:

* :meth:`LinkDiscoverer.discover_idrefs` wires ``idref``/``idrefs``
  attributes to the elements carrying the matching ``id`` attribute.
* :meth:`LinkDiscoverer.discover_xlinks` resolves ``xlink:href``-style
  fragment pointers, within and across documents.
* :meth:`LinkDiscoverer.apply_value_links` materializes caller-provided
  primary-key/foreign-key specs (:class:`ValueLinkSpec`) by joining on
  equal content, mirroring Definition 2(4).
"""

import collections

from repro.model.graph import EdgeKind

ID_ATTRIBUTE_NAMES = frozenset({"id", "ID", "xml:id"})
IDREF_ATTRIBUTE_NAMES = frozenset({"idref", "IDREF", "ref"})
IDREFS_ATTRIBUTE_NAMES = frozenset({"idrefs", "IDREFS", "refs"})
XLINK_ATTRIBUTE_NAMES = frozenset({"xlink:href", "href", "xpointer"})


class ValueLinkSpec:
    """A caller-provided value-based relationship (Definition 2, item 4).

    ``primary_path`` identifies primary-key nodes; ``foreign_path``
    identifies foreign-key nodes.  An edge is added from every foreign
    node to every primary node whose content is equal.  ``label`` names
    the relationship (cf. the dashed, labeled edges of Figure 1).
    """

    __slots__ = ("primary_path", "foreign_path", "label")

    def __init__(self, primary_path, foreign_path, label=None):
        self.primary_path = primary_path
        self.foreign_path = foreign_path
        self.label = label

    def to_dict(self):
        """Snapshot form, so future incremental loads can re-apply specs."""
        return {
            "primary": self.primary_path,
            "foreign": self.foreign_path,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["primary"], payload["foreign"], payload["label"])

    def __repr__(self):
        return (
            f"ValueLinkSpec(primary={self.primary_path!r}, "
            f"foreign={self.foreign_path!r}, label={self.label!r})"
        )


class LinkDiscoverer:
    """Adds non-tree edges to a :class:`~repro.model.graph.DataGraph`.

    With ``skip_existing=True`` the discoverer seeds a seen-set from the
    graph's current edges and silently skips duplicates, which makes
    discovery re-runnable after documents are added incrementally
    (:meth:`repro.system.Seda.add_documents`).
    """

    def __init__(self, graph, skip_existing=False):
        self.graph = graph
        self.collection = graph.collection
        self._seen = None
        if skip_existing:
            self._seen = {
                (edge.source_id, edge.target_id, edge.kind, edge.label)
                for edge in graph.edges
            }

    def _add(self, source_id, target_id, kind, label):
        """Add one edge, honoring the optional dedup mode; None if skipped."""
        if self._seen is not None:
            key = (source_id, target_id, kind, label)
            if key in self._seen:
                return None
            self._seen.add(key)
        return self.graph.add_edge(source_id, target_id, kind, label=label)

    # -- ID / IDREF ---------------------------------------------------------

    def _id_table(self):
        """Map attribute id value -> element node id (collection-wide)."""
        table = {}
        for node in self.collection.iter_nodes():
            if not node.is_attribute:
                continue
            name = node.tag.lstrip("@")
            if name in ID_ATTRIBUTE_NAMES and node.direct_text:
                # First definition wins, as in DTD ID semantics.
                table.setdefault(node.direct_text, node.parent_id)
        return table

    def discover_idrefs(self):
        """Wire idref/idrefs attributes to their targets; returns edges."""
        ids = self._id_table()
        edges = []
        for node in self.collection.iter_nodes():
            if not node.is_attribute or not node.direct_text:
                continue
            name = node.tag.lstrip("@")
            if name in IDREF_ATTRIBUTE_NAMES:
                values = [node.direct_text]
            elif name in IDREFS_ATTRIBUTE_NAMES:
                values = node.direct_text.split()
            else:
                continue
            for value in values:
                target = ids.get(value)
                if target is not None and target != node.parent_id:
                    edge = self._add(
                        node.parent_id, target, EdgeKind.IDREF, name
                    )
                    if edge is not None:
                        edges.append(edge)
        return edges

    # -- XLink / XPointer --------------------------------------------------------

    def discover_xlinks(self):
        """Resolve fragment-style XLink/XPointer hrefs; returns edges.

        Supported forms: ``#fragment`` (same collection, by id) and
        ``document-name#fragment``.  Anything else (external URLs) is
        ignored -- SEDA only adds edges between nodes it stores.
        """
        ids = self._id_table()
        by_doc_name = {}
        for document in self.collection.documents:
            by_doc_name[document.name] = document
        edges = []
        for node in self.collection.iter_nodes():
            if not node.is_attribute or not node.direct_text:
                continue
            name = node.tag.lstrip("@")
            if name not in XLINK_ATTRIBUTE_NAMES:
                continue
            href = node.direct_text
            if "#" not in href:
                continue
            doc_name, fragment = href.split("#", 1)
            if not fragment:
                continue
            target = None
            if not doc_name:
                target = ids.get(fragment)
            elif doc_name in by_doc_name:
                target = ids.get(fragment)
                if target is not None:
                    owner = self.collection.node(target).doc_id
                    if self.collection.document(owner).name != doc_name:
                        target = None
            if target is not None and target != node.parent_id:
                edge = self._add(node.parent_id, target, EdgeKind.XLINK, name)
                if edge is not None:
                    edges.append(edge)
        return edges

    # -- value-based links --------------------------------------------------------

    def apply_value_links(self, specs):
        """Materialize value-based PK/FK edges from ``specs``.

        Uses a hash join on node content: O(P + F) per spec where P and F
        are the node counts on the primary and foreign paths.
        """
        edges = []
        by_path = collections.defaultdict(list)
        wanted = set()
        for spec in specs:
            wanted.add(spec.primary_path)
            wanted.add(spec.foreign_path)
        for node in self.collection.iter_nodes():
            if node.path in wanted:
                by_path[node.path].append(node)
        for spec in specs:
            primaries = collections.defaultdict(list)
            for node in by_path.get(spec.primary_path, ()):
                if node.value:
                    primaries[node.value].append(node)
            for foreign in by_path.get(spec.foreign_path, ()):
                for primary in primaries.get(foreign.value, ()):
                    if primary.node_id == foreign.node_id:
                        continue
                    edge = self._add(
                        foreign.node_id,
                        primary.node_id,
                        EdgeKind.VALUE,
                        spec.label,
                    )
                    if edge is not None:
                        edges.append(edge)
        return edges

    def discover_all(self, value_specs=()):
        """Run all discovery passes; returns the list of added edges."""
        edges = self.discover_idrefs()
        edges.extend(self.discover_xlinks())
        edges.extend(self.apply_value_links(value_specs))
        return edges
