"""Data nodes: the vertices of the SEDA data graph.

A data node is an XML element or attribute (the paper treats
element-attribute relationships as a special case of parent/child,
footnote 6).  Every node carries its *context* -- the root-to-leaf path
of tag names -- and exposes its *content* -- the concatenation of all
descendant text (Section 3).
"""

import enum


class NodeKind(enum.Enum):
    """Kind of a data node."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"


class DataNode:
    """One element or attribute node inside a document.

    Identity is the global integer ``node_id`` assigned by the collection;
    position is the pair ``(doc_id, dewey)``.  ``path`` is the paper's
    ``context(n)`` as a string such as ``/country/economy/GDP`` (attribute
    nodes use an ``@`` prefix on the last step, e.g. ``/country/@name``).
    """

    __slots__ = (
        "node_id",
        "doc_id",
        "dewey",
        "tag",
        "kind",
        "path",
        "parent_id",
        "child_ids",
        "direct_text",
        "_content",
    )

    def __init__(self, node_id, doc_id, dewey, tag, kind, path, parent_id,
                 direct_text=""):
        self.node_id = node_id
        self.doc_id = doc_id
        self.dewey = dewey
        self.tag = tag
        self.kind = kind
        self.path = path
        self.parent_id = parent_id
        self.child_ids = []
        self.direct_text = direct_text
        self._content = None

    @property
    def is_attribute(self):
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def value(self):
        """The node's *own* value: its direct text, stripped.

        Distinct from the paper's ``content(n)`` (all descendant text,
        used for search): value extraction -- cube measures, dimension
        members, value-based joins -- reads the node's own text, which
        is what Figure 2's graphs display next to each node (the
        ``country`` node's value is "United States", not the whole
        document's text).
        """
        return self.direct_text.strip()

    @property
    def is_root(self):
        return self.parent_id is None

    def ref(self):
        """The ``(doc_id, dewey)`` node reference used in result tuples."""
        return (self.doc_id, self.dewey)

    def __repr__(self):
        return (
            f"DataNode(id={self.node_id}, doc={self.doc_id}, "
            f"dewey={self.dewey}, path={self.path!r})"
        )


def attribute_step(name):
    """The path step used for an attribute node named ``name``."""
    return f"@{name}"


def join_path(parent_path, step):
    """Append ``step`` to a parent context path."""
    return f"{parent_path}/{step}"
