"""Document collections: the unit SEDA operates on.

A :class:`DocumentCollection` owns all documents, assigns global node
ids, and maintains the *path table* -- the statistics over distinct
root-to-leaf paths that power context summaries (Section 5) and the
paper's dataset measurements (e.g. 1984 distinct paths in World
Factbook, ``/country`` present in 1577 of 1600 documents).
"""

from repro.model.document import Document
from repro.xmlio import parse
from repro.xmlio.dom import Element


class PathStats:
    """Statistics for one distinct root-to-leaf path.

    ``occurrences`` counts nodes with this context across the collection;
    ``document_ids`` records which documents contain the path, giving the
    document frequency reported in the paper's examples.
    """

    __slots__ = ("path", "occurrences", "document_ids")

    def __init__(self, path):
        self.path = path
        self.occurrences = 0
        self.document_ids = set()

    @property
    def document_frequency(self):
        return len(self.document_ids)

    def __repr__(self):
        return (
            f"PathStats({self.path!r}, occurrences={self.occurrences}, "
            f"docs={self.document_frequency})"
        )


class DocumentCollection:
    """All documents plus global node addressing and path statistics."""

    def __init__(self, name="collection"):
        self.name = name
        self.documents = []
        self._nodes = []
        self._path_stats = {}

    # -- construction -----------------------------------------------------

    def _allocate_id(self):
        return len(self._nodes)

    def add_document(self, source, name=None):
        """Add one document and return it.

        ``source`` may be XML text or an already-parsed
        :class:`~repro.xmlio.dom.Element`.
        """
        if isinstance(source, str):
            root = parse(source)
        elif isinstance(source, Element):
            root = source
        else:
            raise TypeError(
                "add_document expects XML text or an Element, got "
                f"{type(source).__name__}"
            )
        doc_id = len(self.documents)
        if name is None:
            name = f"doc-{doc_id}"

        def allocate():
            self._nodes.append(None)  # reserve the slot; filled below
            return len(self._nodes) - 1

        document = Document.from_element(doc_id, name, root, allocate)
        return self._ingest(document)

    def _ingest(self, document):
        """Register a freshly built document's nodes and path stats."""
        path_stats = self._path_stats
        for node in document.nodes:
            self._nodes[node.node_id] = node
            if path_stats is None:
                continue  # stats deferred; _stats_table rebuilds in full
            stats = path_stats.get(node.path)
            if stats is None:
                stats = path_stats[node.path] = PathStats(node.path)
            stats.occurrences += 1
            stats.document_ids.add(document.doc_id)
        self.documents.append(document)
        return document

    def _stats_table(self):
        """The path-statistics map, rebuilt on demand after a restore."""
        if self._path_stats is None:
            path_stats = self._path_stats = {}
            for document in self.documents:
                doc_id = document.doc_id
                for node in document.nodes:
                    stats = path_stats.get(node.path)
                    if stats is None:
                        stats = path_stats[node.path] = PathStats(node.path)
                    stats.occurrences += 1
                    stats.document_ids.add(doc_id)
        return self._path_stats

    def add_documents(self, sources):
        """Add many documents; returns the list of created documents."""
        return [self.add_document(source) for source in sources]

    # -- snapshot serialization ----------------------------------------------

    def to_dict(self):
        """Snapshot form: columnar document records over a shared tag table."""
        tag_ids = {}
        documents = [document.to_dict(tag_ids) for document in self.documents]
        return {
            "name": self.name,
            "tag_table": list(tag_ids),
            "documents": documents,
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a collection from :meth:`to_dict`, without parsing XML.

        Node ids are re-assigned in document order, which reproduces the
        original ids exactly (the collection allocates sequentially), so
        indexes and graph edges serialized by node id stay valid.
        """
        from repro.model.node import NodeKind

        collection = cls(name=payload["name"])
        collection._path_stats = None  # rebuilt lazily by _stats_table
        tag_table = payload["tag_table"]
        kind_table = [
            NodeKind.ATTRIBUTE if tag[0] == "@" else NodeKind.ELEMENT
            for tag in tag_table
        ]
        nodes = collection._nodes
        for record in payload["documents"]:
            doc_id = len(collection.documents)
            document = Document.from_dict(
                doc_id, record, len(nodes), tag_table, kind_table
            )
            nodes.extend(document.nodes)
            collection.documents.append(document)
        return collection

    # -- node access ---------------------------------------------------------

    def node(self, node_id):
        """The :class:`DataNode` with global id ``node_id``."""
        try:
            node = self._nodes[node_id]
        except (IndexError, TypeError):
            node = None
        if node is None:
            raise KeyError(f"no node with id {node_id!r}")
        return node

    def node_by_ref(self, doc_id, dewey):
        """Resolve a ``(doc_id, dewey)`` reference to a node, or ``None``."""
        if not 0 <= doc_id < len(self.documents):
            return None
        return self.documents[doc_id].node_at(dewey)

    def document(self, doc_id):
        return self.documents[doc_id]

    def iter_nodes(self):
        """All nodes across all documents, in (doc, document-order)."""
        for document in self.documents:
            yield from document.nodes

    def content(self, node_id):
        """The paper's ``content(n)``: concatenated descendant text.

        Computed on demand and cached per node; leaf nodes (the common
        case for query matches) resolve to their direct text immediately.
        """
        node = self.node(node_id)
        if node._content is not None:
            return node._content
        parts = []
        stack = [node_id]
        order = []
        while stack:
            current = self.node(stack.pop())
            order.append(current)
            stack.extend(reversed(current.child_ids))
        for current in order:
            if current.direct_text:
                parts.append(current.direct_text)
        node._content = " ".join(part for part in parts if part)
        return node._content

    # -- path statistics -----------------------------------------------------

    def paths(self):
        """All distinct root-to-leaf paths, sorted."""
        return sorted(self._stats_table())

    def path_stats(self, path):
        """The :class:`PathStats` for a path, or ``None`` if unseen."""
        return self._stats_table().get(path)

    def path_count(self):
        """Number of distinct root-to-leaf paths in the collection."""
        return len(self._stats_table())

    def path_occurrences(self, path):
        stats = self._stats_table().get(path)
        return stats.occurrences if stats else 0

    def path_document_frequency(self, path):
        stats = self._stats_table().get(path)
        return stats.document_frequency if stats else 0

    # -- sizing ------------------------------------------------------------------

    @property
    def node_count(self):
        return len(self._nodes)

    def __len__(self):
        return len(self.documents)

    def __repr__(self):
        return (
            f"DocumentCollection({self.name!r}, docs={len(self.documents)}, "
            f"nodes={self.node_count}, paths={self.path_count()})"
        )
