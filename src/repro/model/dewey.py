"""Dewey order identifiers for XML nodes.

A Dewey ID encodes a node's position as the path of 1-based child
ordinals from the document root, e.g. ``1.2.2.1`` (Tatarinov et al. [19],
cited by the paper for node references in query results).  Dewey IDs give
us document order (lexicographic comparison), ancestor/descendant tests
(prefix tests), and stable node references for the complete-result tuples
of Figure 3 -- all without touching the tree.
"""

import functools


@functools.total_ordering
class DeweyID:
    """An immutable Dewey order identifier.

    ``components`` is a tuple of 1-based ordinals; the document root is
    ``(1,)``.  Comparison order is document order: ancestors sort before
    their descendants, earlier siblings before later ones.
    """

    __slots__ = ("components",)

    def __init__(self, components):
        self.components = tuple(components)
        if not self.components:
            raise ValueError("a Dewey ID needs at least one component")
        for part in self.components:
            if not isinstance(part, int) or part < 1:
                raise ValueError(
                    f"Dewey components must be positive integers, got {part!r}"
                )

    @classmethod
    def root(cls):
        """The Dewey ID of a document root."""
        return cls((1,))

    @classmethod
    def parse(cls, text):
        """Parse the dotted string form, e.g. ``"1.2.2.1"``."""
        try:
            return cls(tuple(int(piece) for piece in text.split(".")))
        except ValueError:
            raise ValueError(f"invalid Dewey ID string {text!r}") from None

    # -- derivation --------------------------------------------------------

    def child(self, ordinal):
        """The Dewey ID of this node's ``ordinal``-th child (1-based)."""
        if ordinal < 1:
            raise ValueError("child ordinal must be >= 1")
        return DeweyID(self.components + (ordinal,))

    def parent(self):
        """The parent's Dewey ID, or ``None`` for the root."""
        if len(self.components) == 1:
            return None
        return DeweyID(self.components[:-1])

    # -- relationships -------------------------------------------------------

    @property
    def depth(self):
        """Number of components; the root has depth 1."""
        return len(self.components)

    def is_ancestor_of(self, other):
        """True when this ID is a *proper* ancestor of ``other``."""
        mine, theirs = self.components, other.components
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def is_descendant_of(self, other):
        """True when this ID is a *proper* descendant of ``other``."""
        return other.is_ancestor_of(self)

    def common_ancestor(self, other):
        """The lowest common ancestor of the two IDs (may be either one)."""
        common = []
        for a, b in zip(self.components, other.components):
            if a != b:
                break
            common.append(a)
        if not common:
            raise ValueError(
                "Dewey IDs from the same document always share the root; "
                f"{self} and {other} do not"
            )
        return DeweyID(common)

    def tree_distance(self, other):
        """Number of parent/child edges between the two nodes."""
        lca_depth = self.common_ancestor(other).depth
        return (self.depth - lca_depth) + (other.depth - lca_depth)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, DeweyID):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other):
        if not isinstance(other, DeweyID):
            return NotImplemented
        return self.components < other.components

    def __hash__(self):
        return hash(self.components)

    def __str__(self):
        return ".".join(str(part) for part in self.components)

    def __repr__(self):
        return f"DeweyID({self})"
