"""A single XML document materialized as data nodes."""

from repro.model.dewey import DeweyID
from repro.model.node import DataNode, NodeKind, attribute_step, join_path
from repro.xmlio.dom import Element


class Document:
    """One document of a collection, flattened into data nodes.

    Nodes are stored in document order; ``nodes[0]`` is the root.  The
    document also keeps a Dewey -> node map so that node references from
    query results can be resolved in O(1).
    """

    __slots__ = ("doc_id", "name", "nodes", "_by_dewey")

    def __init__(self, doc_id, name):
        self.doc_id = doc_id
        self.name = name
        self.nodes = []
        self._by_dewey = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_element(cls, doc_id, name, root, id_allocator):
        """Build a document from a parsed :class:`Element` tree.

        ``id_allocator`` is a callable returning fresh global node ids;
        the collection passes its own counter so that node ids are unique
        across documents.
        """
        if not isinstance(root, Element):
            raise TypeError("document root must be an Element")
        document = cls(doc_id, name)
        document._build(root, DeweyID.root(), None, "", id_allocator)
        return document

    def _build(self, element, dewey, parent_id, parent_path, id_allocator):
        path = join_path(parent_path, element.tag)
        node = DataNode(
            node_id=id_allocator(),
            doc_id=self.doc_id,
            dewey=dewey,
            tag=element.tag,
            kind=NodeKind.ELEMENT,
            path=path,
            parent_id=parent_id,
            direct_text=element.text,
        )
        self._register(node)
        ordinal = 0
        for name, value in element.attributes.items():
            ordinal += 1
            attr = DataNode(
                node_id=id_allocator(),
                doc_id=self.doc_id,
                dewey=dewey.child(ordinal),
                tag=attribute_step(name),
                kind=NodeKind.ATTRIBUTE,
                path=join_path(path, attribute_step(name)),
                parent_id=node.node_id,
                direct_text=value,
            )
            self._register(attr)
            node.child_ids.append(attr.node_id)
        for child in element.iter_elements():
            ordinal += 1
            child_node = self._build(
                child, dewey.child(ordinal), node.node_id, path, id_allocator
            )
            node.child_ids.append(child_node.node_id)
        return node

    def _register(self, node):
        self.nodes.append(node)
        self._by_dewey[node.dewey] = node

    # -- snapshot serialization ---------------------------------------------

    def to_dict(self, tag_ids):
        """Columnar node-record form for system snapshots.

        Nodes are stored in document order as three parallel columns:
        the parent's position within this document (-1 for the root),
        the tag as an index into the collection's shared tag table
        (``tag_ids`` maps tag -> index, extended on demand), and the
        direct text.  Dewey IDs, kinds, paths, child lists, and node
        ids are all derivable on load -- node ids are contiguous per
        document, and child ordinals are assigned in document order.
        """
        base = self.nodes[0].node_id
        parents = []
        tags = []
        texts = []
        for node in self.nodes:
            parents.append(
                -1 if node.parent_id is None else node.parent_id - base
            )
            tag_index = tag_ids.get(node.tag)
            if tag_index is None:
                tag_index = tag_ids[node.tag] = len(tag_ids)
            tags.append(tag_index)
            texts.append(node.direct_text)
        return {
            "name": self.name,
            "parents": parents,
            "tags": tags,
            "texts": texts,
        }

    @classmethod
    def from_dict(cls, doc_id, payload, base_node_id, tag_table, kind_table):
        """Rebuild a document from :meth:`to_dict` records.

        Bypasses the XML parser entirely: data nodes are materialized
        straight from the flat columns, which is what makes snapshot
        loading fast.  Node ids are assigned sequentially from
        ``base_node_id``, reproducing the collection's original
        allocation; ``kind_table`` is the per-tag :class:`NodeKind`
        list aligned with ``tag_table``.
        """
        document = cls(doc_id, payload["name"])
        nodes = document.nodes
        child_counts = []
        next_id = base_node_id
        # The loop below constructs ~every object in a restored system;
        # it bypasses DataNode/DeweyID __init__ (object.__new__ plus
        # direct slot assignment) because the per-node call overhead is
        # measurable at collection scale and the inputs are derived from
        # already-validated structures.
        new = object.__new__
        for parent_index, tag_index, direct_text in zip(
            payload["parents"], payload["tags"], payload["texts"]
        ):
            tag = tag_table[tag_index]
            dewey = new(DeweyID)
            if parent_index < 0:
                parent = None
                dewey.components = (1,)
                path = "/" + tag
                parent_id = None
            else:
                parent = nodes[parent_index]
                ordinal = child_counts[parent_index] + 1
                child_counts[parent_index] = ordinal
                dewey.components = parent.dewey.components + (ordinal,)
                path = parent.path + "/" + tag
                parent_id = parent.node_id
            node = new(DataNode)
            node.node_id = next_id
            node.doc_id = doc_id
            node.dewey = dewey
            node.tag = tag
            node.kind = kind_table[tag_index]
            node.path = path
            node.parent_id = parent_id
            node.child_ids = []
            node.direct_text = direct_text
            node._content = None
            next_id += 1
            nodes.append(node)
            child_counts.append(0)
            if parent is not None:
                parent.child_ids.append(next_id - 1)
        document._by_dewey = None  # built lazily on first node_at
        return document

    # -- access ------------------------------------------------------------

    @property
    def root(self):
        return self.nodes[0]

    def node_at(self, dewey):
        """The node with the given :class:`DeweyID`, or ``None``."""
        if self._by_dewey is None:
            # Snapshot-restored documents defer this map; most loads
            # never resolve nodes by Dewey ID, so build it on demand.
            self._by_dewey = {node.dewey: node for node in self.nodes}
        return self._by_dewey.get(dewey)

    def paths(self):
        """The set of distinct root-to-leaf context paths in this document."""
        return {node.path for node in self.nodes}

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return f"Document(id={self.doc_id}, name={self.name!r}, nodes={len(self.nodes)})"
