"""A single XML document materialized as data nodes."""

from repro.model.dewey import DeweyID
from repro.model.node import DataNode, NodeKind, attribute_step, join_path
from repro.xmlio.dom import Element


class Document:
    """One document of a collection, flattened into data nodes.

    Nodes are stored in document order; ``nodes[0]`` is the root.  The
    document also keeps a Dewey -> node map so that node references from
    query results can be resolved in O(1).
    """

    __slots__ = ("doc_id", "name", "nodes", "_by_dewey")

    def __init__(self, doc_id, name):
        self.doc_id = doc_id
        self.name = name
        self.nodes = []
        self._by_dewey = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_element(cls, doc_id, name, root, id_allocator):
        """Build a document from a parsed :class:`Element` tree.

        ``id_allocator`` is a callable returning fresh global node ids;
        the collection passes its own counter so that node ids are unique
        across documents.
        """
        if not isinstance(root, Element):
            raise TypeError("document root must be an Element")
        document = cls(doc_id, name)
        document._build(root, DeweyID.root(), None, "", id_allocator)
        return document

    def _build(self, element, dewey, parent_id, parent_path, id_allocator):
        path = join_path(parent_path, element.tag)
        node = DataNode(
            node_id=id_allocator(),
            doc_id=self.doc_id,
            dewey=dewey,
            tag=element.tag,
            kind=NodeKind.ELEMENT,
            path=path,
            parent_id=parent_id,
            direct_text=element.text,
        )
        self._register(node)
        ordinal = 0
        for name, value in element.attributes.items():
            ordinal += 1
            attr = DataNode(
                node_id=id_allocator(),
                doc_id=self.doc_id,
                dewey=dewey.child(ordinal),
                tag=attribute_step(name),
                kind=NodeKind.ATTRIBUTE,
                path=join_path(path, attribute_step(name)),
                parent_id=node.node_id,
                direct_text=value,
            )
            self._register(attr)
            node.child_ids.append(attr.node_id)
        for child in element.iter_elements():
            ordinal += 1
            child_node = self._build(
                child, dewey.child(ordinal), node.node_id, path, id_allocator
            )
            node.child_ids.append(child_node.node_id)
        return node

    def _register(self, node):
        self.nodes.append(node)
        self._by_dewey[node.dewey] = node

    # -- access ------------------------------------------------------------

    @property
    def root(self):
        return self.nodes[0]

    def node_at(self, dewey):
        """The node with the given :class:`DeweyID`, or ``None``."""
        return self._by_dewey.get(dewey)

    def paths(self):
        """The set of distinct root-to-leaf context paths in this document."""
        return {node.path for node in self.nodes}

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return f"Document(id={self.doc_id}, name={self.name!r}, nodes={len(self.nodes)})"
