"""The SEDA data graph (Definition 2).

Vertices are data nodes across all documents; edges are the four
relationship kinds of the paper:

1. parent/child (implicit from the tree structure, traversed for free),
2. IDREF links,
3. XLink/XPointer links,
4. value-based (primary key / foreign key) relationships.

Non-tree edges are stored explicitly in adjacency lists keyed by global
node id; tree edges are resolved through the owning collection.  The
graph exposes the neighborhood and bounded-shortest-path primitives that
the compactness scoring function (Section 4) and the connection summary
(Section 6) are built on.
"""

import collections
import enum


class EdgeKind(enum.Enum):
    """Relationship kinds between data nodes (Definition 2)."""

    CHILD = "child"
    IDREF = "idref"
    XLINK = "xlink"
    VALUE = "value"


class Edge:
    """A directed non-tree edge with an optional human-readable label.

    The paper's Figure 1 labels relationship edges (e.g. ``bordering``,
    ``trade partner``); labels surface in connection summaries.
    """

    __slots__ = ("source_id", "target_id", "kind", "label")

    def __init__(self, source_id, target_id, kind, label=None):
        if kind is EdgeKind.CHILD:
            raise ValueError("parent/child edges are implicit; do not add them")
        self.source_id = source_id
        self.target_id = target_id
        self.kind = kind
        self.label = label

    def __eq__(self, other):
        if not isinstance(other, Edge):
            return NotImplemented
        return (
            self.source_id == other.source_id
            and self.target_id == other.target_id
            and self.kind == other.kind
            and self.label == other.label
        )

    def __hash__(self):
        return hash((self.source_id, self.target_id, self.kind, self.label))

    def __repr__(self):
        label = f", label={self.label!r}" if self.label else ""
        return f"Edge({self.source_id}->{self.target_id}, {self.kind.value}{label})"


class DataGraph:
    """Adjacency over a :class:`~repro.model.collection.DocumentCollection`.

    The graph never copies tree structure; parent/child neighbors are
    looked up in the collection on demand, so building the graph is O(1)
    and adding E non-tree edges is O(E).
    """

    def __init__(self, collection):
        self.collection = collection
        self._out = collections.defaultdict(list)
        self._in = collections.defaultdict(list)
        self.edges = []
        #: Monotonic mutation counter.  Every change to the graph's edge
        #: set bumps it, so caches derived from the graph (document
        #: reachability, per-document edge indexes, query result caches)
        #: key on ``version`` instead of ``len(edges)`` -- an edge count
        #: cannot distinguish "one edge replaced" from "nothing changed".
        self.version = 0

    # -- construction ---------------------------------------------------------

    def add_edge(self, source_id, target_id, kind, label=None):
        """Add a directed non-tree edge between two node ids."""
        self.collection.node(source_id)  # validate both endpoints exist
        self.collection.node(target_id)
        edge = Edge(source_id, target_id, kind, label)
        self._out[source_id].append(edge)
        self._in[target_id].append(edge)
        self.edges.append(edge)
        self.version += 1
        return edge

    def bump_version(self):
        """Mark the graph as mutated without adding an edge.

        Callers that change what the graph means through a side door --
        ingesting documents (new implicit tree edges), or editing the
        edge list in place -- must bump so that version-keyed caches
        rebuild.  Returns the new version.
        """
        self.version += 1
        return self.version

    # -- snapshot serialization -------------------------------------------------

    def to_dict(self):
        """Snapshot form: every non-tree edge as node-id endpoints.

        Node ids are stable across snapshot round-trips (they are
        re-assigned deterministically in document order), so edges are
        stored by raw id rather than ``(doc, dewey)`` references.
        """
        return {
            "version": self.version,
            "edges": [
                [edge.source_id, edge.target_id, edge.kind.value, edge.label]
                for edge in self.edges
            ],
        }

    @classmethod
    def from_dict(cls, payload, collection):
        """Rebuild a graph over ``collection`` from :meth:`to_dict`.

        Skips :meth:`add_edge`'s per-edge endpoint validation: snapshot
        edges were validated when first added, and node ids restore
        deterministically alongside them.
        """
        graph = cls(collection)
        kind_of = {kind.value: kind for kind in EdgeKind}
        out_table, in_table, edges = graph._out, graph._in, graph.edges
        for source_id, target_id, kind, label in payload["edges"]:
            edge = Edge(source_id, target_id, kind_of[kind], label)
            out_table[source_id].append(edge)
            in_table[target_id].append(edge)
            edges.append(edge)
        # Pre-version snapshots carry no counter; seed it at the edge
        # count, which is what add_edge would have left behind.
        graph.version = payload.get("version", len(edges))
        return graph

    # -- neighborhoods ----------------------------------------------------------

    def tree_neighbors(self, node_id):
        """Parent and children of a node (parent/child edges, both ways)."""
        node = self.collection.node(node_id)
        neighbors = list(node.child_ids)
        if node.parent_id is not None:
            neighbors.append(node.parent_id)
        return neighbors

    def link_neighbors(self, node_id):
        """Non-tree neighbors, following links in both directions."""
        neighbors = [edge.target_id for edge in self._out.get(node_id, ())]
        neighbors.extend(edge.source_id for edge in self._in.get(node_id, ()))
        return neighbors

    def neighbors(self, node_id):
        """All neighbors, treating every edge kind as bidirectional.

        Undirected traversal matches the paper's connectedness notion in
        Definition 4: a result tuple is valid when its nodes form a
        connected subgraph, regardless of edge direction.
        """
        return self.tree_neighbors(node_id) + self.link_neighbors(node_id)

    def out_edges(self, node_id):
        return list(self._out.get(node_id, ()))

    def in_edges(self, node_id):
        return list(self._in.get(node_id, ()))

    # -- shortest paths ------------------------------------------------------------

    def shortest_path(self, source_id, target_id, max_hops=None):
        """Shortest undirected node-id path, or ``None`` if unreachable.

        ``max_hops`` bounds the BFS frontier; compactness scoring uses a
        small bound because distant nodes contribute negligible score and
        unbounded searches on graph data can touch every node.
        """
        if source_id == target_id:
            return [source_id]
        parents = {source_id: None}
        frontier = [source_id]
        hops = 0
        while frontier:
            if max_hops is not None and hops >= max_hops:
                return None
            hops += 1
            next_frontier = []
            for current in frontier:
                for neighbor in self.neighbors(current):
                    if neighbor in parents:
                        continue
                    parents[neighbor] = current
                    if neighbor == target_id:
                        return self._unwind(parents, target_id)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return None

    def distance(self, source_id, target_id, max_hops=None):
        """Length (in edges) of the shortest path, or ``None``."""
        path = self.shortest_path(source_id, target_id, max_hops=max_hops)
        if path is None:
            return None
        return len(path) - 1

    @staticmethod
    def _unwind(parents, target_id):
        path = [target_id]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    # -- connectivity ---------------------------------------------------------------

    def connects(self, node_ids, max_hops=None):
        """True when the given nodes lie in one connected subgraph.

        This is the Definition 4 test used by result enumeration: grow a
        BFS region from the first node until all the others are absorbed
        (or the hop bound is exhausted).
        """
        remaining = set(node_ids)
        if len(remaining) <= 1:
            return True
        start = next(iter(remaining))
        remaining.discard(start)
        seen = {start}
        frontier = [start]
        hops = 0
        while frontier and remaining:
            if max_hops is not None and hops >= max_hops:
                return False
            hops += 1
            next_frontier = []
            for current in frontier:
                for neighbor in self.neighbors(current):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    remaining.discard(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return not remaining

    def steiner_size(self, node_ids, max_hops=None):
        """Approximate size of the minimal subtree connecting the nodes.

        Used by compactness scoring: the score of a result tuple decays
        with the total number of edges needed to connect its nodes.  We
        use the classic star approximation -- sum of pairwise shortest
        paths from the first node -- which is exact for the common case
        of nodes within one document subtree and within a factor of 2
        otherwise.
        """
        ids = list(dict.fromkeys(node_ids))
        if len(ids) <= 1:
            return 0
        anchor = ids[0]
        total = 0
        for other in ids[1:]:
            hops = self.distance(anchor, other, max_hops=max_hops)
            if hops is None:
                return None
            total += hops
        return total

    def __repr__(self):
        return (
            f"DataGraph(docs={len(self.collection.documents)}, "
            f"link_edges={len(self.edges)})"
        )
