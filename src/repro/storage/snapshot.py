"""Versioned on-disk snapshots of a whole SEDA system.

The paper assumes indexes and dataguide summaries are "precomputed on
the entire data graph" and loaded "into memory only once from disk"
(Section 6.1).  This module is that persistence layer generalized to
every Figure 4 component, so a fully constructed system cold-starts
from one file instead of re-parsing, re-indexing, re-discovering links,
and re-mining dataguides.

Snapshot format (JSON lines, UTF-8):

* Line 1 is the **header**::

      {"record": "header", "format": "seda-snapshot", "version": 2,
       "meta": {...}}

  ``format`` and ``version`` gate compatibility: readers reject files
  whose format string differs or whose version is not a supported one
  (there is no cross-version migration; re-save from source data
  instead).  Version 2 added the optional ``streams`` record and the
  inverted index's precomputed node lengths; version-1 files are still
  readable -- the additions are derived or rebuilt lazily.  ``meta``
  carries system-level configuration -- collection name, ``max_hops``,
  the dataguide merge threshold, the analyzer configuration, and any
  value-link specs -- everything needed to reconstruct
  behavior-affecting settings.

* Each following line is one **component record**::

      {"record": "<component>", "payload": {...}}

  with one record per component, written in a fixed order: ``collection``
  (flat node lists per document -- no XML text, so loading bypasses the
  parser), ``graph`` (non-tree edges by node id), ``inverted`` (postings
  with positions and per-node token counts), ``path_index``
  (keyword/tag -> path tables), ``node_store`` (Dewey-ordered streams),
  ``dataguides`` (the exact :meth:`DataguideSet.to_dict` payload, same
  as its standalone ``save`` format), and ``registry`` (fact/dimension
  definitions); optionally followed by ``streams`` (the materialized
  impact-ordered per-term score streams at the saved graph version, so
  a reloaded system serves its hot terms without rebuilding them).

Compatibility rules: unknown record types are rejected (they signal a
newer writer); missing required records are rejected (optional records
may be absent); node ids embedded in component payloads are only
meaningful relative to the collection record in the same file.  Writers
always emit via a temp file and atomic rename, so a crash never leaves
a torn snapshot behind.
"""

import json
import os

try:  # optional accelerator: ~5x faster decode of large records
    import orjson as _fastjson
except ImportError:  # pragma: no cover - environment-dependent
    _fastjson = None

SNAPSHOT_FORMAT = "seda-snapshot"
SNAPSHOT_VERSION = 2

#: Versions this reader accepts.  Version 1 lacked the ``streams``
#: record and the inverted index's node lengths; both restore as
#: empty/derived, so old files load unchanged.
SUPPORTED_VERSIONS = (1, SNAPSHOT_VERSION)

#: Component records every complete snapshot must contain.
REQUIRED_RECORDS = (
    "collection",
    "graph",
    "inverted",
    "path_index",
    "node_store",
    "dataguides",
    "registry",
)

#: Component records a snapshot may carry but a reader must not demand.
OPTIONAL_RECORDS = ("streams",)

_KNOWN_RECORDS = frozenset(REQUIRED_RECORDS) | frozenset(OPTIONAL_RECORDS)


class SnapshotError(ValueError):
    """A snapshot file is malformed, incomplete, or incompatible."""


def _loads(text):
    if _fastjson is not None:
        return _fastjson.loads(text)
    return json.loads(text)


def _dumps(obj):
    if _fastjson is not None:
        return _fastjson.dumps(obj).decode("utf-8")
    return json.dumps(obj, separators=(",", ":"))


def write_snapshot(path, meta, records):
    """Write a snapshot atomically.

    ``meta`` is the header's system-level metadata; ``records`` maps
    component name -> JSON-serializable payload and must cover
    :data:`REQUIRED_RECORDS`; :data:`OPTIONAL_RECORDS` entries are
    written when present.
    """
    missing = [name for name in REQUIRED_RECORDS if name not in records]
    if missing:
        raise SnapshotError(f"snapshot is missing records: {missing}")
    header = {
        "record": "header",
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "meta": meta,
    }
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(header) + "\n")
        for name in REQUIRED_RECORDS:
            record = {"record": name, "payload": records[name]}
            handle.write(_dumps(record) + "\n")
        for name in OPTIONAL_RECORDS:
            if name in records:
                record = {"record": name, "payload": records[name]}
                handle.write(_dumps(record) + "\n")
    os.replace(tmp_path, path)


def _read_header(line, path):
    try:
        header = _loads(line)
    except ValueError as error:  # stdlib and orjson decode errors alike
        raise SnapshotError(f"{path}: header is not valid JSON") from error
    if not isinstance(header, dict) or header.get("record") != "header":
        raise SnapshotError(f"{path}: first record must be the header")
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: not a {SNAPSHOT_FORMAT} file "
            f"(format={header.get('format')!r})"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path}: unsupported snapshot version "
            f"{header.get('version')!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return header


def read_snapshot(path):
    """Read and validate a snapshot; returns ``(meta, records)``.

    ``records`` maps component name -> payload.  Raises
    :class:`SnapshotError` on format/version mismatch, unknown record
    types, or missing components.
    """
    meta, records = None, {}
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if meta is None:
                meta = _read_header(line, path).get("meta", {})
                continue
            try:
                record = _loads(line)
            except ValueError as error:
                raise SnapshotError(
                    f"{path}:{number}: torn record (invalid JSON)"
                ) from error
            name = record.get("record") if isinstance(record, dict) else None
            if name not in _KNOWN_RECORDS:
                raise SnapshotError(
                    f"{path}:{number}: unknown record type {name!r}"
                )
            if "payload" not in record:
                raise SnapshotError(
                    f"{path}:{number}: record {name!r} has no payload"
                )
            records[name] = record["payload"]
    if meta is None:
        raise SnapshotError(f"{path}: empty snapshot file")
    missing = [name for name in REQUIRED_RECORDS if name not in records]
    if missing:
        raise SnapshotError(f"{path}: missing records: {missing}")
    return meta, records


def snapshot_info(path):
    """Header metadata plus per-record sizes, without restoring anything.

    Returns ``{"meta": ..., "records": [(name, bytes), ...],
    "total_bytes": N}`` -- what ``repro snapshot info`` prints.  Streams
    the file line by line, so inspecting a large snapshot stays cheap.
    """
    meta = None
    sizes = []
    total = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            total += len(line.encode("utf-8"))
            if meta is None:
                meta = _read_header(stripped, path).get("meta", {})
                continue
            try:
                record = _loads(stripped)
            except ValueError as error:
                raise SnapshotError(
                    f"{path}: torn record (invalid JSON)"
                ) from error
            sizes.append(
                (record.get("record"), len(stripped.encode("utf-8")))
            )
    if meta is None:
        raise SnapshotError(f"{path}: empty snapshot file")
    return {"meta": meta, "records": sizes, "total_bytes": total}
