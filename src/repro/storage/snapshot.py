"""Versioned on-disk snapshots of a whole SEDA system.

The paper assumes indexes and dataguide summaries are "precomputed on
the entire data graph" and loaded "into memory only once from disk"
(Section 6.1).  This module is that persistence layer generalized to
every Figure 4 component, so a fully constructed system cold-starts
from one file instead of re-parsing, re-indexing, re-discovering links,
and re-mining dataguides.

Snapshot format (JSON lines, UTF-8):

* Line 1 is the **header**::

      {"record": "header", "format": "seda-snapshot", "version": 2,
       "meta": {...}}

  ``format`` and ``version`` gate compatibility: readers reject files
  whose format string differs or whose version is not a supported one
  (there is no cross-version migration; re-save from source data
  instead).  Version 2 added the optional ``streams`` record and the
  inverted index's precomputed node lengths; version 3 added the
  optional ``obs`` record (the retained query-statistics registry);
  version 4 added the binary **sidecar** (below) holding the compact
  byte columns; version 5 added integrity checksums -- the header
  carries ``"crcs": {record_name: crc32}`` over each record line's
  UTF-8 bytes, and the sidecar announcement carries a ``crc32`` over
  the whole blob, all verified on load so any single corrupted byte
  raises :class:`SnapshotError` instead of decoding into silently
  wrong answers.  Version 1-4 files are still readable -- the
  additions are derived, rebuilt lazily, or simply absent (pre-v5
  files carry no checksums and load unverified, as before).  ``meta``
  carries system-level configuration -- collection name, ``max_hops``,
  the dataguide merge threshold, the analyzer configuration, and any
  value-link specs -- everything needed to reconstruct
  behavior-affecting settings.

* Each following line is one **component record**::

      {"record": "<component>", "payload": {...}}

  with one record per component, written in a fixed order: ``collection``
  (flat node lists per document -- no XML text, so loading bypasses the
  parser), ``graph`` (non-tree edges by node id), ``inverted`` (postings
  with positions and per-node token counts), ``path_index``
  (keyword/tag -> path tables), ``node_store`` (Dewey-ordered streams),
  ``dataguides`` (the exact :meth:`DataguideSet.to_dict` payload, same
  as its standalone ``save`` format), and ``registry`` (fact/dimension
  definitions); optionally followed by ``streams`` (the materialized
  impact-ordered per-term score streams at the saved graph version, so
  a reloaded system serves its hot terms without rebuilding them) and
  ``obs`` (the serialized
  :class:`~repro.obs.registry.StatsRegistry` -- per-fingerprint query
  statistics and the slow-query log -- so a reloaded service keeps its
  observability history).

Compatibility rules: unknown record types are rejected (they signal a
newer writer); missing required records are rejected (optional records
may be absent); node ids embedded in component payloads are only
meaningful relative to the collection record in the same file.  Writers
always emit via a temp file and atomic rename -- with the temp file
fsynced before the rename and the containing directory fsynced after
(the :mod:`repro.storage.durable` sequence) -- so a crash, including a
power cut, never leaves a torn snapshot at the committed name.  A
crash *does* leave stale ``*.tmp`` files behind; ``repro fsck``
reports them and they are safe to delete.

The binary sidecar (version 4)
------------------------------

A component payload may carry its bulk data as compact byte columns
under a ``columns_inline`` key (``{name: bytes}``).  The writer strips
those out of the JSON, concatenates the blobs (sorted by name) into one
binary sidecar file next to the snapshot (``<file>.cols``), and
substitutes a ``columns`` table of ``[offset, length]`` windows.  The
header then records ``"sidecar": {"file": <basename>, "bytes": N}``;
readers validate the sidecar's size against ``bytes`` (torn-state
detection -- the sidecar is staged at ``<file>.cols.tmp`` before the
main file commits and only renamed into place afterwards, so the main
file's rename is the single commit point; a reader that finds the
announced checksum still sitting at the staged name completes the
interrupted rename itself) and attach it as a read-only
``mmap``-backed :class:`~repro.compact.shm.Sidecar`, returned under the
:data:`SIDECAR_KEY` pseudo-record.  Component readers then decode
per-key windows lazily and zero-copy; a caller may instead pass its own
pre-attached buffer (e.g. a ``multiprocessing.shared_memory`` segment
shared by many worker processes) to :func:`read_snapshot`.  A snapshot
without columnar records has no sidecar and no header key -- and any
version-4 reader still accepts the version 1-3 records verbatim.

Sharded snapshots
-----------------

A sharded collection (:mod:`repro.shard`) persists as a **directory**:

* ``shard-0000.snapshot`` ... ``shard-NNNN.snapshot`` -- one ordinary
  single-system snapshot per shard, each individually valid in the
  format above (but see the caveat below);
* ``obs.json`` (optional) -- the collection-level retained
  query-statistics registry (:func:`write_obs_state`), written after
  the manifest commits; absence just means no observability history;
* ``manifest.json`` -- the topology record, written **last** among the
  shard files (atomic temp-file rename), so a crashed first save never
  leaves a directory that parses.  Re-saves bump a ``generation`` counter and write the
  shard files under generation-suffixed names
  (``shard-0000.g1.snapshot``), so the old manifest keeps pointing at
  intact old files until the new manifest commits::

      {"format": "seda-sharded-snapshot", "version": 1,
       "meta": {"collection": ..., "shards": N, "partitioner": ...,
                "value_links": [...]},
       "documents": [[name, shard_index, node_count], ...],
       "shard_files": ["shard-0000.snapshot", ...]}

  ``documents`` lists every document in **global** order; the
  ``node_count`` column is what lets a reader reconstruct the global
  node-id space (and therefore translate per-shard result ids) without
  opening a single shard file -- the basis of lazy per-shard restore.

Caveat: a shard file's impact streams carry content scores computed
against *corpus-wide* idf.  Restored through the manifest they are
exact; loaded standalone via :func:`read_snapshot` they would disagree
with scores the shard computes fresh from its local statistics, so
treat shard files as internal to their directory.
"""

import json
import os
import warnings
import zlib

from repro.compact.shm import Sidecar
from repro.storage import durable

try:  # optional accelerator: ~5x faster decode of large records
    import orjson as _fastjson
except ImportError:  # pragma: no cover - environment-dependent
    _fastjson = None

SNAPSHOT_FORMAT = "seda-snapshot"
SNAPSHOT_VERSION = 5

#: Versions this reader accepts.  Version 1 lacked the ``streams``
#: record and the inverted index's node lengths; version 2 lacked the
#: ``obs`` record; version 3 lacked the binary sidecar; version 4
#: lacked the record/sidecar checksums.  All of those restore as
#: empty/derived/unverified, so old files load unchanged.
SUPPORTED_VERSIONS = (1, 2, 3, 4, SNAPSHOT_VERSION)

#: Pseudo-record under which :func:`read_snapshot` returns the attached
#: sidecar buffer (never present in the file itself).
SIDECAR_KEY = "__sidecar__"


def sidecar_file_name(path):
    """The sidecar file path for snapshot ``path``."""
    return f"{os.fspath(path)}.cols"

#: Component records every complete snapshot must contain.
REQUIRED_RECORDS = (
    "collection",
    "graph",
    "inverted",
    "path_index",
    "node_store",
    "dataguides",
    "registry",
)

#: Component records a snapshot may carry but a reader must not demand.
OPTIONAL_RECORDS = ("streams", "obs")

_KNOWN_RECORDS = frozenset(REQUIRED_RECORDS) | frozenset(OPTIONAL_RECORDS)


class SnapshotError(ValueError):
    """A snapshot file is malformed, incomplete, or incompatible."""


def _loads(text):
    if _fastjson is not None:
        return _fastjson.loads(text)
    return json.loads(text)


def _dumps(obj):
    if _fastjson is not None:
        return _fastjson.dumps(obj).decode("utf-8")
    return json.dumps(obj, separators=(",", ":"))


def _externalize_columns(payload, sidecar):
    """Move a payload's inline byte columns into the sidecar buffer.

    Returns a shallow copy with ``columns_inline`` replaced by a
    ``columns`` table of ``[offset, length]`` windows (the payload
    itself is never mutated -- callers may retain and re-save it).
    """
    if not (isinstance(payload, dict) and "columns_inline" in payload):
        return payload
    payload = dict(payload)
    inline = payload.pop("columns_inline")
    table = {}
    for name in sorted(inline):
        blob = inline[name]
        table[name] = [len(sidecar), len(blob)]
        sidecar += blob
    payload["columns"] = table
    return payload


def write_snapshot(path, meta, records):
    """Write a snapshot atomically.

    ``meta`` is the header's system-level metadata; ``records`` maps
    component name -> JSON-serializable payload and must cover
    :data:`REQUIRED_RECORDS`; :data:`OPTIONAL_RECORDS` entries are
    written when present.  Payloads carrying ``columns_inline`` byte
    columns get those written to the binary sidecar.

    Crash safety: the new sidecar is staged at ``<file>.cols.tmp``
    (fsynced, **not** renamed) before the main file commits, and only
    renamed to ``<file>.cols`` afterwards.  The main file's atomic
    rename is therefore the single commit point -- a crash anywhere
    before it leaves the previous snapshot/sidecar pair fully intact,
    and a crash between the two renames leaves a committed main file
    whose reader completes the interrupted sidecar rename itself (the
    staged bytes are identified by the header's announced CRC).  An
    empty sidecar is not written at all and any stale one is removed
    (after the commit, for the same reason).
    """
    missing = [name for name in REQUIRED_RECORDS if name not in records]
    if missing:
        raise SnapshotError(f"snapshot is missing records: {missing}")
    ordered = [name for name in REQUIRED_RECORDS + OPTIONAL_RECORDS
               if name in records]
    sidecar = bytearray()
    # Serialize every record line up front: the version-5 header
    # announces each line's CRC32, so the lines must exist before the
    # header is written.
    lines = {}
    for name in ordered:
        payload = _externalize_columns(records[name], sidecar)
        lines[name] = _dumps({"record": name, "payload": payload})
    header = {
        "record": "header",
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "meta": meta,
        "crcs": {
            name: zlib.crc32(line.encode("utf-8"))
            for name, line in lines.items()
        },
    }
    sidecar_path = sidecar_file_name(path)
    sidecar_tmp = f"{sidecar_path}.tmp"
    if sidecar:
        header["sidecar"] = {
            "file": os.path.basename(sidecar_path),
            "bytes": len(sidecar),
            "crc32": zlib.crc32(bytes(sidecar)),
        }
        # Stage only: the rename waits until the main file has
        # committed, so the old pair stays loadable up to that point.
        with open(sidecar_tmp, "wb") as handle:
            handle.write(bytes(sidecar))
            durable.fsync_file(handle)
    # The crcs table protects every record line; the *integrity seal*
    # (line 2) protects the header line itself -- its CRC covers the
    # header's raw bytes, so a flipped bit in meta, the crcs table, or
    # the sidecar announcement is caught instead of silently steering
    # the load.  A flip in the seal line can only produce a (clean)
    # mismatch or a JSON error, never a silent acceptance.
    header_line = _dumps(header)
    seal_line = _dumps({
        "record": "integrity",
        "header_crc": zlib.crc32(header_line.encode("utf-8")),
    })
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(header_line + "\n")
        handle.write(seal_line + "\n")
        for name in ordered:
            handle.write(lines[name] + "\n")
        durable.fsync_file(handle)
    durable.replace_durably(tmp_path, path)  # the commit point
    if sidecar:
        durable.replace_durably(sidecar_tmp, sidecar_path)
    else:
        for leftover in (sidecar_path, sidecar_tmp):
            try:
                os.remove(leftover)
            except OSError:
                pass


def _utf8_lines(handle, path):
    """Enumerate a text handle's lines, turning decode failures --
    flipped bytes land outside UTF-8 as often as inside it -- into
    :class:`SnapshotError` instead of a bare ``UnicodeDecodeError``."""
    number = 0
    iterator = iter(handle)
    while True:
        number += 1
        try:
            line = next(iterator)
        except StopIteration:
            return
        except UnicodeDecodeError as error:
            raise SnapshotError(
                f"{path}:{number}: not valid UTF-8 ({error}) -- corrupt "
                f"snapshot; restore from backup"
            ) from None
        yield number, line


def _read_header(line, path):
    try:
        header = _loads(line)
    except ValueError as error:  # stdlib and orjson decode errors alike
        raise SnapshotError(f"{path}: header is not valid JSON") from error
    if not isinstance(header, dict) or header.get("record") != "header":
        raise SnapshotError(f"{path}: first record must be the header")
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: not a {SNAPSHOT_FORMAT} file "
            f"(format={header.get('format')!r})"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path}: unsupported snapshot version "
            f"{header.get('version')!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return header


def _complete_sidecar_commit(path, sidecar_path, announced, repair):
    """Finish a sidecar rename a crash interrupted, or return ``None``.

    :func:`write_snapshot` commits the main file *between* staging the
    new sidecar at ``<sidecar>.tmp`` and renaming it into place, so a
    crash in that window leaves a committed header announcing bytes
    that still sit at the staged name.  The announced CRC identifies
    them definitively: if the staged file matches, the rename is
    completed (best-effort -- on a read-only filesystem the staged
    buffer is served in place) and the buffer returned.  Anything else
    -- no staged file, or stale bytes from an *earlier* crash --
    returns ``None`` and the caller reports the original error.

    ``repair=False`` (fsck's verification-only mode) serves the staged
    buffer without touching the filesystem.
    """
    expected = announced.get("bytes", 0)
    expected_crc = announced.get("crc32")
    if expected_crc is None:  # pre-v5 header: cannot verify, never guess
        return None
    staged = f"{sidecar_path}.tmp"
    try:
        buffer = Sidecar.from_file(staged)
    except (FileNotFoundError, OSError, ValueError):
        return None
    if len(buffer) < expected or buffer.crc32(expected) != expected_crc:
        buffer.close()
        return None
    if repair:
        warnings.warn(
            f"{path}: completing a snapshot commit interrupted by a "
            f"crash (sidecar {os.path.basename(staged)!r} matched the "
            f"header's checksum and was renamed into place)",
            RuntimeWarning,
            stacklevel=4,
        )
        try:
            durable.replace_durably(staged, sidecar_path)
        except OSError:
            pass  # read-only media: serve the staged bytes directly
    else:
        warnings.warn(
            f"{path}: snapshot commit was interrupted by a crash -- the "
            f"sidecar bytes sit at {os.path.basename(staged)!r} and "
            f"match the header's checksum; loading normally completes "
            f"the rename (do NOT delete the staged file)",
            RuntimeWarning,
            stacklevel=4,
        )
    return buffer


def _attach_sidecar(header, path, sidecar, repair=True):
    """The sidecar buffer a version-4 header calls for, or ``None``.

    ``sidecar`` is an optional caller-provided pre-attached buffer
    (e.g. a shared-memory segment holding the same bytes); otherwise
    the announced file is memory-mapped.  Either way the buffer must
    cover the announced byte count -- a short file means the snapshot
    pair is torn.  When the announced file is missing or fails its
    checksum but a staged ``<sidecar>.tmp`` matches the announced CRC,
    the interrupted commit is completed instead of failing (see
    :func:`_complete_sidecar_commit`).
    """
    announced = header.get("sidecar")
    if announced is None:
        return None
    version = header.get("version")
    expected = announced.get("bytes", 0)
    from_file = sidecar is None
    if sidecar is None:
        sidecar_path = os.path.join(
            os.path.dirname(os.fspath(path)) or ".", announced["file"]
        )
        try:
            sidecar = Sidecar.from_file(sidecar_path)
        except FileNotFoundError:
            sidecar = _complete_sidecar_commit(path, sidecar_path,
                                               announced, repair)
            if sidecar is None:
                raise SnapshotError(
                    f"{path}: missing sidecar file {announced['file']!r} "
                    f"(format version {version}, expected {expected} "
                    f"bytes; the snapshot/sidecar pair must move "
                    f"together)"
                ) from None
            return sidecar
    if len(sidecar) < expected:
        replacement = None
        if from_file:
            replacement = _complete_sidecar_commit(
                path, sidecar_path, announced, repair
            )
        if replacement is None:
            raise SnapshotError(
                f"{path}: sidecar {announced['file']!r} holds "
                f"{len(sidecar)} bytes, header (format version "
                f"{version}) announces {expected} -- torn snapshot "
                f"pair, not a wrong file; restore both files from the "
                f"same save"
            )
        sidecar.close()
        return replacement
    expected_crc = announced.get("crc32")
    if expected_crc is not None:
        actual_crc = sidecar.crc32(expected)
        if actual_crc != expected_crc:
            replacement = None
            if from_file:
                replacement = _complete_sidecar_commit(
                    path, sidecar_path, announced, repair
                )
            if replacement is None:
                raise SnapshotError(
                    f"{path}: sidecar {announced['file']!r} fails its "
                    f"checksum over {expected} bytes (stored "
                    f"{expected_crc}, computed {actual_crc}) -- the "
                    f"column payload is corrupt; restore from backup "
                    f"or re-save from source"
                )
            sidecar.close()
            sidecar = replacement
    return sidecar


def read_snapshot(path, sidecar=None, repair=True):
    """Read and validate a snapshot; returns ``(meta, records)``.

    ``records`` maps component name -> payload.  When the header
    announces a binary sidecar, the attached buffer is returned under
    ``records[SIDECAR_KEY]`` (pass ``sidecar`` to substitute an
    already-attached buffer, e.g. a shared-memory segment).  Raises
    :class:`SnapshotError` on format/version mismatch, unknown record
    types, or missing components.  A sidecar rename interrupted by a
    crash mid-save is completed on the way in (with a
    ``RuntimeWarning``); ``repair=False`` verifies the staged bytes
    without renaming them -- fsck's read-only mode.
    """
    meta, records, crcs = None, {}, None
    header_line, seal_pending = None, False
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in _utf8_lines(handle, path):
            line = line.strip()
            if not line:
                continue
            if meta is None:
                header = _read_header(line, path)
                header_line = line
                meta = header.get("meta", {})
                crcs = header.get("crcs")  # version >= 5; else None
                seal_pending = header.get("version", 0) >= 5
                attached = _attach_sidecar(header, path, sidecar, repair)
                if attached is not None:
                    records[SIDECAR_KEY] = attached
                continue
            try:
                record = _loads(line)
            except ValueError as error:
                raise SnapshotError(
                    f"{path}:{number}: torn record (invalid JSON)"
                ) from error
            name = record.get("record") if isinstance(record, dict) else None
            if name == "integrity":
                # The seal's CRC covers the header's raw bytes -- the
                # one line the crcs table cannot protect (it lives
                # inside it).  Any flip in meta, the crcs table, or the
                # sidecar announcement lands here as a mismatch.
                stored = record.get("header_crc")
                actual = zlib.crc32(header_line.encode("utf-8"))
                if not seal_pending:
                    raise SnapshotError(
                        f"{path}:{number}: integrity seal on a "
                        f"pre-checksum snapshot -- header version field "
                        f"is corrupt; restore from backup"
                    )
                if stored != actual:
                    raise SnapshotError(
                        f"{path}:{number}: header fails its integrity "
                        f"seal (stored {stored}, computed {actual}) -- "
                        f"corrupt snapshot; restore from backup"
                    )
                seal_pending = False
                continue
            if name not in _KNOWN_RECORDS:
                raise SnapshotError(
                    f"{path}:{number}: unknown record type {name!r}"
                )
            if "payload" not in record:
                raise SnapshotError(
                    f"{path}:{number}: record {name!r} has no payload"
                )
            if crcs is not None:
                stored = crcs.get(name)
                actual = zlib.crc32(line.encode("utf-8"))
                if stored != actual:
                    raise SnapshotError(
                        f"{path}:{number}: record {name!r} fails its "
                        f"checksum (stored {stored}, computed {actual}) "
                        f"-- corrupt snapshot; restore from backup"
                    )
            records[name] = record["payload"]
    if meta is None:
        raise SnapshotError(f"{path}: empty snapshot file")
    if seal_pending:
        raise SnapshotError(
            f"{path}: version-5 snapshot is missing its integrity seal "
            f"-- truncated or corrupt; restore from backup"
        )
    missing = [name for name in REQUIRED_RECORDS if name not in records]
    if missing:
        raise SnapshotError(f"{path}: missing records: {missing}")
    return meta, records


SHARDED_FORMAT = "seda-sharded-snapshot"
#: Version 2 adds the manifest-owned routing state: ``routing_epoch``
#: (bumped by every topology operation -- split/merge/rebalance) and
#: ``shard_doc_bases`` (per shard, the global document count at the
#: moment that shard's file was written; write-ahead records with
#: ``base >= shard_doc_bases[s]`` are *not* absorbed by shard ``s``'s
#: file and must be replayed onto it).  Version-1 manifests read as
#: epoch 0 with every base at the full document count.
SHARDED_VERSION = 2
SHARDED_SUPPORTED_VERSIONS = (1, 2)
SHARDED_MANIFEST = "manifest.json"

#: Shard files are named by zero-padded shard index; re-saves into a
#: directory that already holds a manifest use a bumped *generation*
#: so the old files stay intact until the new manifest commits.
SHARD_FILE_TEMPLATE = "shard-{index:04d}.snapshot"
SHARD_FILE_GENERATION_TEMPLATE = "shard-{index:04d}.g{generation}.snapshot"


def shard_file_name(index, generation=0):
    """The shard file name for ``index`` at ``generation``."""
    if generation:
        return SHARD_FILE_GENERATION_TEMPLATE.format(
            index=index, generation=generation
        )
    return SHARD_FILE_TEMPLATE.format(index=index)


def next_shard_generation(directory):
    """The generation a save into ``directory`` must write.

    A fresh (or manifest-less) directory starts at generation 0 --
    plain ``shard-NNNN.snapshot`` names.  A directory with a readable
    manifest gets the next generation, so the re-save writes entirely
    *new* shard files and the old manifest keeps pointing at intact
    old ones until the new manifest atomically replaces it -- a crash
    mid-re-save can never leave a manifest referencing half-rewritten
    shards.
    """
    path = os.path.join(directory, SHARDED_MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = _loads(handle.read())
        if not isinstance(manifest, dict):
            return 0  # valid JSON but not a manifest: overwrite as fresh
        return int(manifest.get("generation", 0)) + 1
    except (FileNotFoundError, ValueError, TypeError):
        return 0


def write_sharded_manifest(directory, meta, documents, shard_files,
                           generation=0, routing_epoch=0,
                           shard_doc_bases=None):
    """Write a sharded snapshot's ``manifest.json`` atomically.

    ``documents`` is the global-order ``[name, shard_index,
    node_count]`` table -- the explicit document->shard assignment map
    routing works from; ``shard_files`` the per-shard file names
    (relative to ``directory``).  ``routing_epoch`` is bumped by every
    topology operation; ``shard_doc_bases`` records, per shard, the
    global document count when that shard's file was written (defaults
    to the full count: a plain save absorbs everything everywhere).
    Callers write the shard files *first*: the manifest is the commit
    record.
    """
    if shard_doc_bases is None:
        shard_doc_bases = [len(documents)] * len(shard_files)
    manifest = {
        "format": SHARDED_FORMAT,
        "version": SHARDED_VERSION,
        "generation": generation,
        "routing_epoch": int(routing_epoch),
        "shard_doc_bases": [int(base) for base in shard_doc_bases],
        "meta": meta,
        "documents": [list(row) for row in documents],
        "shard_files": list(shard_files),
    }
    path = os.path.join(directory, SHARDED_MANIFEST)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(manifest) + "\n")
        durable.fsync_file(handle)
    durable.replace_durably(tmp_path, path)
    return path


def read_sharded_manifest(directory):
    """Read and validate ``manifest.json``; returns the manifest dict.

    Raises :class:`SnapshotError` on a missing manifest, a foreign
    format string, an unsupported version, or a manifest whose listed
    shard files are absent.
    """
    path = os.path.join(directory, SHARDED_MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        raise SnapshotError(
            f"{directory}: not a sharded snapshot (no {SHARDED_MANIFEST})"
        ) from None
    try:
        manifest = _loads(text)
    except ValueError as error:
        raise SnapshotError(f"{path}: manifest is not valid JSON") from error
    if not isinstance(manifest, dict) or (
        manifest.get("format") != SHARDED_FORMAT
    ):
        raise SnapshotError(
            f"{path}: not a {SHARDED_FORMAT} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})"
        )
    if manifest.get("version") not in SHARDED_SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path}: unsupported sharded snapshot version "
            f"{manifest.get('version')!r} "
            f"(supported: {list(SHARDED_SUPPORTED_VERSIONS)})"
        )
    for name in ("documents", "shard_files"):
        if not isinstance(manifest.get(name), list):
            raise SnapshotError(f"{path}: manifest is missing {name!r}")
    shard_count = len(manifest["shard_files"])
    for row in manifest["documents"]:
        if not (
            isinstance(row, list) and len(row) == 3
            and isinstance(row[1], int) and 0 <= row[1] < shard_count
            and isinstance(row[2], int) and row[2] >= 0
        ):
            raise SnapshotError(
                f"{path}: malformed document row {row!r} "
                f"(need [name, shard_index < {shard_count}, node_count])"
            )
    # Normalize the version-2 routing state so every reader sees it: a
    # version-1 manifest predates topology operations, so its epoch is
    # 0 and every shard file absorbed the whole document table.
    document_count = len(manifest["documents"])
    epoch = manifest.setdefault("routing_epoch", 0)
    if not (isinstance(epoch, int) and epoch >= 0):
        raise SnapshotError(
            f"{path}: malformed routing_epoch {epoch!r} (need int >= 0)"
        )
    bases = manifest.setdefault(
        "shard_doc_bases", [document_count] * shard_count
    )
    if not (
        isinstance(bases, list) and len(bases) == shard_count
        and all(
            isinstance(base, int) and 0 <= base <= document_count
            for base in bases
        )
    ):
        raise SnapshotError(
            f"{path}: malformed shard_doc_bases {bases!r} (need "
            f"{shard_count} ints in [0, {document_count}])"
        )
    missing = [
        shard_file for shard_file in manifest["shard_files"]
        if not os.path.exists(os.path.join(directory, shard_file))
    ]
    if missing:
        raise SnapshotError(
            f"{directory}: manifest lists missing shard files: {missing}"
        )
    return manifest


#: Collection-level retained query statistics in a sharded snapshot
#: directory.  The per-shard snapshot files cannot carry this -- the
#: registry spans shards (per-shard skew is *inside* each fingerprint's
#: record) -- so it rides alongside the manifest.
OBS_STATE_FILE = "obs.json"


def write_obs_state(directory, payload):
    """Atomically write the registry payload as ``obs.json``."""
    path = os.path.join(directory, OBS_STATE_FILE)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(payload) + "\n")
        durable.fsync_file(handle)
    durable.replace_durably(tmp_path, path)
    return path


def read_obs_state(directory):
    """The ``obs.json`` payload, or ``None`` when absent/unreadable.

    Observability history is advisory: a torn or missing file must
    never block restoring the collection itself.
    """
    path = os.path.join(directory, OBS_STATE_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = _loads(handle.read())
    except (FileNotFoundError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def clear_obs_state(directory):
    """Remove a stale ``obs.json`` (re-save with observability off)."""
    try:
        os.remove(os.path.join(directory, OBS_STATE_FILE))
    except OSError:
        pass


def sharded_snapshot_info(directory):
    """Manifest metadata plus per-shard file sizes, loading nothing.

    Returns ``{"meta": ..., "shards": [(file, bytes, documents,
    nodes), ...], "documents": N, "nodes": N, "total_bytes": N}`` --
    what ``repro shard info`` prints.  Only the manifest is read; the
    shard snapshots are just ``stat``-ed, so inspecting a huge sharded
    collection stays O(manifest).
    """
    manifest = read_sharded_manifest(directory)
    documents = manifest["documents"]
    per_shard_docs = [0] * len(manifest["shard_files"])
    per_shard_nodes = [0] * len(manifest["shard_files"])
    for _name, shard_index, node_count in documents:
        per_shard_docs[shard_index] += 1
        per_shard_nodes[shard_index] += node_count
    shards = []
    total = 0
    for index, shard_file in enumerate(manifest["shard_files"]):
        size = os.path.getsize(os.path.join(directory, shard_file))
        total += size
        shards.append(
            (shard_file, size, per_shard_docs[index], per_shard_nodes[index])
        )
    return {
        "meta": manifest.get("meta", {}),
        "shards": shards,
        "documents": len(documents),
        "nodes": sum(per_shard_nodes),
        "total_bytes": total,
        "routing_epoch": manifest.get("routing_epoch", 0),
        "generation": manifest.get("generation", 0),
    }


def _snapshot_version(path):
    """The header's format version, or ``None`` when unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        return _read_header(first, path).get("version")
    except (OSError, UnicodeDecodeError, SnapshotError):
        return None


def _verify_snapshot_file(path, problems, warnings, checked, label=None):
    """Fold one snapshot file's health into an fsck report's lists.

    Reads with ``repair=False`` (fsck never modifies anything) and
    returns ``(staged, documents)``: ``staged`` is the staged sidecar
    path when the file's save was interrupted mid-commit -- that
    ``.tmp`` is load-bearing (a normal load completes its rename) and
    must not be reported as deletable -- and ``documents`` is the
    file's ``(name, node_count)`` list (the sharded fsck checks it
    against the manifest's assignment map), or ``None`` when the file
    could not be read.
    """
    import warnings as warnmod

    label = label or os.fspath(path)
    version = _snapshot_version(path)
    if version is not None:
        checked[label] = {"version": version}
        if version < SNAPSHOT_VERSION:
            warnings.append(
                f"{label}: format version {version} carries no checksums"
                f"{' beyond the sidecar byte count' if version >= 4 else ''}"
                f"; re-save to upgrade to version {SNAPSHOT_VERSION}"
            )
    try:
        with warnmod.catch_warnings(record=True) as caught:
            warnmod.simplefilter("always")
            _meta, records = read_snapshot(path, repair=False)
    except FileNotFoundError:
        problems.append(f"{label}: snapshot file is missing")
        return None, None
    except SnapshotError as error:
        problems.append(str(error))
        return None, None
    staged = None
    for entry in caught:
        if issubclass(entry.category, RuntimeWarning):
            warnings.append(str(entry.message))
            staged = f"{sidecar_file_name(path)}.tmp"
    attached = records.get(SIDECAR_KEY)
    if attached is not None:
        checked[label]["sidecar_bytes"] = len(attached)
        attached.close()
    checked[label]["records"] = sorted(
        name for name in records if name != SIDECAR_KEY
    )
    documents = [
        (record["name"], len(record["parents"]))
        for record in records["collection"]["documents"]
    ]
    return staged, documents


def _verify_wal_file(path, problems, warnings, checked):
    """Fold one write-ahead log's health into an fsck report's lists."""
    from repro.storage.wal import verify_wal

    report = verify_wal(path)
    if not report["present"]:
        return
    checked[os.fspath(path)] = {"wal_records": report["records"]}
    if report["error"]:
        problems.append(report["error"])
    if report["torn_tail"]:
        warnings.append(
            f"{report['torn_tail']} -- the interrupted append was never "
            f"acknowledged; replay (Seda.load) repairs this automatically"
        )


def _verify_shard_assignment(directory, manifest, shard_documents,
                             problems):
    """Check the manifest's assignment map against the shard files.

    The manifest's document table assigns every document to exactly one
    shard.  Each shard file must hold exactly the documents assigned to
    it whose global index is below that shard's ``shard_doc_bases``
    watermark (in global order, with matching node counts); documents
    at or above a shard's watermark are not in its file yet and must be
    covered by a write-ahead record, or they would be silently lost on
    load.  ``shard_documents`` is the per-shard ``(name, node_count)``
    list from :func:`_verify_snapshot_file` (``None`` for unreadable
    files, which already reported their own problem).
    """
    from repro.storage.wal import sharded_wal_file_name

    rows = manifest["documents"]
    bases = manifest["shard_doc_bases"]
    expected = [[] for _ in manifest["shard_files"]]
    unabsorbed = []
    for global_index, (name, shard, node_count) in enumerate(rows):
        if global_index < bases[shard]:
            expected[shard].append((name, node_count))
        else:
            unabsorbed.append(global_index)
    for shard, documents in enumerate(shard_documents):
        if documents is None:
            continue  # unreadable file: already a problem of its own
        if documents == expected[shard]:
            continue
        label = os.path.join(directory, manifest["shard_files"][shard])
        extra = [name for name, _count in documents
                 if (name, _count) not in set(expected[shard])]
        missing = [name for name, _count in expected[shard]
                   if (name, _count) not in set(documents)]
        problems.append(
            f"{label}: shard file disagrees with the manifest's "
            f"assignment map (expected {len(expected[shard])} documents, "
            f"found {len(documents)}; missing {missing[:3]!r}, "
            f"unassigned extras {extra[:3]!r})"
        )
    if unabsorbed:
        covered = set()
        try:
            from repro.storage.wal import replay_wal

            records, _warning = replay_wal(
                sharded_wal_file_name(directory), repair=False
            )
        except Exception:  # noqa: BLE001 - WAL check reports separately
            records = []
        for record in records:
            base = record.get("base", 0)
            covered.update(
                range(base, base + len(record.get("documents", ())))
            )
        lost = [index for index in unabsorbed if index not in covered]
        if lost:
            names = [rows[index][0] for index in lost[:3]]
            problems.append(
                f"{directory}: {len(lost)} document(s) past their "
                f"shard's absorption watermark are not covered by any "
                f"write-ahead record (first: {names!r}) -- they would "
                f"be lost on load"
            )


def _stale_tmp_files(paths):
    """The ``<path>.tmp`` leftovers that exist among ``paths``."""
    return [
        f"{os.fspath(path)}.tmp" for path in paths
        if os.path.exists(f"{os.fspath(path)}.tmp")
    ]


def fsck_report(path):
    """Verify a snapshot/sidecar/WAL set; the ``repro fsck`` backend.

    ``path`` is a single-system snapshot file or a sharded snapshot
    directory.  Returns ``{"target", "kind", "ok", "problems",
    "warnings", "checked"}``: ``problems`` are integrity failures
    (checksum mismatches, torn pairs, missing files -- the snapshot
    set cannot be trusted), ``warnings`` are survivable findings
    (torn WAL tail, stale ``*.tmp`` leftovers, pre-checksum format
    versions), and ``checked`` summarizes what was examined.  Never
    modifies anything -- WAL torn tails are reported, not repaired.
    """
    from repro.storage.wal import sharded_wal_file_name, wal_file_name

    problems, warnings, checked = [], [], {}
    if os.path.isdir(path):
        kind = "sharded"
        try:
            manifest = read_sharded_manifest(path)
        except SnapshotError as error:
            problems.append(str(error))
            manifest = None
        if manifest is not None:
            checked[os.path.join(path, SHARDED_MANIFEST)] = {
                "generation": manifest.get("generation", 0),
                "routing_epoch": manifest.get("routing_epoch", 0),
                "shards": len(manifest["shard_files"]),
                "documents": len(manifest["documents"]),
            }
            listed = set()
            protected = set()
            shard_documents = []
            for shard_file in manifest["shard_files"]:
                shard_path = os.path.join(path, shard_file)
                listed.update((shard_file, f"{shard_file}.cols"))
                staged, documents = _verify_snapshot_file(
                    shard_path, problems, warnings, checked,
                    label=shard_path,
                )
                shard_documents.append(documents)
                if staged is not None:
                    protected.add(os.path.basename(staged))
            _verify_shard_assignment(
                path, manifest, shard_documents, problems
            )
            for name in sorted(os.listdir(path)):
                if name in protected:
                    continue  # load-bearing staged sidecar, warned above
                if name.endswith(".tmp"):
                    warnings.append(
                        f"{os.path.join(path, name)}: stale temp file "
                        f"from an interrupted save; safe to delete"
                    )
                elif (name.startswith("shard-")
                        and (name.endswith(".snapshot")
                             or name.endswith(".snapshot.cols"))
                        and name not in listed):
                    warnings.append(
                        f"{os.path.join(path, name)}: not referenced by "
                        f"the manifest (superseded generation); safe to "
                        f"delete"
                    )
        _verify_wal_file(
            sharded_wal_file_name(path), problems, warnings, checked
        )
    else:
        kind = "snapshot"
        staged, _documents = _verify_snapshot_file(
            path, problems, warnings, checked
        )
        _verify_wal_file(wal_file_name(path), problems, warnings, checked)
        for stale in _stale_tmp_files(
            (path, sidecar_file_name(path), wal_file_name(path))
        ):
            if stale == staged:
                continue  # load-bearing staged sidecar, warned above
            warnings.append(
                f"{stale}: stale temp file from an interrupted save; "
                f"safe to delete"
            )
    return {
        "target": os.fspath(path),
        "kind": kind,
        "ok": not problems,
        "problems": problems,
        "warnings": warnings,
        "checked": checked,
    }


def snapshot_info(path):
    """Header metadata plus per-record sizes, without restoring anything.

    Returns ``{"meta": ..., "records": [(name, bytes), ...],
    "total_bytes": N, "sidecar_bytes": N}`` -- what ``repro snapshot
    info`` prints.  ``total_bytes`` is the JSON file alone;
    ``sidecar_bytes`` (0 for pre-version-4 files) is the binary column
    payload riding alongside it.  Streams the file line by line, so
    inspecting a large snapshot stays cheap.
    """
    meta = None
    sizes = []
    total = 0
    sidecar_bytes = 0
    with open(path, "r", encoding="utf-8") as handle:
        for _number, line in _utf8_lines(handle, path):
            stripped = line.strip()
            if not stripped:
                continue
            total += len(line.encode("utf-8"))
            if meta is None:
                header = _read_header(stripped, path)
                meta = header.get("meta", {})
                sidecar_bytes = header.get("sidecar", {}).get("bytes", 0)
                continue
            try:
                record = _loads(stripped)
            except ValueError as error:
                raise SnapshotError(
                    f"{path}: torn record (invalid JSON)"
                ) from error
            name = record.get("record") if isinstance(record, dict) else None
            if name == "integrity":  # header seal, not a component
                continue
            sizes.append((name, len(stripped.encode("utf-8"))))
    if meta is None:
        raise SnapshotError(f"{path}: empty snapshot file")
    return {
        "meta": meta,
        "records": sizes,
        "total_bytes": total,
        "sidecar_bytes": sidecar_bytes,
    }
