"""Versioned on-disk snapshots of a whole SEDA system.

The paper assumes indexes and dataguide summaries are "precomputed on
the entire data graph" and loaded "into memory only once from disk"
(Section 6.1).  This module is that persistence layer generalized to
every Figure 4 component, so a fully constructed system cold-starts
from one file instead of re-parsing, re-indexing, re-discovering links,
and re-mining dataguides.

Snapshot format (JSON lines, UTF-8):

* Line 1 is the **header**::

      {"record": "header", "format": "seda-snapshot", "version": 2,
       "meta": {...}}

  ``format`` and ``version`` gate compatibility: readers reject files
  whose format string differs or whose version is not a supported one
  (there is no cross-version migration; re-save from source data
  instead).  Version 2 added the optional ``streams`` record and the
  inverted index's precomputed node lengths; version 3 added the
  optional ``obs`` record (the retained query-statistics registry);
  version 4 added the binary **sidecar** (below) holding the compact
  byte columns.  Version 1-3 files are still readable -- the additions
  are derived, rebuilt lazily, or simply absent.  ``meta``
  carries system-level configuration -- collection name, ``max_hops``,
  the dataguide merge threshold, the analyzer configuration, and any
  value-link specs -- everything needed to reconstruct
  behavior-affecting settings.

* Each following line is one **component record**::

      {"record": "<component>", "payload": {...}}

  with one record per component, written in a fixed order: ``collection``
  (flat node lists per document -- no XML text, so loading bypasses the
  parser), ``graph`` (non-tree edges by node id), ``inverted`` (postings
  with positions and per-node token counts), ``path_index``
  (keyword/tag -> path tables), ``node_store`` (Dewey-ordered streams),
  ``dataguides`` (the exact :meth:`DataguideSet.to_dict` payload, same
  as its standalone ``save`` format), and ``registry`` (fact/dimension
  definitions); optionally followed by ``streams`` (the materialized
  impact-ordered per-term score streams at the saved graph version, so
  a reloaded system serves its hot terms without rebuilding them) and
  ``obs`` (the serialized
  :class:`~repro.obs.registry.StatsRegistry` -- per-fingerprint query
  statistics and the slow-query log -- so a reloaded service keeps its
  observability history).

Compatibility rules: unknown record types are rejected (they signal a
newer writer); missing required records are rejected (optional records
may be absent); node ids embedded in component payloads are only
meaningful relative to the collection record in the same file.  Writers
always emit via a temp file and atomic rename, so a crash never leaves
a torn snapshot behind.

The binary sidecar (version 4)
------------------------------

A component payload may carry its bulk data as compact byte columns
under a ``columns_inline`` key (``{name: bytes}``).  The writer strips
those out of the JSON, concatenates the blobs (sorted by name) into one
binary sidecar file next to the snapshot (``<file>.cols``), and
substitutes a ``columns`` table of ``[offset, length]`` windows.  The
header then records ``"sidecar": {"file": <basename>, "bytes": N}``;
readers validate the sidecar's size against ``bytes`` (torn-state
detection -- the sidecar is written and renamed *before* the main
file, which is the commit record) and attach it as a read-only
``mmap``-backed :class:`~repro.compact.shm.Sidecar`, returned under the
:data:`SIDECAR_KEY` pseudo-record.  Component readers then decode
per-key windows lazily and zero-copy; a caller may instead pass its own
pre-attached buffer (e.g. a ``multiprocessing.shared_memory`` segment
shared by many worker processes) to :func:`read_snapshot`.  A snapshot
without columnar records has no sidecar and no header key -- and any
version-4 reader still accepts the version 1-3 records verbatim.

Sharded snapshots
-----------------

A sharded collection (:mod:`repro.shard`) persists as a **directory**:

* ``shard-0000.snapshot`` ... ``shard-NNNN.snapshot`` -- one ordinary
  single-system snapshot per shard, each individually valid in the
  format above (but see the caveat below);
* ``obs.json`` (optional) -- the collection-level retained
  query-statistics registry (:func:`write_obs_state`), written after
  the manifest commits; absence just means no observability history;
* ``manifest.json`` -- the topology record, written **last** among the
  shard files (atomic temp-file rename), so a crashed first save never
  leaves a directory that parses.  Re-saves bump a ``generation`` counter and write the
  shard files under generation-suffixed names
  (``shard-0000.g1.snapshot``), so the old manifest keeps pointing at
  intact old files until the new manifest commits::

      {"format": "seda-sharded-snapshot", "version": 1,
       "meta": {"collection": ..., "shards": N, "partitioner": ...,
                "value_links": [...]},
       "documents": [[name, shard_index, node_count], ...],
       "shard_files": ["shard-0000.snapshot", ...]}

  ``documents`` lists every document in **global** order; the
  ``node_count`` column is what lets a reader reconstruct the global
  node-id space (and therefore translate per-shard result ids) without
  opening a single shard file -- the basis of lazy per-shard restore.

Caveat: a shard file's impact streams carry content scores computed
against *corpus-wide* idf.  Restored through the manifest they are
exact; loaded standalone via :func:`read_snapshot` they would disagree
with scores the shard computes fresh from its local statistics, so
treat shard files as internal to their directory.
"""

import json
import os

from repro.compact.shm import Sidecar

try:  # optional accelerator: ~5x faster decode of large records
    import orjson as _fastjson
except ImportError:  # pragma: no cover - environment-dependent
    _fastjson = None

SNAPSHOT_FORMAT = "seda-snapshot"
SNAPSHOT_VERSION = 4

#: Versions this reader accepts.  Version 1 lacked the ``streams``
#: record and the inverted index's node lengths; version 2 lacked the
#: ``obs`` record; version 3 lacked the binary sidecar.  All of those
#: restore as empty/derived, so old files load unchanged.
SUPPORTED_VERSIONS = (1, 2, 3, SNAPSHOT_VERSION)

#: Pseudo-record under which :func:`read_snapshot` returns the attached
#: sidecar buffer (never present in the file itself).
SIDECAR_KEY = "__sidecar__"


def sidecar_file_name(path):
    """The sidecar file path for snapshot ``path``."""
    return f"{os.fspath(path)}.cols"

#: Component records every complete snapshot must contain.
REQUIRED_RECORDS = (
    "collection",
    "graph",
    "inverted",
    "path_index",
    "node_store",
    "dataguides",
    "registry",
)

#: Component records a snapshot may carry but a reader must not demand.
OPTIONAL_RECORDS = ("streams", "obs")

_KNOWN_RECORDS = frozenset(REQUIRED_RECORDS) | frozenset(OPTIONAL_RECORDS)


class SnapshotError(ValueError):
    """A snapshot file is malformed, incomplete, or incompatible."""


def _loads(text):
    if _fastjson is not None:
        return _fastjson.loads(text)
    return json.loads(text)


def _dumps(obj):
    if _fastjson is not None:
        return _fastjson.dumps(obj).decode("utf-8")
    return json.dumps(obj, separators=(",", ":"))


def _externalize_columns(payload, sidecar):
    """Move a payload's inline byte columns into the sidecar buffer.

    Returns a shallow copy with ``columns_inline`` replaced by a
    ``columns`` table of ``[offset, length]`` windows (the payload
    itself is never mutated -- callers may retain and re-save it).
    """
    if not (isinstance(payload, dict) and "columns_inline" in payload):
        return payload
    payload = dict(payload)
    inline = payload.pop("columns_inline")
    table = {}
    for name in sorted(inline):
        blob = inline[name]
        table[name] = [len(sidecar), len(blob)]
        sidecar += blob
    payload["columns"] = table
    return payload


def write_snapshot(path, meta, records):
    """Write a snapshot atomically.

    ``meta`` is the header's system-level metadata; ``records`` maps
    component name -> JSON-serializable payload and must cover
    :data:`REQUIRED_RECORDS`; :data:`OPTIONAL_RECORDS` entries are
    written when present.  Payloads carrying ``columns_inline`` byte
    columns get those written to the binary sidecar (committed before
    the main file; an empty sidecar is not written at all and any stale
    one is removed).
    """
    missing = [name for name in REQUIRED_RECORDS if name not in records]
    if missing:
        raise SnapshotError(f"snapshot is missing records: {missing}")
    ordered = [name for name in REQUIRED_RECORDS + OPTIONAL_RECORDS
               if name in records]
    sidecar = bytearray()
    encoded = {
        name: _externalize_columns(records[name], sidecar)
        for name in ordered
    }
    header = {
        "record": "header",
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "meta": meta,
    }
    sidecar_path = sidecar_file_name(path)
    if sidecar:
        header["sidecar"] = {
            "file": os.path.basename(sidecar_path),
            "bytes": len(sidecar),
        }
        sidecar_tmp = f"{sidecar_path}.tmp"
        with open(sidecar_tmp, "wb") as handle:
            handle.write(sidecar)
        os.replace(sidecar_tmp, sidecar_path)
    else:
        try:
            os.remove(sidecar_path)
        except OSError:
            pass
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(header) + "\n")
        for name in ordered:
            record = {"record": name, "payload": encoded[name]}
            handle.write(_dumps(record) + "\n")
    os.replace(tmp_path, path)


def _read_header(line, path):
    try:
        header = _loads(line)
    except ValueError as error:  # stdlib and orjson decode errors alike
        raise SnapshotError(f"{path}: header is not valid JSON") from error
    if not isinstance(header, dict) or header.get("record") != "header":
        raise SnapshotError(f"{path}: first record must be the header")
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path}: not a {SNAPSHOT_FORMAT} file "
            f"(format={header.get('format')!r})"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path}: unsupported snapshot version "
            f"{header.get('version')!r} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return header


def _attach_sidecar(header, path, sidecar):
    """The sidecar buffer a version-4 header calls for, or ``None``.

    ``sidecar`` is an optional caller-provided pre-attached buffer
    (e.g. a shared-memory segment holding the same bytes); otherwise
    the announced file is memory-mapped.  Either way the buffer must
    cover the announced byte count -- a short file means the snapshot
    pair is torn.
    """
    announced = header.get("sidecar")
    if announced is None:
        return None
    expected = announced.get("bytes", 0)
    if sidecar is None:
        sidecar_path = os.path.join(
            os.path.dirname(os.fspath(path)) or ".", announced["file"]
        )
        try:
            sidecar = Sidecar.from_file(sidecar_path)
        except FileNotFoundError:
            raise SnapshotError(
                f"{path}: missing sidecar file {announced['file']!r}"
            ) from None
    if len(sidecar) < expected:
        raise SnapshotError(
            f"{path}: sidecar holds {len(sidecar)} bytes, "
            f"header announces {expected} (torn snapshot pair)"
        )
    return sidecar


def read_snapshot(path, sidecar=None):
    """Read and validate a snapshot; returns ``(meta, records)``.

    ``records`` maps component name -> payload.  When the header
    announces a binary sidecar, the attached buffer is returned under
    ``records[SIDECAR_KEY]`` (pass ``sidecar`` to substitute an
    already-attached buffer, e.g. a shared-memory segment).  Raises
    :class:`SnapshotError` on format/version mismatch, unknown record
    types, or missing components.
    """
    meta, records = None, {}
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if meta is None:
                header = _read_header(line, path)
                meta = header.get("meta", {})
                attached = _attach_sidecar(header, path, sidecar)
                if attached is not None:
                    records[SIDECAR_KEY] = attached
                continue
            try:
                record = _loads(line)
            except ValueError as error:
                raise SnapshotError(
                    f"{path}:{number}: torn record (invalid JSON)"
                ) from error
            name = record.get("record") if isinstance(record, dict) else None
            if name not in _KNOWN_RECORDS:
                raise SnapshotError(
                    f"{path}:{number}: unknown record type {name!r}"
                )
            if "payload" not in record:
                raise SnapshotError(
                    f"{path}:{number}: record {name!r} has no payload"
                )
            records[name] = record["payload"]
    if meta is None:
        raise SnapshotError(f"{path}: empty snapshot file")
    missing = [name for name in REQUIRED_RECORDS if name not in records]
    if missing:
        raise SnapshotError(f"{path}: missing records: {missing}")
    return meta, records


SHARDED_FORMAT = "seda-sharded-snapshot"
SHARDED_VERSION = 1
SHARDED_MANIFEST = "manifest.json"

#: Shard files are named by zero-padded shard index; re-saves into a
#: directory that already holds a manifest use a bumped *generation*
#: so the old files stay intact until the new manifest commits.
SHARD_FILE_TEMPLATE = "shard-{index:04d}.snapshot"
SHARD_FILE_GENERATION_TEMPLATE = "shard-{index:04d}.g{generation}.snapshot"


def shard_file_name(index, generation=0):
    """The shard file name for ``index`` at ``generation``."""
    if generation:
        return SHARD_FILE_GENERATION_TEMPLATE.format(
            index=index, generation=generation
        )
    return SHARD_FILE_TEMPLATE.format(index=index)


def next_shard_generation(directory):
    """The generation a save into ``directory`` must write.

    A fresh (or manifest-less) directory starts at generation 0 --
    plain ``shard-NNNN.snapshot`` names.  A directory with a readable
    manifest gets the next generation, so the re-save writes entirely
    *new* shard files and the old manifest keeps pointing at intact
    old ones until the new manifest atomically replaces it -- a crash
    mid-re-save can never leave a manifest referencing half-rewritten
    shards.
    """
    path = os.path.join(directory, SHARDED_MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = _loads(handle.read())
        if not isinstance(manifest, dict):
            return 0  # valid JSON but not a manifest: overwrite as fresh
        return int(manifest.get("generation", 0)) + 1
    except (FileNotFoundError, ValueError, TypeError):
        return 0


def write_sharded_manifest(directory, meta, documents, shard_files,
                           generation=0):
    """Write a sharded snapshot's ``manifest.json`` atomically.

    ``documents`` is the global-order ``[name, shard_index,
    node_count]`` table; ``shard_files`` the per-shard file names
    (relative to ``directory``).  Callers write the shard files
    *first*: the manifest is the commit record.
    """
    manifest = {
        "format": SHARDED_FORMAT,
        "version": SHARDED_VERSION,
        "generation": generation,
        "meta": meta,
        "documents": [list(row) for row in documents],
        "shard_files": list(shard_files),
    }
    path = os.path.join(directory, SHARDED_MANIFEST)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(manifest) + "\n")
    os.replace(tmp_path, path)
    return path


def read_sharded_manifest(directory):
    """Read and validate ``manifest.json``; returns the manifest dict.

    Raises :class:`SnapshotError` on a missing manifest, a foreign
    format string, an unsupported version, or a manifest whose listed
    shard files are absent.
    """
    path = os.path.join(directory, SHARDED_MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        raise SnapshotError(
            f"{directory}: not a sharded snapshot (no {SHARDED_MANIFEST})"
        ) from None
    try:
        manifest = _loads(text)
    except ValueError as error:
        raise SnapshotError(f"{path}: manifest is not valid JSON") from error
    if not isinstance(manifest, dict) or (
        manifest.get("format") != SHARDED_FORMAT
    ):
        raise SnapshotError(
            f"{path}: not a {SHARDED_FORMAT} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})"
        )
    if manifest.get("version") != SHARDED_VERSION:
        raise SnapshotError(
            f"{path}: unsupported sharded snapshot version "
            f"{manifest.get('version')!r} (supported: {SHARDED_VERSION})"
        )
    for name in ("documents", "shard_files"):
        if not isinstance(manifest.get(name), list):
            raise SnapshotError(f"{path}: manifest is missing {name!r}")
    shard_count = len(manifest["shard_files"])
    for row in manifest["documents"]:
        if not (
            isinstance(row, list) and len(row) == 3
            and isinstance(row[1], int) and 0 <= row[1] < shard_count
            and isinstance(row[2], int) and row[2] >= 0
        ):
            raise SnapshotError(
                f"{path}: malformed document row {row!r} "
                f"(need [name, shard_index < {shard_count}, node_count])"
            )
    missing = [
        shard_file for shard_file in manifest["shard_files"]
        if not os.path.exists(os.path.join(directory, shard_file))
    ]
    if missing:
        raise SnapshotError(
            f"{directory}: manifest lists missing shard files: {missing}"
        )
    return manifest


#: Collection-level retained query statistics in a sharded snapshot
#: directory.  The per-shard snapshot files cannot carry this -- the
#: registry spans shards (per-shard skew is *inside* each fingerprint's
#: record) -- so it rides alongside the manifest.
OBS_STATE_FILE = "obs.json"


def write_obs_state(directory, payload):
    """Atomically write the registry payload as ``obs.json``."""
    path = os.path.join(directory, OBS_STATE_FILE)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(_dumps(payload) + "\n")
    os.replace(tmp_path, path)
    return path


def read_obs_state(directory):
    """The ``obs.json`` payload, or ``None`` when absent/unreadable.

    Observability history is advisory: a torn or missing file must
    never block restoring the collection itself.
    """
    path = os.path.join(directory, OBS_STATE_FILE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = _loads(handle.read())
    except (FileNotFoundError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def clear_obs_state(directory):
    """Remove a stale ``obs.json`` (re-save with observability off)."""
    try:
        os.remove(os.path.join(directory, OBS_STATE_FILE))
    except OSError:
        pass


def sharded_snapshot_info(directory):
    """Manifest metadata plus per-shard file sizes, loading nothing.

    Returns ``{"meta": ..., "shards": [(file, bytes, documents,
    nodes), ...], "documents": N, "nodes": N, "total_bytes": N}`` --
    what ``repro shard info`` prints.  Only the manifest is read; the
    shard snapshots are just ``stat``-ed, so inspecting a huge sharded
    collection stays O(manifest).
    """
    manifest = read_sharded_manifest(directory)
    documents = manifest["documents"]
    per_shard_docs = [0] * len(manifest["shard_files"])
    per_shard_nodes = [0] * len(manifest["shard_files"])
    for _name, shard_index, node_count in documents:
        per_shard_docs[shard_index] += 1
        per_shard_nodes[shard_index] += node_count
    shards = []
    total = 0
    for index, shard_file in enumerate(manifest["shard_files"]):
        size = os.path.getsize(os.path.join(directory, shard_file))
        total += size
        shards.append(
            (shard_file, size, per_shard_docs[index], per_shard_nodes[index])
        )
    return {
        "meta": manifest.get("meta", {}),
        "shards": shards,
        "documents": len(documents),
        "nodes": sum(per_shard_nodes),
        "total_bytes": total,
    }


def snapshot_info(path):
    """Header metadata plus per-record sizes, without restoring anything.

    Returns ``{"meta": ..., "records": [(name, bytes), ...],
    "total_bytes": N, "sidecar_bytes": N}`` -- what ``repro snapshot
    info`` prints.  ``total_bytes`` is the JSON file alone;
    ``sidecar_bytes`` (0 for pre-version-4 files) is the binary column
    payload riding alongside it.  Streams the file line by line, so
    inspecting a large snapshot stays cheap.
    """
    meta = None
    sizes = []
    total = 0
    sidecar_bytes = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            total += len(line.encode("utf-8"))
            if meta is None:
                header = _read_header(stripped, path)
                meta = header.get("meta", {})
                sidecar_bytes = header.get("sidecar", {}).get("bytes", 0)
                continue
            try:
                record = _loads(stripped)
            except ValueError as error:
                raise SnapshotError(
                    f"{path}: torn record (invalid JSON)"
                ) from error
            sizes.append(
                (record.get("record"), len(stripped.encode("utf-8")))
            )
    if meta is None:
        raise SnapshotError(f"{path}: empty snapshot file")
    return {
        "meta": meta,
        "records": sizes,
        "total_bytes": total,
        "sidecar_bytes": sidecar_bytes,
    }
