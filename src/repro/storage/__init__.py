"""Storage substrate: SEDA's stand-in for DB2 pureXML.

The paper stores XML in DB2 pureXML and keeps auxiliary indexes beside
it (Figure 4).  This package provides the operations SEDA actually
needs from that store:

* :class:`DocumentStore` -- persistent collection of documents plus
  registered link edges (JSON-lines on disk, everything in memory at
  runtime).
* :class:`NodeStore` -- Dewey-ordered node streams per tag and per
  root-to-leaf path, feeding the holistic twig joins of Section 7.
* :class:`CollectionCatalog` -- collection statistics used by summaries
  and by the experiment harness.
* :mod:`~repro.storage.snapshot` -- whole-system snapshots: one
  versioned JSON-lines file holding every Figure 4 component
  (collection nodes, data-graph edges, both full-text indexes, the
  node store, dataguides, and the cube registry) behind a header record
  carrying a format string and version number.  ``Seda.save``/
  ``Seda.load`` ride on it so a cold start skips parsing, link
  discovery, index building, and dataguide mining entirely; see the
  module docstring for the record-by-record format specification.
"""

from repro.storage.catalog import CollectionCatalog
from repro.storage.document_store import DocumentStore
from repro.storage.node_store import NodeStore
from repro.storage.snapshot import (
    SnapshotError,
    fsck_report,
    read_snapshot,
    snapshot_info,
    write_snapshot,
)
from repro.storage.wal import WALError, WriteAheadLog, replay_wal, verify_wal

__all__ = [
    "CollectionCatalog",
    "DocumentStore",
    "NodeStore",
    "SnapshotError",
    "WALError",
    "WriteAheadLog",
    "fsck_report",
    "read_snapshot",
    "replay_wal",
    "snapshot_info",
    "verify_wal",
    "write_snapshot",
]
