"""Storage substrate: SEDA's stand-in for DB2 pureXML.

The paper stores XML in DB2 pureXML and keeps auxiliary indexes beside
it (Figure 4).  This package provides the operations SEDA actually
needs from that store:

* :class:`DocumentStore` -- persistent collection of documents plus
  registered link edges (JSON-lines on disk, everything in memory at
  runtime).
* :class:`NodeStore` -- Dewey-ordered node streams per tag and per
  root-to-leaf path, feeding the holistic twig joins of Section 7.
* :class:`CollectionCatalog` -- collection statistics used by summaries
  and by the experiment harness.
"""

from repro.storage.catalog import CollectionCatalog
from repro.storage.document_store import DocumentStore
from repro.storage.node_store import NodeStore

__all__ = ["CollectionCatalog", "DocumentStore", "NodeStore"]
