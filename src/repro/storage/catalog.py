"""Collection catalog: the statistics panel behind the experiments.

Exposes, for a collection, the figures the paper reports about its
datasets -- document counts, node counts, distinct root-to-leaf paths,
per-path occurrence and document frequencies, and the long-tail path
histogram that motivates SEDA (Section 1: "We observe a long tail of
such infrequent paths, which makes shredding all the attributes into a
data warehouse very difficult").
"""

import collections


class CollectionCatalog:
    """Read-only statistics over a :class:`DocumentCollection`."""

    def __init__(self, collection):
        self.collection = collection

    def summary(self):
        """Headline statistics as a plain dict."""
        return {
            "documents": len(self.collection),
            "nodes": self.collection.node_count,
            "distinct_paths": self.collection.path_count(),
        }

    def path_frequencies(self):
        """List of ``(path, occurrences, document_frequency)`` sorted by
        descending occurrence count -- the ordering context summaries use."""
        rows = []
        for path in self.collection.paths():
            stats = self.collection.path_stats(path)
            rows.append((path, stats.occurrences, stats.document_frequency))
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def long_tail(self, document_threshold=None):
        """Paths whose document frequency is below ``document_threshold``.

        Defaults to 25% of the collection size -- the "long tail" of
        infrequent paths the paper calls out (e.g. the refugee
        country-of-origin path present in only 186 of 1600 documents).
        """
        if document_threshold is None:
            document_threshold = max(1, len(self.collection) // 4)
        tail = []
        for path in self.collection.paths():
            stats = self.collection.path_stats(path)
            if stats.document_frequency < document_threshold:
                tail.append((path, stats.document_frequency))
        tail.sort(key=lambda row: (row[1], row[0]))
        return tail

    def depth_histogram(self):
        """Histogram of path depth (number of steps) -> distinct paths."""
        histogram = collections.Counter()
        for path in self.collection.paths():
            depth = path.count("/")
            histogram[depth] += 1
        return dict(histogram)

    def tag_histogram(self):
        """Histogram of leaf tag name -> distinct paths ending in it."""
        histogram = collections.Counter()
        for path in self.collection.paths():
            histogram[path.rsplit("/", 1)[-1]] += 1
        return dict(histogram)
