"""Write-ahead document log: no acknowledged batch survives only in RAM.

Snapshots make cold starts cheap, but between snapshots every
``add_documents`` batch lives only in process memory -- a crash loses
it even though the caller was told it succeeded.  The write-ahead log
closes that window: the durable systems append each ingestion batch
here -- fsynced -- *before* any index mutates, truncate the log when a
snapshot save commits (the snapshot now contains those batches), and
replay it on load, so recovery always lands on snapshot + every
acknowledged batch since.

File format (binary)::

    SEDAWAL1                                   # 8-byte magic
    <u32 length> <u32 crc32> <payload bytes>   # record 0
    <u32 length> <u32 crc32> <payload bytes>   # record 1
    ...

Little-endian prefixes; ``crc32`` (zlib) covers the payload bytes.
Payloads are UTF-8 JSON dictionaries -- for document batches::

    {"op": "add_documents",
     "documents": [[name_or_null, xml_text], ...],
     "value_links": [spec.to_dict(), ...]}      # only when specs rode along

Recovery semantics (:func:`replay_wal`):

* A record whose payload runs past end-of-file, or whose length prefix
  is itself cut short, is a **torn final record** -- the crash hit
  mid-append, the batch was never acknowledged.  The file is truncated
  back to the last complete record and a warning is returned; nothing
  is lost that was ever promised.
* A record that is *complete on disk* but fails its CRC is
  **corruption**, not tearing -- bytes the log once acknowledged have
  rotted.  That raises :class:`WALError` (a
  :class:`~repro.storage.snapshot.SnapshotError`): silently dropping
  an acknowledged batch, or replaying garbage, would both be silent
  wrong answers.
* A missing file replays as empty: durability was simply not enabled
  (or the log was truncated by a snapshot save).

Appends go through the :mod:`repro.storage.durable` seams (write,
flush+fsync), so the fault-injection harness can tear an append at any
byte and the kill -9 crash harness can die inside one.
"""

import json
import os
import struct
import zlib

from repro.storage import durable
from repro.storage.snapshot import SnapshotError

WAL_MAGIC = b"SEDAWAL1"
_PREFIX = struct.Struct("<II")  # payload length, payload crc32

#: Conventional log location for a snapshot at ``path``.
WAL_SUFFIX = ".wal"

#: Conventional log name inside a sharded snapshot directory.
SHARDED_WAL_FILE = "wal.log"


class WALError(SnapshotError):
    """A write-ahead log is corrupt beyond torn-tail recovery."""


def wal_file_name(snapshot_path):
    """The conventional WAL path for the snapshot at ``snapshot_path``."""
    return f"{os.fspath(snapshot_path)}{WAL_SUFFIX}"


def sharded_wal_file_name(directory):
    """The conventional WAL path inside a sharded snapshot directory."""
    return os.path.join(directory, SHARDED_WAL_FILE)


def _write_record_bytes(handle, data):
    """Append one encoded record; the fault harness's torn-write seam."""
    handle.write(data)


class WriteAheadLog:
    """Appendable, checksummed, fsynced record log at one path."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._handle = None

    # -- writing --------------------------------------------------------------

    def _open(self):
        if self._handle is None or self._handle.closed:
            fresh = not os.path.exists(self.path)
            self._handle = open(self.path, "ab")
            if fresh or os.path.getsize(self.path) == 0:
                _write_record_bytes(self._handle, WAL_MAGIC)
                durable.fsync_file(self._handle)
                durable.fsync_directory(os.path.dirname(self.path))
        return self._handle

    def append(self, payload):
        """Durably append one JSON-serializable ``payload`` dict.

        Returns only after the record (length prefix, CRC, payload) is
        written *and fsynced*: when the caller acknowledges the batch,
        the batch is on disk.
        """
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        record = _PREFIX.pack(len(data), zlib.crc32(data)) + data
        handle = self._open()
        _write_record_bytes(handle, record)
        durable.fsync_file(handle)

    def truncate(self):
        """Reset the log to empty (a snapshot save absorbed its records).

        The file is cut back to the bare magic in place -- truncation
        after a successful rename-committed snapshot needs no atomicity
        of its own: replaying the old records over the new snapshot is
        prevented by the truncate happening only after the snapshot
        commit, and a crash *between* commit and truncate merely
        replays batches the snapshot already contains, which
        :meth:`~repro.system.Seda.save` callers guard by truncating
        before acknowledging the save.
        """
        self.close()
        with open(self.path, "wb") as handle:
            _write_record_bytes(handle, WAL_MAGIC)
            durable.fsync_file(handle)
        durable.fsync_directory(os.path.dirname(self.path))

    def close(self):
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    # -- reading --------------------------------------------------------------

    def records(self):
        """Replay this log; see :func:`replay_wal`."""
        return replay_wal(self.path)

    def __repr__(self):
        return f"WriteAheadLog({self.path!r})"


def replay_wal(path, repair=True):
    """Read every acknowledged record; returns ``(records, warning)``.

    ``records`` is the list of decoded payload dicts in append order.
    ``warning`` is ``None`` for a clean log, or a human-readable
    description of a torn final record -- in which case the file has
    been truncated back to its last complete record (``repair=False``
    reports without touching the file, for read-only verification).
    A missing file is an empty log.  Raises :class:`WALError` on a
    foreign magic or on mid-file corruption (a complete record whose
    CRC or JSON fails).
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return [], None
    if not blob:
        return [], None
    if not blob.startswith(WAL_MAGIC):
        if len(blob) < len(WAL_MAGIC) and WAL_MAGIC.startswith(blob):
            # A strict prefix of the magic: the crash hit the very
            # first append, inside log initialization.  Nothing was
            # ever acknowledged -- an empty log, not a foreign file.
            warning = (
                f"{path}: torn magic ({len(blob)}/{len(WAL_MAGIC)} "
                f"bytes; crash during log initialization, truncating)"
            )
            if repair:
                with open(path, "wb") as handle:
                    durable.fsync_file(handle)
            return [], warning
        raise WALError(
            f"{path}: not a write-ahead log "
            f"(magic {blob[:8]!r}, expected {WAL_MAGIC!r})"
        )
    records = []
    offset = len(WAL_MAGIC)
    total = len(blob)
    warning = None
    while offset < total:
        if offset + _PREFIX.size > total:
            warning = (
                f"{path}: torn final record at offset {offset} "
                f"(incomplete length prefix; truncating)"
            )
            break
        length, crc = _PREFIX.unpack_from(blob, offset)
        start = offset + _PREFIX.size
        end = start + length
        if end > total:
            warning = (
                f"{path}: torn final record at offset {offset} "
                f"(payload announces {length} bytes, file holds "
                f"{total - start}; truncating)"
            )
            break
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            raise WALError(
                f"{path}: record at offset {offset} fails its checksum "
                f"(stored {crc}, computed {zlib.crc32(payload)}) -- the "
                f"log is corrupt, not torn; restore from snapshot/backup"
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise WALError(
                f"{path}: record at offset {offset} passes its checksum "
                f"but does not decode as JSON ({error}); writer bug or "
                f"foreign file"
            ) from None
        if not isinstance(record, dict):
            raise WALError(
                f"{path}: record at offset {offset} is not an object "
                f"({type(record).__name__})"
            )
        records.append(record)
        offset = end
    if warning is not None and repair:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            durable.fsync_file(handle)
    return records, warning


def verify_wal(path):
    """Read-only health report for one log; never modifies the file.

    Returns ``{"present": bool, "records": n, "torn_tail": str|None,
    "error": str|None}`` -- the shape ``repro fsck`` renders.  A
    missing file is healthy (durability off / freshly truncated).
    """
    report = {"present": os.path.exists(path), "records": 0,
              "torn_tail": None, "error": None}
    if not report["present"]:
        return report
    try:
        records, warning = replay_wal(path, repair=False)
    except WALError as error:
        report["error"] = str(error)
        return report
    report["records"] = len(records)
    report["torn_tail"] = warning
    return report
