"""Durable file-write primitives: the storage layer's crash seams.

Every "atomic" writer in this package (snapshots, sharded manifests,
obs state, the write-ahead log) funnels its power-loss-sensitive
operations through the four functions here, for two reasons:

* **Correctness** -- a temp-file ``os.replace`` alone does not survive
  power loss: the rename can hit disk before the data does, leaving a
  committed name pointing at unwritten blocks.  The durable sequence is
  flush + ``fsync`` the temp file, ``os.replace``, then ``fsync`` the
  containing directory so the rename itself is persisted.
  :func:`replace_durably` is that sequence.
* **Testability** -- these module attributes are the monkeypatch seams
  the deterministic fault-injection harness
  (:mod:`repro.testing.faults`) wraps to simulate I/O errors, torn
  writes, and kill -9 at precise points.  Keeping the seams in one
  module means a single patch surface covers every durable writer.

``fsync_directory`` is best-effort: directory fsync is unsupported on
some platforms/filesystems, and a failed directory sync only widens
the crash window -- it never corrupts -- so errors are swallowed.
"""

import os


def fsync_file(handle):
    """Flush ``handle`` and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_directory(path):
    """Persist directory entries (renames/creates) under ``path``.

    Best-effort: platforms that cannot open or fsync a directory lose
    nothing but the tighter durability window.
    """
    try:
        fd = os.open(path if path else ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def replace(source, target):
    """Atomically rename ``source`` over ``target`` (the commit point)."""
    os.replace(source, target)


def replace_durably(source, target):
    """Commit ``source`` over ``target`` and persist the rename.

    The caller has already fsynced ``source``'s contents (via
    :func:`fsync_file` on the open handle); this performs the rename
    and then syncs the containing directory so a power cut after
    return cannot roll the commit back.
    """
    replace(source, target)
    fsync_directory(os.path.dirname(os.fspath(target)))


def write_bytes_durably(path, data):
    """Write ``data`` to ``path`` via fsynced temp file + durable rename."""
    tmp_path = f"{os.fspath(path)}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        fsync_file(handle)
    replace_durably(tmp_path, path)
