"""Dewey-ordered node access paths.

The twig processor of Section 7 consumes "data nodes from the full-text
search results in Dewey ID order, which can be directly used by the XML
twig processing".  The node store provides exactly those ordered
streams: all nodes for a tag, for a root-to-leaf path, or for an
arbitrary node-id set, each sorted by ``(doc_id, dewey)``.
"""

import bisect
import collections


class NodeStore:
    """Sorted per-tag and per-path node streams over a collection."""

    def __init__(self, collection):
        self.collection = collection
        self._by_tag = collections.defaultdict(list)
        self._by_path = collections.defaultdict(list)
        self._built_upto = 0
        self.refresh()

    def refresh(self):
        """Index any documents added since the last refresh."""
        for document in self.collection.documents[self._built_upto :]:
            for node in document.nodes:
                key = (node.doc_id, node.dewey)
                self._by_tag[node.tag].append((key, node.node_id))
                self._by_path[node.path].append((key, node.node_id))
        self._built_upto = len(self.collection.documents)
        # Documents are appended in order and nodes are generated in
        # document order, so the lists are already sorted; assert cheaply.

    # -- streams --------------------------------------------------------------

    def by_tag(self, tag):
        """Node ids with the given tag, in global Dewey order."""
        return [node_id for _key, node_id in self._by_tag.get(tag, ())]

    def by_path(self, path):
        """Node ids with the given root-to-leaf path, in Dewey order."""
        return [node_id for _key, node_id in self._by_path.get(path, ())]

    def tags(self):
        return sorted(self._by_tag)

    def paths(self):
        return sorted(self._by_path)

    def sort_dewey(self, node_ids):
        """Sort arbitrary node ids into global Dewey order."""
        collection = self.collection
        return sorted(
            node_ids,
            key=lambda node_id: (
                collection.node(node_id).doc_id,
                collection.node(node_id).dewey,
            ),
        )

    def descendants_in_path(self, ancestor_id, path):
        """Node ids on ``path`` that descend from ``ancestor_id``.

        Uses a binary search over the Dewey-ordered path stream: all
        descendants of a node are contiguous in Dewey order, directly
        after the node itself.
        """
        ancestor = self.collection.node(ancestor_id)
        stream = self._by_path.get(path, ())
        low_key = (ancestor.doc_id, ancestor.dewey)
        start = bisect.bisect_left(stream, (low_key, -1))
        result = []
        for key, node_id in stream[start:]:
            doc_id, dewey = key
            if doc_id != ancestor.doc_id:
                break
            if dewey == ancestor.dewey or ancestor.dewey.is_ancestor_of(dewey):
                result.append(node_id)
            else:
                break
        return result
