"""Dewey-ordered node access paths.

The twig processor of Section 7 consumes "data nodes from the full-text
search results in Dewey ID order, which can be directly used by the XML
twig processing".  The node store provides exactly those ordered
streams: all nodes for a tag, for a root-to-leaf path, or for an
arbitrary node-id set, each sorted by ``(doc_id, dewey)``.
"""

import bisect
import collections
import threading


class NodeStore:
    """Sorted per-tag and per-path node streams over a collection."""

    def __init__(self, collection):
        self.collection = collection
        self._by_tag = collections.defaultdict(list)
        self._by_path = collections.defaultdict(list)
        # Snapshot state: raw node-id lists awaiting materialization into
        # keyed entries; None outside the restore path.
        self._raw_by_tag = None
        self._raw_by_path = None
        # Serializes raw-stream materialization for concurrent readers.
        self._materialize_lock = threading.Lock()
        self._built_upto = 0
        self.refresh()

    def refresh(self):
        """Index any documents added since the last refresh."""
        for document in self.collection.documents[self._built_upto :]:
            for node in document.nodes:
                key = (node.doc_id, node.dewey)
                self._entries(self._by_tag, self._raw_by_tag, node.tag).append(
                    (key, node.node_id)
                )
                self._entries(
                    self._by_path, self._raw_by_path, node.path
                ).append((key, node.node_id))
        self._built_upto = len(self.collection.documents)
        # Documents are appended in order and nodes are generated in
        # document order, so the lists are already sorted; assert cheaply.

    def _entries(self, table, raw, key):
        """The mutable entry list for ``key``, materializing raw streams.

        Streams restored from a snapshot carry node ids only; the
        ``(doc_id, dewey)`` sort keys are recomputed here, per stream,
        on first use.
        """
        entries = table.get(key)
        if entries is None:
            # Double-checked locking: concurrent query workers racing on
            # the same key must not lose the raw stream to a second pop.
            with self._materialize_lock:
                entries = table.get(key)
                if entries is None:
                    ids = raw.get(key) if raw else None
                    if ids is None:
                        entries = table[key]  # defaultdict creates the list
                    else:
                        node = self.collection.node
                        entries = []
                        for node_id in ids:
                            data_node = node(node_id)
                            entries.append(
                                ((data_node.doc_id, data_node.dewey), node_id)
                            )
                        # Assign before discarding the raw stream, so
                        # lock-free readers always find the key in at
                        # least one of the two tables.
                        table[key] = entries
                        raw.pop(key, None)
        return entries

    # -- snapshot serialization -----------------------------------------------

    def to_dict(self):
        """Snapshot form: ordered node-id streams per tag and per path.

        The ``(doc_id, dewey)`` sort keys are omitted -- they are
        recomputed from the collection on load, per stream, on first
        use, keeping the snapshot compact and the restore lazy.
        """
        by_tag = {
            tag: [node_id for _key, node_id in entries]
            for tag, entries in self._by_tag.items()
        }
        if self._raw_by_tag:
            by_tag.update(self._raw_by_tag)
        by_path = {
            path: [node_id for _key, node_id in entries]
            for path, entries in self._by_path.items()
        }
        if self._raw_by_path:
            by_path.update(self._raw_by_path)
        return {
            "built_upto": self._built_upto,
            "by_tag": by_tag,
            "by_path": by_path,
        }

    @classmethod
    def from_dict(cls, payload, collection):
        """Rebuild a node store from :meth:`to_dict` over ``collection``."""
        store = cls.__new__(cls)
        store.collection = collection
        store._by_tag = collections.defaultdict(list)
        store._by_path = collections.defaultdict(list)
        store._raw_by_tag = payload["by_tag"]
        store._raw_by_path = payload["by_path"]
        store._materialize_lock = threading.Lock()
        store._built_upto = payload["built_upto"]
        return store

    # -- streams --------------------------------------------------------------

    def _stream(self, table, raw, key):
        """Entries for ``key`` without creating an empty list on misses.

        The final re-check covers a concurrent materializer moving the
        key between the two membership tests (it assigns to ``table``
        before popping ``raw``).
        """
        if key in table or (raw and key in raw) or key in table:
            return self._entries(table, raw, key)
        return ()

    def by_tag(self, tag):
        """Node ids with the given tag, in global Dewey order."""
        stream = self._stream(self._by_tag, self._raw_by_tag, tag)
        return [node_id for _key, node_id in stream]

    def by_path(self, path):
        """Node ids with the given root-to-leaf path, in Dewey order."""
        stream = self._stream(self._by_path, self._raw_by_path, path)
        return [node_id for _key, node_id in stream]

    def _known_keys(self, table, raw):
        """A stable copy of ``table``'s and ``raw``'s keys.

        Taken under the lock: materialization inserts into ``table``
        concurrently, and iterating a dict while it grows raises
        RuntimeError.
        """
        with self._materialize_lock:
            names = set(table)
            if raw:
                names |= set(raw)
        return names

    def tags(self):
        return sorted(self._known_keys(self._by_tag, self._raw_by_tag))

    def paths(self):
        return sorted(self._known_keys(self._by_path, self._raw_by_path))

    def sort_dewey(self, node_ids):
        """Sort arbitrary node ids into global Dewey order."""
        collection = self.collection
        return sorted(
            node_ids,
            key=lambda node_id: (
                collection.node(node_id).doc_id,
                collection.node(node_id).dewey,
            ),
        )

    def descendants_in_path(self, ancestor_id, path):
        """Node ids on ``path`` that descend from ``ancestor_id``.

        Uses a binary search over the Dewey-ordered path stream: all
        descendants of a node are contiguous in Dewey order, directly
        after the node itself.
        """
        ancestor = self.collection.node(ancestor_id)
        stream = self._stream(self._by_path, self._raw_by_path, path)
        low_key = (ancestor.doc_id, ancestor.dewey)
        start = bisect.bisect_left(stream, (low_key, -1))
        result = []
        for key, node_id in stream[start:]:
            doc_id, dewey = key
            if doc_id != ancestor.doc_id:
                break
            if dewey == ancestor.dewey or ancestor.dewey.is_ancestor_of(dewey):
                result.append(node_id)
            else:
                break
        return result
