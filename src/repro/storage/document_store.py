"""Persistent document store.

Documents are persisted as JSON lines -- one record per document with
its name and serialized XML -- plus one trailing record carrying the
collection's registered non-tree edges.  The format is deliberately
plain: it round-trips through our own parser/writer and diffs cleanly
in version control, which matters for the dataset fixtures.
"""

import json
import os

from repro.model.collection import DocumentCollection
from repro.model.graph import DataGraph, EdgeKind
from repro.xmlio import serialize


class DocumentStore:
    """A :class:`DocumentCollection` plus its data graph, saveable to disk."""

    def __init__(self, collection=None, graph=None):
        self.collection = collection or DocumentCollection()
        self.graph = graph or DataGraph(self.collection)

    # -- convenience ---------------------------------------------------------

    def add_document(self, source, name=None):
        return self.collection.add_document(source, name=name)

    def add_edge(self, source_id, target_id, kind, label=None):
        return self.graph.add_edge(source_id, target_id, kind, label=label)

    # -- persistence -----------------------------------------------------------

    def save(self, path):
        """Write the store to ``path`` (JSON lines)."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for document in self.collection.documents:
                record = {
                    "type": "document",
                    "name": document.name,
                    "xml": serialize(self._to_element(document)),
                }
                handle.write(json.dumps(record) + "\n")
            edges = [
                {
                    "source": [
                        self.collection.node(edge.source_id).doc_id,
                        str(self.collection.node(edge.source_id).dewey),
                    ],
                    "target": [
                        self.collection.node(edge.target_id).doc_id,
                        str(self.collection.node(edge.target_id).dewey),
                    ],
                    "kind": edge.kind.value,
                    "label": edge.label,
                }
                for edge in self.graph.edges
            ]
            handle.write(json.dumps({"type": "edges", "edges": edges}) + "\n")
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path):
        """Read a store previously written by :meth:`save`."""
        from repro.model.dewey import DeweyID

        store = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record["type"] == "document":
                    store.add_document(record["xml"], name=record["name"])
                elif record["type"] == "edges":
                    for edge in record["edges"]:
                        source = store.collection.node_by_ref(
                            edge["source"][0], DeweyID.parse(edge["source"][1])
                        )
                        target = store.collection.node_by_ref(
                            edge["target"][0], DeweyID.parse(edge["target"][1])
                        )
                        if source is None or target is None:
                            raise ValueError(
                                f"dangling edge in {path!r}: {edge!r}"
                            )
                        store.add_edge(
                            source.node_id,
                            target.node_id,
                            EdgeKind(edge["kind"]),
                            label=edge["label"],
                        )
                else:
                    raise ValueError(f"unknown record type {record['type']!r}")
        return store

    # -- reconstruction helpers -------------------------------------------------

    def _to_element(self, document):
        """Rebuild an Element tree from a document's data nodes."""
        from repro.xmlio.dom import Element

        def build(node):
            element = Element(node.tag)
            if node.direct_text:
                element.append(node.direct_text)
            for child_id in node.child_ids:
                child = self.collection.node(child_id)
                if child.is_attribute:
                    element.attributes[child.tag.lstrip("@")] = child.direct_text
                else:
                    element.append(build(child))
            return element

        return build(document.root)
