"""Read-only sidecar buffers: file-, bytes-, and shared-memory-backed.

A version-4 snapshot stores its byte columns in a binary *sidecar* file
next to the JSON-lines snapshot; component records carry only
``{key: [offset, length]}`` tables.  :class:`Sidecar` is the uniform
buffer handle the readers slice zero-copy ``memoryview`` windows from:

* :meth:`Sidecar.from_file` -- ``mmap`` the sidecar read-only, so the
  OS page cache backs lazy per-term decodes (and multiple processes
  mapping the same file already share one physical copy);
* :meth:`Sidecar.from_bytes` -- wrap an in-memory blob (worker-payload
  transfers, tests);
* :meth:`Sidecar.from_shared_memory` -- attach a
  ``multiprocessing.shared_memory`` segment published by
  :func:`publish_shared_memory`, the explicit N-shard-processes /
  one-copy configuration (see :mod:`repro.shard`).

Attaching on Python < 3.13 registers the segment with the resource
tracker, whose exit-time cleanup would unlink it under every *other*
process; attach-only handles unregister themselves, leaving lifetime
ownership with the publisher.
"""

import mmap


class Sidecar:
    """One snapshot's column bytes behind a zero-copy ``view`` API."""

    __slots__ = ("_buffer", "source", "_closer")

    def __init__(self, buffer, source=None, closer=None):
        self._buffer = buffer
        self.source = source
        self._closer = closer

    def view(self, offset, length):
        """A read-only ``memoryview`` window onto one column."""
        return memoryview(self._buffer)[offset:offset + length]

    def crc32(self, length=None):
        """CRC32 over the first ``length`` bytes (default: all of them).

        The version-5 snapshot header announces this value so loads
        detect a corrupted column payload before any window decodes;
        ``length`` is the announced byte count -- a shared-memory
        segment may round up to a page, so the checksum must cover the
        logical payload, not the allocation.
        """
        import zlib

        size = len(self) if length is None else min(length, len(self))
        return zlib.crc32(self.view(0, size))

    def __len__(self):
        return len(self._buffer)

    def close(self):
        """Release the backing resource (best effort: exported views
        keep an mmap/shared-memory buffer alive until they are gone)."""
        closer, self._closer = self._closer, None
        if closer is not None:
            try:
                closer()
            except BufferError:  # pragma: no cover - views still exported
                pass

    @classmethod
    def from_bytes(cls, data):
        return cls(bytes(data), source="<bytes>")

    @classmethod
    def from_file(cls, path):
        """Memory-map ``path`` read-only (empty files wrap as ``b''``)."""
        with open(path, "rb") as handle:
            try:
                buffer = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            except ValueError:  # cannot mmap an empty file
                return cls(b"", source=path)
        return cls(buffer, source=path, closer=buffer.close)

    @classmethod
    def from_shared_memory(cls, name):
        """Attach a published segment by name (read-only by convention).

        The attaching process does not own the segment: its resource-
        tracker registration is dropped so interpreter exit here never
        unlinks the memory under the publisher or sibling workers.
        """
        from multiprocessing import resource_tracker, shared_memory

        segment = shared_memory.SharedMemory(name=name)
        try:  # pragma: no cover - tracker internals vary per version
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        sidecar = cls(segment.buf, source=f"shm:{name}",
                      closer=segment.close)
        # Keep the SharedMemory object reachable for the buffer's life.
        sidecar._closer = _SegmentCloser(segment)
        return sidecar

    def __repr__(self):
        return f"Sidecar({len(self)} bytes from {self.source!r})"


class _SegmentCloser:
    """Holds the attached segment and closes it exactly once."""

    __slots__ = ("segment",)

    def __init__(self, segment):
        self.segment = segment

    def __call__(self):
        segment, self.segment = self.segment, None
        if segment is not None:
            segment.close()


def publish_shared_memory(name, data):
    """Create shared segment ``name`` holding ``data``; returns it.

    The caller owns the handle: keep it referenced while workers attach
    and call ``.close()`` + ``.unlink()`` when the fleet is done.  The
    allocated size may round up to a page; readers must slice by the
    published logical length, not the segment size.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, len(data))
    )
    segment.buf[:len(data)] = data
    return segment
