"""Memory-compact index representations shared across components.

The paper's indexes are dicts of Python objects; at scale, resident
memory -- not CPU -- is what caps shards-per-box.  This package holds
the compact building blocks every index layer shares:

* :mod:`~repro.compact.intern` -- a dense string-interning table
  assigning small int ids to tags, terms, and path labels;
* :mod:`~repro.compact.trie` -- a shared-prefix trie over interned
  label ids, replacing per-entry path strings;
* :mod:`~repro.compact.columns` -- delta/varint byte-column codecs for
  posting lists, sorted id sets, and impact streams;
* :mod:`~repro.compact.shm` -- read-only sidecar buffers (mmap or
  ``multiprocessing.shared_memory``) that let N shard processes share
  one copy of the columns;
* :mod:`~repro.compact.meminfo` -- a ``sys.getsizeof`` deep walker
  used by the memory benchmark and ``repro info``.

Every consumer decodes lazily, per key, exactly where the legacy
representation materialized its raw snapshot records -- so the public
index APIs and their results stay byte-identical.
"""

from repro.compact.columns import (
    decode_postings,
    decode_sorted_ids,
    decode_stream,
    encode_postings,
    encode_sorted_ids,
    encode_stream,
    posting_count,
)
from repro.compact.intern import StringTable
from repro.compact.meminfo import deep_sizeof
from repro.compact.shm import Sidecar, publish_shared_memory
from repro.compact.trie import PathTrie

__all__ = [
    "StringTable",
    "PathTrie",
    "Sidecar",
    "publish_shared_memory",
    "deep_sizeof",
    "encode_postings",
    "decode_postings",
    "posting_count",
    "encode_sorted_ids",
    "decode_sorted_ids",
    "encode_stream",
    "decode_stream",
]
