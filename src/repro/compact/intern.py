"""Dense string interning: one table, one small int id per string.

Tags, terms, and path labels repeat massively across the indexes (every
``/country/economy/...`` path shares its segments with thousands of
others).  A :class:`StringTable` stores each distinct string once and
hands out dense ids -- the currency the trie and the byte columns trade
in, so the expensive objects (strings) exist exactly once per process.

Reads are lock-free (GIL-atomic dict/list lookups); interning appends.
Like every index table in this repo, mutation is assumed to be
externally serialized with query execution (the single-writer
discipline) -- concurrent *readers* during an intern are safe because
the id is published to the dict only after the string is appended.
"""


class StringTable:
    """Bidirectional ``string <-> dense int id`` table."""

    __slots__ = ("_strings", "_ids")

    def __init__(self, strings=()):
        self._strings = list(strings)
        self._ids = {text: i for i, text in enumerate(self._strings)}

    def intern(self, text):
        """The id for ``text``, assigning the next dense id if new."""
        sid = self._ids.get(text)
        if sid is None:
            self._strings.append(text)
            sid = self._ids[text] = len(self._strings) - 1
        return sid

    def id_of(self, text):
        """The id for ``text``, or ``None`` if never interned."""
        return self._ids.get(text)

    def __getitem__(self, sid):
        return self._strings[sid]

    def __len__(self):
        return len(self._strings)

    def __contains__(self, text):
        return text in self._ids

    def to_list(self):
        """The strings in id order (a snapshot-friendly form)."""
        return list(self._strings)

    @classmethod
    def from_list(cls, strings):
        return cls(strings)

    def __repr__(self):
        return f"StringTable({len(self._strings)} strings)"
