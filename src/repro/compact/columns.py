"""Delta/varint byte-column codecs for postings, id sets, and streams.

Each codec turns one index entry (a posting list, a sorted id set, an
impact stream) into a single ``bytes`` column and back, losslessly:

* **Posting columns** store node-id *gaps* and position *gaps* as
  unsigned varints -- posting lists are sorted by node id and positions
  are ascending token ordinals, so gaps are small and most entries cost
  one or two bytes instead of a ~100-byte ``Posting`` object.
  :func:`posting_count` reads the document frequency from the first
  varint alone, so ``df`` probes never decode the column.
* **Sorted-id columns** (path-index entries) are plain gap varints.
* **Stream columns** pack scores as IEEE-754 little-endian doubles
  (exact float round-trip, same bytes :mod:`array` holds in memory)
  followed by zigzag-varint node-id deltas (stream ids are ordered by
  score, not id, so deltas can be negative).

Decoders accept ``bytes`` or any buffer (``memoryview`` over an mmap or
shared-memory sidecar), enabling zero-copy reads from a snapshot's
binary sidecar.
"""

import struct
from array import array


def _append_uvarint(buf, value):
    while value >= 0x80:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _read_uvarint(data, pos):
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def _zigzag(value):
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value):
    return -((value + 1) >> 1) if value & 1 else (value >> 1)


# -- posting columns ---------------------------------------------------------

def encode_postings(entries):
    """Encode ``[(node_id, positions), ...]`` (sorted by node id).

    Layout: ``count`` then per entry ``node-id gap``, ``len(positions)``,
    and the position gaps, all unsigned varints.
    """
    buf = bytearray()
    _append_uvarint(buf, len(entries))
    previous = 0
    for node_id, positions in entries:
        if node_id < previous:
            raise ValueError("posting node ids must be sorted ascending")
        _append_uvarint(buf, node_id - previous)
        previous = node_id
        _append_uvarint(buf, len(positions))
        last = 0
        for position in positions:
            if position < last:
                raise ValueError("positions must be sorted ascending")
            _append_uvarint(buf, position - last)
            last = position
    return bytes(buf)


def decode_postings(data):
    """Decode a posting column to ``[(node_id, [positions]), ...]``."""
    count, pos = _read_uvarint(data, 0)
    entries = []
    node_id = 0
    for _ in range(count):
        gap, pos = _read_uvarint(data, pos)
        node_id += gap
        length, pos = _read_uvarint(data, pos)
        positions = []
        value = 0
        for _ in range(length):
            step, pos = _read_uvarint(data, pos)
            value += step
            positions.append(value)
        entries.append((node_id, positions))
    return entries


def posting_count(data):
    """The entry count (document frequency) -- first varint only."""
    return _read_uvarint(data, 0)[0]


# -- sorted id columns -------------------------------------------------------

def encode_sorted_ids(ids):
    """Encode an ascending iterable of non-negative ints as gap varints."""
    buf = bytearray()
    ids = list(ids)
    _append_uvarint(buf, len(ids))
    previous = 0
    for value in ids:
        if value < previous:
            raise ValueError("ids must be sorted ascending")
        _append_uvarint(buf, value - previous)
        previous = value
    return bytes(buf)


def decode_sorted_ids(data):
    """Decode a sorted-id column back to a list of ints."""
    count, pos = _read_uvarint(data, 0)
    ids = []
    value = 0
    for _ in range(count):
        gap, pos = _read_uvarint(data, pos)
        value += gap
        ids.append(value)
    return ids


# -- impact stream columns ---------------------------------------------------

def encode_stream(scores, node_ids):
    """Encode parallel score/node-id sequences (an impact stream).

    Scores are packed little-endian doubles (bit-exact round trip);
    node ids follow score order -- not id order -- so their deltas are
    zigzag-coded signed varints.
    """
    scores = list(scores)
    node_ids = list(node_ids)
    if len(scores) != len(node_ids):
        raise ValueError("scores and node_ids must be parallel")
    buf = bytearray()
    _append_uvarint(buf, len(scores))
    buf += struct.pack(f"<{len(scores)}d", *scores)
    previous = 0
    for node_id in node_ids:
        _append_uvarint(buf, _zigzag(node_id - previous))
        previous = node_id
    return bytes(buf)


def decode_stream(data):
    """Decode a stream column to ``(array('d'), array('q'))``."""
    count, pos = _read_uvarint(data, 0)
    scores = array("d")
    scores.frombytes(bytes(data[pos:pos + 8 * count]))
    pos += 8 * count
    node_ids = array("q")
    value = 0
    for _ in range(count):
        delta, pos = _read_uvarint(data, pos)
        value += _unzigzag(delta)
        node_ids.append(value)
    return scores, node_ids
