"""A shared-prefix trie over interned path-label ids.

Root-to-leaf paths like ``/country/economy/import_partners/item`` share
long prefixes; storing each distinct path as its own Python string
duplicates every shared segment.  :class:`PathTrie` stores each prefix
node exactly once: two parallel ``array`` columns (parent id, interned
label id) plus one child-link dict keyed by ``parent`` and ``label``
packed into a single int (a tuple key would cost ~70 bytes per node),
with a :class:`~repro.compact.intern.StringTable` holding each label
string once.  A path is then just its terminal node's small int id -- the
currency the path index, the dataguides, and the byte columns trade in.

Splitting on ``/`` and re-joining are exact inverses for *any* string,
so ``render(insert(p)) == p`` holds universally (an absolute path's
leading slash becomes an empty first label).  Rendered strings are
cached per node; inserts never move or relabel existing nodes, so
cached renders stay valid forever.

Concurrency matches the repo-wide discipline: lookups and renders are
lock-free GIL-atomic reads, inserts are assumed externally serialized
with query execution (single writer).
"""

from array import array

from repro.compact.intern import StringTable

#: Child-link keys pack ``(parent, label)`` as ``parent << SHIFT |
#: label``.  Label ids are dense interned-table indexes; corpora stay
#: far below 2**30 distinct labels, and parent ids above the shift just
#: grow the int -- packing never collides, it only stops being small.
_KEY_SHIFT = 30


class PathTrie:
    """Paths as small int ids over a shared label table."""

    __slots__ = ("labels", "_parent", "_label", "_children", "_terminal",
                 "_count", "_render_cache")

    def __init__(self, labels=None):
        #: The label table may be shared across tries and indexes -- one
        #: table per system keeps every segment string unique in memory.
        self.labels = labels if labels is not None else StringTable()
        self._parent = array("i", (-1,))  # node id -> parent node id
        self._label = array("i", (-1,))   # node id -> interned label id
        self._children = {}               # packed (parent, label) -> node
        self._terminal = bytearray(1)     # node id -> ends-a-path flag
        self._count = 0                   # flags set in _terminal
        self._render_cache = {}           # node id -> rendered path string

    # -- construction --------------------------------------------------------

    def insert(self, path):
        """Insert ``path``; returns its (stable) terminal node id."""
        node = 0
        children = self._children
        for part in path.split("/"):
            label = self.labels.intern(part)
            key = node << _KEY_SHIFT | label
            child = children.get(key)
            if child is None:
                child = len(self._parent)
                self._parent.append(node)
                self._label.append(label)
                self._terminal.append(0)
                children[key] = child
            node = child
        if not self._terminal[node]:
            self._terminal[node] = 1
            self._count += 1
        return node

    # -- lookups -------------------------------------------------------------

    def find(self, path):
        """The terminal node id for ``path``, or ``None`` if absent."""
        node = 0
        id_of = self.labels.id_of
        children = self._children
        for part in path.split("/"):
            label = id_of(part)
            if label is None:
                return None
            node = children.get(node << _KEY_SHIFT | label)
            if node is None:
                return None
        return node if self._terminal[node] else None

    def __contains__(self, path):
        return self.find(path) is not None

    def render(self, node_id):
        """The path string for a node id (cached; exact round trip)."""
        cached = self._render_cache.get(node_id)
        if cached is None:
            parts = []
            parent = self._parent
            label = self._label
            labels = self.labels
            node = node_id
            while node:
                parts.append(labels[label[node]])
                node = parent[node]
            cached = self._render_cache[node_id] = "/".join(reversed(parts))
        return cached

    def paths(self):
        """Every inserted path, rendered (in node-id order)."""
        return [self.render(node) for node, flag in enumerate(self._terminal)
                if flag]

    def terminal_ids(self):
        """The terminal node ids (one per inserted path)."""
        return {node for node, flag in enumerate(self._terminal) if flag}

    def __len__(self):
        return self._count

    @property
    def node_count(self):
        """Total trie nodes including the root and interior prefixes."""
        return len(self._parent)

    def __repr__(self):
        return (
            f"PathTrie({self._count} paths, "
            f"{self.node_count} nodes, {len(self.labels)} labels)"
        )
