"""Deep resident-size estimation via a ``sys.getsizeof`` walk.

The memory benchmark and ``repro info`` both need an honest,
representation-agnostic byte count for "this table and everything it
owns".  :func:`deep_sizeof` walks containers, ``__dict__``/``__slots__``
objects, arrays, and buffers, counting every distinct object once
(identity-deduplicated, so shared strings and interned ints are not
double-billed -- the same rule for the legacy and the compact layouts,
which is what makes their ratio meaningful).
"""

import sys
from array import array

_ATOMIC = (str, bytes, bytearray, int, float, complex, bool, type(None),
           array, memoryview, range)


def _slot_names(cls):
    names = []
    for base in type.mro(cls):
        slots = base.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


def deep_sizeof(*objects):
    """Total ``sys.getsizeof`` bytes over the object graph(s), deduped.

    ``memoryview`` is counted at its own (view) size only -- the buffer
    it exposes is owned elsewhere (an mmap or shared-memory segment
    shared across processes) and would misattribute shared bytes.
    """
    seen = set()
    total = 0
    stack = list(objects)
    while stack:
        obj = stack.pop()
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic C objects
            continue
        if isinstance(obj, _ATOMIC):
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            for name in _slot_names(type(obj)):
                value = getattr(obj, name, None)
                if value is not None:
                    stack.append(value)
    return total
