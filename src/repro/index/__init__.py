"""Indexing substrate: SEDA's stand-in for Lucene (Figure 4, Section 5).

Two indexes back the system:

* :class:`InvertedIndex` -- node-level full-text index.  Posting lists
  map terms to the data nodes whose direct text contains them, in
  global Dewey order, with in-node positions for phrase queries and
  term frequencies for ranking.  This feeds the top-k search unit.
* :class:`PathIndex` -- the Figure 8 index.  Every distinct
  root-to-leaf path is a "virtual document"; posting lists map content
  keywords (and tag names) to the set of paths they occur in.  Per the
  paper's stated design choice, per-path occurrence counts are *not*
  duplicated into the posting lists -- they live in the document store
  (our :class:`~repro.model.collection.DocumentCollection` path table).

:class:`IndexBuilder` populates both from a collection in one pass.
:class:`ImpactStreamStore` sits on top of the inverted index: it caches
the top-k unit's per-term score streams in columnar, impact-sorted form
per graph version, shared read-only across query workers and persisted
through snapshots.
"""

from repro.index.builder import IndexBuilder
from repro.index.inverted import InvertedIndex, Posting
from repro.index.path_index import PathIndex
from repro.index.streams import ImpactStream, ImpactStreamStore

__all__ = [
    "ImpactStream",
    "ImpactStreamStore",
    "IndexBuilder",
    "InvertedIndex",
    "PathIndex",
    "Posting",
]
