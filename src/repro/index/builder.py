"""Single-pass construction of both SEDA indexes."""

from repro.index.inverted import InvertedIndex
from repro.index.path_index import PathIndex
from repro.text import Analyzer


class IndexBuilder:
    """Builds the inverted index and path index for a collection.

    Incremental: ``build()`` indexes only documents added since the
    previous call, so datasets can be streamed in.

    Indexing is where the scoring pipeline's build-time work happens:
    each ``InvertedIndex.add_node`` call records positional postings
    (term frequencies) *and* the node's analyzed token count (the
    tf-idf length norm), so query-time scoring reads precomputed
    numbers instead of re-analyzing node text.
    """

    def __init__(self, collection, analyzer=None, inverted=None, paths=None,
                 built_upto=0, trie=None, compact=False):
        """``inverted``/``paths``/``built_upto`` re-attach prebuilt indexes
        (the snapshot-restore path) so that later :meth:`build` calls stay
        incremental instead of re-indexing from scratch.

        ``trie`` seeds the path index with a (possibly shared)
        :class:`~repro.compact.trie.PathTrie`; ``compact=True`` folds
        both indexes into their byte-column form at the end of every
        :meth:`build` pass, so a freshly built system holds columns, not
        per-posting objects.
        """
        self.collection = collection
        self.analyzer = analyzer or Analyzer()
        self.inverted = (
            inverted if inverted is not None else InvertedIndex(self.analyzer)
        )
        self.paths = (
            paths if paths is not None
            else PathIndex(self.analyzer, trie=trie)
        )
        self.compact = compact
        self._built_upto = built_upto

    def build(self):
        """Index pending documents; returns (inverted, path) indexes."""
        pending = self.collection.documents[self._built_upto:]
        for document in pending:
            for node in document.nodes:
                self.paths.add_node(node.path, node.tag, node.direct_text)
                if node.direct_text:
                    self.inverted.add_node(node.node_id, node.direct_text)
        self._built_upto = len(self.collection.documents)
        if self.compact and pending:
            self.inverted.compact()
            self.paths.compact()
        return self.inverted, self.paths
