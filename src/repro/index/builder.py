"""Single-pass construction of both SEDA indexes."""

from repro.index.inverted import InvertedIndex
from repro.index.path_index import PathIndex
from repro.text import Analyzer


class IndexBuilder:
    """Builds the inverted index and path index for a collection.

    Incremental: ``build()`` indexes only documents added since the
    previous call, so datasets can be streamed in.
    """

    def __init__(self, collection, analyzer=None):
        self.collection = collection
        self.analyzer = analyzer or Analyzer()
        self.inverted = InvertedIndex(self.analyzer)
        self.paths = PathIndex(self.analyzer)
        self._built_upto = 0

    def build(self):
        """Index pending documents; returns (inverted, path) indexes."""
        for document in self.collection.documents[self._built_upto :]:
            for node in document.nodes:
                self.paths.add_node(node.path, node.tag, node.direct_text)
                if node.direct_text:
                    self.inverted.add_node(node.node_id, node.direct_text)
        self._built_upto = len(self.collection.documents)
        return self.inverted, self.paths
