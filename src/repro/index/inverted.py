"""Node-level inverted index with positional postings.

Besides the postings themselves the index owns the ranking-side
statistics (term frequencies, length norms, idf).  Idf is a *corpus*
statistic -- ``log((N + 1) / (df + 1)) + 1`` over every indexed node --
so a sharded collection, whose documents are split across several
independent indexes, must not let each shard score against its own
``N`` and ``df``: :class:`GlobalTermStats` sums the statistics across
all shard indexes and :meth:`InvertedIndex.use_global_stats` redirects
idf lookups to it, which is what makes per-shard content scores
byte-identical to an unsharded build (see :mod:`repro.shard`).
"""

import math
import threading


class GlobalTermStats:
    """Corpus-wide ``df``/``N`` summed across several shard indexes.

    ``indexes`` is either a sequence of :class:`InvertedIndex` or a
    zero-argument callable producing one (the sharded system passes a
    callable so lazily restored shards are only loaded when a statistic
    is first needed).  Idf values are cached per term; any mutation of
    any participating index must call :meth:`invalidate` --
    :meth:`InvertedIndex.add_node` does so automatically for indexes
    wired via :meth:`InvertedIndex.use_global_stats`.
    """

    def __init__(self, indexes):
        self._source = indexes
        self._idf = {}

    def _iter_indexes(self):
        source = self._source
        return source() if callable(source) else source

    def invalidate(self):
        """Drop cached statistics (after any shard index mutation).

        The cache dict is *replaced*, not cleared: mutations are
        externally serialized with query execution (the system-wide
        single-writer discipline), but even a straggling reader that
        raced the flip can then only write its stale value into the
        orphaned dict -- post-invalidation readers always recompute
        into the fresh one.
        """
        self._idf = {}

    @property
    def indexed_nodes(self):
        """Total indexed nodes across all shards (the global ``N``).

        Recomputed per call -- an O(shards) sum, far cheaper than the
        per-term df it accompanies, and never cached so it cannot go
        stale.
        """
        return sum(index.indexed_nodes for index in self._iter_indexes())

    def document_frequency(self, term):
        """Global number of nodes whose direct text contains ``term``."""
        return sum(
            index.document_frequency(term) for index in self._iter_indexes()
        )

    def inverse_document_frequency(self, term):
        """The exact idf an unsharded index over the union computes."""
        cache = self._idf
        idf = cache.get(term)
        if idf is None:
            df = self.document_frequency(term)
            idf = math.log((self.indexed_nodes + 1) / (df + 1)) + 1.0
            cache[term] = idf
        return idf

    def __repr__(self):
        return f"GlobalTermStats({len(self._idf)} cached terms)"


class Posting:
    """One node's occurrence list for one term.

    ``positions`` are token ordinals within the node's analyzed direct
    text, enabling exact phrase matching.
    """

    __slots__ = ("node_id", "positions")

    def __init__(self, node_id, positions):
        self.node_id = node_id
        self.positions = tuple(positions)

    @property
    def term_frequency(self):
        return len(self.positions)

    def __eq__(self, other):
        if not isinstance(other, Posting):
            return NotImplemented
        return self.node_id == other.node_id and self.positions == other.positions

    def __repr__(self):
        return f"Posting(node={self.node_id}, positions={self.positions})"


class InvertedIndex:
    """Term -> Dewey-ordered posting list over data nodes.

    Global node ids are assigned in document order as documents are
    added, so posting lists sorted by node id are automatically in
    global Dewey order -- the order the twig processor consumes.
    """

    def __init__(self, analyzer):
        self.analyzer = analyzer
        self._postings = {}
        # Raw snapshot records pending materialization; posting lists are
        # rebuilt per term on first access so that loading a snapshot does
        # not pay for vocabulary the session never queries.  The lock
        # serializes that pop-and-rebuild step: concurrent query workers
        # racing on the same term must not lose the raw record.
        self._raw_postings = None
        self._materialize_lock = threading.Lock()
        self._indexed_nodes = 0
        # Ranking-side precomputation, maintained at build time so the
        # query loop never re-analyzes node text:
        #   _node_lengths  node_id -> analyzed token count (the tf-idf
        #                  length norm is its square root); None means
        #                  "derive lazily from postings" (old snapshots).
        #   _tf_maps       term -> {node_id: tf} random-access tables,
        #                  built per term on first use.
        #   _idf_cache     term -> idf, valid until the next add_node
        #                  (the only mutation that changes df or N).
        self._node_lengths = {}
        self._tf_maps = {}
        self._idf_cache = {}
        # When set (sharded collections), idf reads corpus-wide df/N
        # from here instead of this index's own counters.
        self._global_stats = None

    # -- construction -------------------------------------------------------

    def add_node(self, node_id, text):
        """Index one node's direct text; no-op for empty text."""
        tokens = self.analyzer.analyze(text)
        if not tokens:
            return
        by_term = {}
        for token in tokens:
            by_term.setdefault(token.text, []).append(token.position)
        for term, positions in by_term.items():
            self._materialized(term).append(Posting(node_id, positions))
            self._tf_maps.pop(term, None)
        self._ensure_node_lengths()[node_id] = len(tokens)
        self._idf_cache.clear()
        if self._global_stats is not None:
            # df/N changed for the whole sharded corpus, not just here.
            self._global_stats.invalidate()
        self._indexed_nodes += 1

    def _materialized(self, term):
        """The mutable posting list for ``term``, creating it if needed.

        Thread-safe via double-checked locking: the fast path is one
        (GIL-atomic) dict read; only the first access per term pays for
        the lock and the rebuild.
        """
        plist = self._postings.get(term)
        if plist is None:
            with self._materialize_lock:
                plist = self._postings.get(term)
                if plist is None:
                    raw = (
                        self._raw_postings.get(term)
                        if self._raw_postings
                        else None
                    )
                    if raw is None:
                        plist = self._postings[term] = []
                    else:
                        # Assign before discarding the raw record, so
                        # lock-free readers always find the term in at
                        # least one of the two tables.
                        plist = self._postings[term] = [
                            Posting(node_id, positions)
                            for node_id, positions in raw
                        ]
                        self._raw_postings.pop(term, None)
        return plist

    def _ensure_node_lengths(self):
        """The node-length table, deriving it from postings if needed.

        Snapshots written before lengths were precomputed (and loaded
        files whose table was never materialized) carry none; every
        token occurrence is exactly one posting position, so the table
        rebuilds as the per-node sum of term frequencies.
        """
        lengths = self._node_lengths
        if lengths is None:
            with self._materialize_lock:
                if self._node_lengths is None:
                    lengths = {}
                    for plist in self._postings.values():
                        for posting in plist:
                            lengths[posting.node_id] = (
                                lengths.get(posting.node_id, 0)
                                + len(posting.positions)
                            )
                    if self._raw_postings:
                        for raw in self._raw_postings.values():
                            for node_id, positions in raw:
                                lengths[node_id] = (
                                    lengths.get(node_id, 0) + len(positions)
                                )
                    self._node_lengths = lengths
        return self._node_lengths

    # -- snapshot serialization ---------------------------------------------

    def to_dict(self):
        """Snapshot form: the postings table plus the node counter."""
        postings = {
            term: [
                [posting.node_id, list(posting.positions)]
                for posting in plist
            ]
            for term, plist in self._postings.items()
        }
        if self._raw_postings:
            # Never-touched terms from a previous snapshot pass through.
            postings.update(self._raw_postings)
        payload = {"indexed_nodes": self._indexed_nodes, "postings": postings}
        if self._node_lengths is not None:
            # Parallel lists, not a dict: JSON would coerce int keys to
            # strings (and orjson rejects them outright).
            ids = sorted(self._node_lengths)
            payload["node_lengths"] = [
                ids, [self._node_lengths[node_id] for node_id in ids]
            ]
        return payload

    @classmethod
    def from_dict(cls, payload, analyzer):
        """Rebuild an index from :meth:`to_dict` without re-tokenizing.

        Posting lists stay in their raw serialized form until a term is
        first looked up (or extended by :meth:`add_node`).
        """
        index = cls(analyzer)
        index._indexed_nodes = payload["indexed_nodes"]
        index._raw_postings = payload["postings"]
        lengths = payload.get("node_lengths")
        if lengths is None:
            index._node_lengths = None  # derive lazily on first use
        else:
            ids, counts = lengths
            index._node_lengths = dict(zip(ids, counts))
        return index

    # -- lookups -----------------------------------------------------------

    def postings(self, term):
        """The posting list for an already-analyzed term (may be empty).

        Lock-free reads check the materialized table, then the raw
        table, then the materialized table again: a concurrent
        materializer assigns before popping, so a term that misses both
        of the first two lookups (it moved in between) is guaranteed to
        be found by the final re-check.
        """
        plist = self._postings.get(term)
        if plist is not None:
            return plist
        if self._raw_postings and term in self._raw_postings:
            return self._materialized(term)
        return self._postings.get(term, [])

    def document_frequency(self, term):
        """Number of nodes whose direct text contains ``term``."""
        plist = self._postings.get(term)
        if plist is None and self._raw_postings:
            plist = self._raw_postings.get(term)
            if plist is None:
                # Moved by a concurrent materializer between the two
                # lookups (it assigns before popping): re-check.
                plist = self._postings.get(term)
        return len(plist) if plist is not None else 0

    def use_global_stats(self, stats):
        """Score against corpus-wide statistics (sharded collections).

        After this call :meth:`inverse_document_frequency` delegates to
        ``stats`` (a :class:`GlobalTermStats` spanning every shard), so
        this shard's content scores use the same idf an unsharded index
        over the full corpus would.  Pass ``None`` to revert to local
        statistics.
        """
        self._global_stats = stats
        self._idf_cache.clear()
        return self

    def inverse_document_frequency(self, term):
        """Smoothed idf; unknown terms get the maximum idf.

        Cached per term; :meth:`add_node` -- the only mutation that
        changes a document frequency or the node count -- clears the
        cache, so readers never see a stale value.  With
        :meth:`use_global_stats` active the value comes from the
        corpus-wide table instead of this shard's own counters.
        """
        if self._global_stats is not None:
            return self._global_stats.inverse_document_frequency(term)
        idf = self._idf_cache.get(term)
        if idf is None:
            df = self.document_frequency(term)
            idf = math.log((self._indexed_nodes + 1) / (df + 1)) + 1.0
            self._idf_cache[term] = idf
        return idf

    def node_length(self, node_id):
        """Analyzed token count of one node's direct text (0 if none).

        The tf-idf length norm is ``node_length ** 0.5`` -- precomputed
        at build time so scoring never re-tokenizes node text.
        """
        return self._ensure_node_lengths().get(node_id, 0)

    def term_frequencies(self, term):
        """Random-access ``node_id -> tf`` table for ``term``.

        Built once per term from the posting list and cached;
        :meth:`add_node` invalidates exactly the terms it touches.
        Concurrent first calls may both build the (identical) table --
        one assignment wins, which is safe because entries are pure
        functions of the posting list.
        """
        table = self._tf_maps.get(term)
        if table is None:
            table = {
                posting.node_id: len(posting.positions)
                for posting in self.postings(term)
            }
            self._tf_maps[term] = table
        return table

    def vocabulary(self):
        if self._raw_postings:
            # Copy under the lock: materialization inserts into
            # _postings concurrently, and iterating a dict while it
            # grows raises RuntimeError.
            with self._materialize_lock:
                return sorted(set(self._postings) | set(self._raw_postings))
        return sorted(self._postings)

    @property
    def indexed_nodes(self):
        return self._indexed_nodes

    # -- matching helpers ------------------------------------------------------

    def nodes_with_term(self, term):
        """Node ids containing ``term``, in Dewey order."""
        return [posting.node_id for posting in self.postings(term)]

    def nodes_with_phrase(self, terms):
        """Node ids whose direct text contains the exact phrase ``terms``.

        Classic positional intersection: candidate nodes must contain
        every term, with positions increasing by one across the phrase.
        """
        if not terms:
            return []
        if len(terms) == 1:
            return self.nodes_with_term(terms[0])
        lists = [self.postings(term) for term in terms]
        if any(not plist for plist in lists):
            return []
        # Intersect on node_id (all lists are sorted by node_id).
        result = []
        cursors = [0] * len(lists)
        while all(cursors[i] < len(lists[i]) for i in range(len(lists))):
            current = [lists[i][cursors[i]].node_id for i in range(len(lists))]
            high = max(current)
            if all(value == high for value in current):
                postings = [lists[i][cursors[i]] for i in range(len(lists))]
                if self._phrase_at(postings):
                    result.append(high)
                cursors = [cursor + 1 for cursor in cursors]
            else:
                for i in range(len(lists)):
                    while (
                        cursors[i] < len(lists[i])
                        and lists[i][cursors[i]].node_id < high
                    ):
                        cursors[i] += 1
        return result

    @staticmethod
    def _phrase_at(postings):
        """True when the postings (one per phrase term, same node) align."""
        first = set(postings[0].positions)
        for offset, posting in enumerate(postings[1:], start=1):
            first &= {position - offset for position in posting.positions}
            if not first:
                return False
        return True
