"""Node-level inverted index with positional postings.

Besides the postings themselves the index owns the ranking-side
statistics (term frequencies, length norms, idf).  Idf is a *corpus*
statistic -- ``log((N + 1) / (df + 1)) + 1`` over every indexed node --
so a sharded collection, whose documents are split across several
independent indexes, must not let each shard score against its own
``N`` and ``df``: :class:`GlobalTermStats` sums the statistics across
all shard indexes and :meth:`InvertedIndex.use_global_stats` redirects
idf lookups to it, which is what makes per-shard content scores
byte-identical to an unsharded build (see :mod:`repro.shard`).

Storage comes in three layers per term, checked in order:

* ``_postings`` -- materialized (hot, mutable) ``Posting`` lists;
* ``_cols`` -- delta-encoded byte columns
  (:mod:`repro.compact.columns`), either inline ``bytes`` or
  ``[offset, length]`` windows into a snapshot's binary sidecar;
* ``_raw_postings`` -- legacy (version <= 3) raw snapshot lists.

Cold terms cost a few bytes per posting instead of a ~100-byte object
chain; a term decodes lazily on first access, exactly where the legacy
raw record materialized.  ``df`` probes on cold terms read one varint
(:func:`~repro.compact.columns.posting_count`) without decoding.
"""

import bisect
import math
import threading
from array import array

from repro.compact.columns import (
    decode_postings,
    encode_postings,
    posting_count,
)


class GlobalTermStats:
    """Corpus-wide ``df``/``N`` summed across several shard indexes.

    ``indexes`` is either a sequence of :class:`InvertedIndex` or a
    zero-argument callable producing one (the sharded system passes a
    callable so lazily restored shards are only loaded when a statistic
    is first needed).  Idf values are cached per term; any mutation of
    any participating index must call :meth:`invalidate` --
    :meth:`InvertedIndex.add_node` does so automatically for indexes
    wired via :meth:`InvertedIndex.use_global_stats`.
    """

    def __init__(self, indexes):
        self._source = indexes
        self._idf = {}

    def _iter_indexes(self):
        source = self._source
        return source() if callable(source) else source

    def invalidate(self):
        """Drop cached statistics (after any shard index mutation).

        The cache dict is *replaced*, not cleared: mutations are
        externally serialized with query execution (the system-wide
        single-writer discipline), but even a straggling reader that
        raced the flip can then only write its stale value into the
        orphaned dict -- post-invalidation readers always recompute
        into the fresh one.
        """
        self._idf = {}

    @property
    def indexed_nodes(self):
        """Total indexed nodes across all shards (the global ``N``).

        Recomputed per call -- an O(shards) sum, far cheaper than the
        per-term df it accompanies, and never cached so it cannot go
        stale.
        """
        return sum(index.indexed_nodes for index in self._iter_indexes())

    def document_frequency(self, term):
        """Global number of nodes whose direct text contains ``term``."""
        return sum(
            index.document_frequency(term) for index in self._iter_indexes()
        )

    def inverse_document_frequency(self, term):
        """The exact idf an unsharded index over the union computes."""
        cache = self._idf
        idf = cache.get(term)
        if idf is None:
            df = self.document_frequency(term)
            idf = math.log((self.indexed_nodes + 1) / (df + 1)) + 1.0
            cache[term] = idf
        return idf

    def __repr__(self):
        return f"GlobalTermStats({len(self._idf)} cached terms)"


class Posting:
    """One node's occurrence list for one term.

    ``positions`` are token ordinals within the node's analyzed direct
    text, enabling exact phrase matching.
    """

    __slots__ = ("node_id", "positions")

    def __init__(self, node_id, positions):
        self.node_id = node_id
        self.positions = tuple(positions)

    @property
    def term_frequency(self):
        return len(self.positions)

    def __eq__(self, other):
        if not isinstance(other, Posting):
            return NotImplemented
        return self.node_id == other.node_id and self.positions == other.positions

    def __repr__(self):
        return f"Posting(node={self.node_id}, positions={self.positions})"


class InvertedIndex:
    """Term -> Dewey-ordered posting list over data nodes.

    Global node ids are assigned in document order as documents are
    added, so posting lists sorted by node id are automatically in
    global Dewey order -- the order the twig processor consumes.
    """

    def __init__(self, analyzer):
        self.analyzer = analyzer
        self._postings = {}
        # Compact columns: term -> bytes (inline) or [offset, length]
        # into _sidecar.  Decoded per term on first posting access; df
        # probes read the leading count varint only.
        self._cols = {}
        self._sidecar = None
        # Raw snapshot records (version <= 3) pending materialization;
        # posting lists are rebuilt per term on first access so that
        # loading a snapshot does not pay for vocabulary the session
        # never queries.  The lock serializes every pop-and-rebuild
        # step (column or raw): concurrent query workers racing on the
        # same term must not lose the cold record.
        self._raw_postings = None
        self._materialize_lock = threading.Lock()
        self._indexed_nodes = 0
        # Ranking-side precomputation, maintained at build time so the
        # query loop never re-analyzes node text:
        #   _node_lengths  node_id -> analyzed token count (the tf-idf
        #                  length norm is its square root); None means
        #                  "derive lazily from postings" (old snapshots).
        #   _length_cols   (sorted id array, count array) -- the
        #                  compacted bulk of the length table; entries
        #                  added after a compact() live in the dict.
        #   _tf_maps       term -> {node_id: tf} random-access tables,
        #                  built per term on first use.
        #   _idf_cache     term -> idf, valid until the next add_node
        #                  (the only mutation that changes df or N).
        self._node_lengths = {}
        self._length_cols = None
        self._tf_maps = {}
        self._idf_cache = {}
        # When set (sharded collections), idf reads corpus-wide df/N
        # from here instead of this index's own counters.
        self._global_stats = None

    # -- construction -------------------------------------------------------

    def add_node(self, node_id, text):
        """Index one node's direct text; no-op for empty text."""
        tokens = self.analyzer.analyze(text)
        if not tokens:
            return
        by_term = {}
        for token in tokens:
            by_term.setdefault(token.text, []).append(token.position)
        for term, positions in by_term.items():
            self._materialized(term).append(Posting(node_id, positions))
            self._tf_maps.pop(term, None)
        self._ensure_node_lengths()[node_id] = len(tokens)
        self._idf_cache.clear()
        if self._global_stats is not None:
            # df/N changed for the whole sharded corpus, not just here.
            self._global_stats.invalidate()
        self._indexed_nodes += 1

    def compact(self):
        """Fold every posting list into delta-encoded byte columns.

        Called at the end of a build (and re-callable after incremental
        ingestion): posting lists and still-raw records become compact
        columns, the node-length dict becomes two parallel arrays.
        Lock-free readers stay correct throughout -- each term's column
        is assigned before its hot/raw form is discarded, the same
        publish-before-pop order materialization uses in reverse.
        """
        with self._materialize_lock:
            for term, plist in list(self._postings.items()):
                self._cols[term] = encode_postings(
                    [(posting.node_id, posting.positions)
                     for posting in plist]
                )
                del self._postings[term]
            if self._raw_postings:
                for term, raw in list(self._raw_postings.items()):
                    self._cols[term] = encode_postings(raw)
                    del self._raw_postings[term]
            lengths = self._node_lengths
            if lengths:
                merged = dict(lengths)
                if self._length_cols is not None:
                    ids, counts = self._length_cols
                    for node_id, count in zip(ids, counts):
                        merged.setdefault(node_id, count)
                ordered = sorted(merged)
                self._length_cols = (
                    array("q", ordered),
                    array("q", (merged[node_id] for node_id in ordered)),
                )
                self._node_lengths = {}
        return self

    def _col_blob(self, term):
        """The column bytes for ``term``, or ``None`` (buffer-backed
        entries resolve to a zero-copy sidecar window)."""
        entry = self._cols.get(term)
        if entry is None or isinstance(entry, (bytes, memoryview)):
            return entry
        offset, length = entry
        return self._sidecar.view(offset, length)

    def _materialized(self, term):
        """The mutable posting list for ``term``, creating it if needed.

        Thread-safe via double-checked locking: the fast path is one
        (GIL-atomic) dict read; only the first access per term pays for
        the lock and the rebuild.  The materialized list is published
        to ``_postings`` *before* the column/raw source is popped, so a
        lock-free reader that misses every cold table is guaranteed to
        find the term on its final ``_postings`` re-check -- the order
        two racing materializers rely on as well: the second one finds
        the first one's list under the lock and never decodes twice.
        """
        plist = self._postings.get(term)
        if plist is None:
            with self._materialize_lock:
                plist = self._postings.get(term)
                if plist is None:
                    blob = self._col_blob(term)
                    if blob is not None:
                        plist = self._postings[term] = [
                            Posting(node_id, positions)
                            for node_id, positions in decode_postings(blob)
                        ]
                        self._cols.pop(term, None)
                        return plist
                    raw = (
                        self._raw_postings.get(term)
                        if self._raw_postings
                        else None
                    )
                    if raw is None:
                        plist = self._postings[term] = []
                    else:
                        # Assign before discarding the raw record, so
                        # lock-free readers always find the term in at
                        # least one of the two tables.
                        plist = self._postings[term] = [
                            Posting(node_id, positions)
                            for node_id, positions in raw
                        ]
                        self._raw_postings.pop(term, None)
        return plist

    def _ensure_node_lengths(self):
        """The mutable node-length table, deriving it if needed.

        Snapshots written before lengths were precomputed (and loaded
        files whose table was never materialized) carry none; every
        token occurrence is exactly one posting position, so the table
        rebuilds as the per-node sum of term frequencies -- including
        terms still sitting in compact columns, which are decoded
        transiently without being materialized.
        """
        lengths = self._node_lengths
        if lengths is None:
            with self._materialize_lock:
                if self._node_lengths is None:
                    lengths = {}
                    for plist in self._postings.values():
                        for posting in plist:
                            lengths[posting.node_id] = (
                                lengths.get(posting.node_id, 0)
                                + len(posting.positions)
                            )
                    for term in list(self._cols):
                        for node_id, positions in decode_postings(
                            self._col_blob(term)
                        ):
                            lengths[node_id] = (
                                lengths.get(node_id, 0) + len(positions)
                            )
                    if self._raw_postings:
                        for raw in self._raw_postings.values():
                            for node_id, positions in raw:
                                lengths[node_id] = (
                                    lengths.get(node_id, 0) + len(positions)
                                )
                    self._node_lengths = lengths
        return self._node_lengths

    # -- snapshot serialization ---------------------------------------------

    def _cold_entries(self, term):
        """Raw ``[node_id, [positions]]`` lists for a cold term."""
        blob = self._col_blob(term)
        if blob is not None:
            return [
                [node_id, positions]
                for node_id, positions in decode_postings(blob)
            ]
        return self._raw_postings[term]

    def _node_lengths_payload(self):
        """The parallel ``[ids, counts]`` lists, or ``None``.

        Parallel lists, not a dict: JSON would coerce int keys to
        strings (and orjson rejects them outright).
        """
        if self._node_lengths is None and self._length_cols is None:
            return None
        merged = dict(self._node_lengths or {})
        if self._length_cols is not None:
            ids, counts = self._length_cols
            for node_id, count in zip(ids, counts):
                merged.setdefault(node_id, count)
        ordered = sorted(merged)
        return [ordered, [merged[node_id] for node_id in ordered]]

    def to_dict(self, columnar=False):
        """Snapshot form: the postings table plus the node counter.

        The default (legacy) form lists every posting as
        ``[node_id, [positions]]`` -- the version <= 3 record, still
        written by component-level round trips.  ``columnar=True``
        (what :meth:`Seda.snapshot_payload` uses) emits the postings as
        delta-encoded byte columns under ``columns_inline``; the
        snapshot writer moves those bytes into the binary sidecar.
        """
        with self._materialize_lock:
            hot = {
                term: [
                    (posting.node_id, posting.positions)
                    for posting in plist
                ]
                for term, plist in self._postings.items()
            }
            cold = sorted(
                set(self._cols) | set(self._raw_postings or ())
            )
            if columnar:
                columns = {
                    term: encode_postings(entries)
                    for term, entries in hot.items()
                }
                for term in cold:
                    blob = self._col_blob(term)
                    if blob is None:
                        columns[term] = encode_postings(
                            self._raw_postings[term]
                        )
                    else:
                        # Pass through: re-anchor the bytes in the new
                        # file's sidecar without a decode.
                        columns[term] = bytes(blob)
                payload = {
                    "indexed_nodes": self._indexed_nodes,
                    "columns_inline": columns,
                }
            else:
                postings = {
                    term: [
                        [node_id, list(positions)]
                        for node_id, positions in entries
                    ]
                    for term, entries in hot.items()
                }
                for term in cold:
                    postings[term] = self._cold_entries(term)
                payload = {
                    "indexed_nodes": self._indexed_nodes,
                    "postings": postings,
                }
        lengths = self._node_lengths_payload()
        if lengths is not None:
            payload["node_lengths"] = lengths
        return payload

    @classmethod
    def from_dict(cls, payload, analyzer, sidecar=None):
        """Rebuild an index from :meth:`to_dict` without re-tokenizing.

        Posting lists stay in their cold serialized form -- legacy raw
        lists, inline column bytes, or sidecar ``[offset, length]``
        windows -- until a term is first looked up (or extended by
        :meth:`add_node`).
        """
        index = cls(analyzer)
        index._indexed_nodes = payload["indexed_nodes"]
        if "columns_inline" in payload:
            index._cols = dict(payload["columns_inline"])
        elif "columns" in payload:
            index._cols = dict(payload["columns"])
            index._sidecar = sidecar
        else:
            index._raw_postings = payload["postings"]
        lengths = payload.get("node_lengths")
        if lengths is None:
            index._node_lengths = None  # derive lazily on first use
        else:
            ids, counts = lengths
            index._length_cols = (array("q", ids), array("q", counts))
        return index

    # -- lookups -----------------------------------------------------------

    def postings(self, term):
        """The posting list for an already-analyzed term (may be empty).

        Lock-free reads check the materialized table, then the cold
        tables (columns, raw), then the materialized table again: a
        concurrent materializer assigns before popping, so a term that
        misses everywhere (it moved in between) is guaranteed to be
        found by the final re-check inside :meth:`_materialized`.
        """
        plist = self._postings.get(term)
        if plist is not None:
            return plist
        if term in self._cols or (
            self._raw_postings and term in self._raw_postings
        ):
            return self._materialized(term)
        return self._postings.get(term, [])

    def document_frequency(self, term):
        """Number of nodes whose direct text contains ``term``.

        Cold terms answer from the column's leading count varint (or
        the raw record's length) without materializing anything.
        """
        plist = self._postings.get(term)
        if plist is not None:
            return len(plist)
        blob = self._col_blob(term)
        if blob is not None:
            return posting_count(blob)
        if self._raw_postings:
            raw = self._raw_postings.get(term)
            if raw is not None:
                return len(raw)
        # Moved by a concurrent materializer between the lookups (it
        # assigns before popping): re-check the materialized table.
        plist = self._postings.get(term)
        return len(plist) if plist is not None else 0

    def use_global_stats(self, stats):
        """Score against corpus-wide statistics (sharded collections).

        After this call :meth:`inverse_document_frequency` delegates to
        ``stats`` (a :class:`GlobalTermStats` spanning every shard), so
        this shard's content scores use the same idf an unsharded index
        over the full corpus would.  Pass ``None`` to revert to local
        statistics.
        """
        self._global_stats = stats
        self._idf_cache.clear()
        return self

    def inverse_document_frequency(self, term):
        """Smoothed idf; unknown terms get the maximum idf.

        Cached per term; :meth:`add_node` -- the only mutation that
        changes a document frequency or the node count -- clears the
        cache, so readers never see a stale value.  With
        :meth:`use_global_stats` active the value comes from the
        corpus-wide table instead of this shard's own counters.
        """
        if self._global_stats is not None:
            return self._global_stats.inverse_document_frequency(term)
        idf = self._idf_cache.get(term)
        if idf is None:
            df = self.document_frequency(term)
            idf = math.log((self._indexed_nodes + 1) / (df + 1)) + 1.0
            self._idf_cache[term] = idf
        return idf

    def node_length(self, node_id):
        """Analyzed token count of one node's direct text (0 if none).

        The tf-idf length norm is ``node_length ** 0.5`` -- precomputed
        at build time so scoring never re-tokenizes node text.  After a
        :meth:`compact` the bulk of the table lives in two parallel
        sorted arrays (a binary search away); nodes indexed since then
        stay in the dict.
        """
        cols = self._length_cols
        if cols is not None:
            ids, counts = cols
            position = bisect.bisect_left(ids, node_id)
            if position < len(ids) and ids[position] == node_id:
                return counts[position]
            if self._node_lengths is None:
                return 0
            return self._node_lengths.get(node_id, 0)
        return self._ensure_node_lengths().get(node_id, 0)

    def term_frequencies(self, term):
        """Random-access ``node_id -> tf`` table for ``term``.

        Built once per term from the posting list and cached;
        :meth:`add_node` invalidates exactly the terms it touches.
        Concurrent first calls may both build the (identical) table --
        one assignment wins, which is safe because entries are pure
        functions of the posting list.
        """
        table = self._tf_maps.get(term)
        if table is None:
            table = {
                posting.node_id: len(posting.positions)
                for posting in self.postings(term)
            }
            self._tf_maps[term] = table
        return table

    def vocabulary(self):
        if self._cols or self._raw_postings:
            # Copy under the lock: materialization inserts into
            # _postings concurrently, and iterating a dict while it
            # grows raises RuntimeError.
            with self._materialize_lock:
                return sorted(
                    set(self._postings)
                    | set(self._cols)
                    | set(self._raw_postings or ())
                )
        return sorted(self._postings)

    @property
    def indexed_nodes(self):
        return self._indexed_nodes

    def estimated_memory(self):
        """Resident-footprint digest (``repro info``, benchmarks).

        Counts are table sizes; ``column_bytes`` sums the encoded
        column payloads (inline or sidecar-backed) -- the compact
        replacement for what used to be per-posting Python objects.
        """
        with self._materialize_lock:
            column_bytes = 0
            posting_entries = 0
            for term in self._cols:
                blob = self._col_blob(term)
                column_bytes += len(blob)
                posting_entries += posting_count(blob)
            for plist in self._postings.values():
                posting_entries += len(plist)
            if self._raw_postings:
                for raw in self._raw_postings.values():
                    posting_entries += len(raw)
            length_entries = len(self._node_lengths or ())
            if self._length_cols is not None:
                length_entries += len(self._length_cols[0])
            return {
                "terms": (
                    len(self._postings) + len(self._cols)
                    + len(self._raw_postings or ())
                ),
                "column_terms": len(self._cols),
                "materialized_terms": len(self._postings),
                "raw_terms": len(self._raw_postings or ()),
                "column_bytes": column_bytes,
                "posting_entries": posting_entries,
                "node_length_entries": length_entries,
            }

    # -- matching helpers ------------------------------------------------------

    def nodes_with_term(self, term):
        """Node ids containing ``term``, in Dewey order."""
        return [posting.node_id for posting in self.postings(term)]

    def nodes_with_phrase(self, terms):
        """Node ids whose direct text contains the exact phrase ``terms``.

        Classic positional intersection: candidate nodes must contain
        every term, with positions increasing by one across the phrase.
        """
        if not terms:
            return []
        if len(terms) == 1:
            return self.nodes_with_term(terms[0])
        lists = [self.postings(term) for term in terms]
        if any(not plist for plist in lists):
            return []
        # Intersect on node_id (all lists are sorted by node_id).
        result = []
        cursors = [0] * len(lists)
        while all(cursors[i] < len(lists[i]) for i in range(len(lists))):
            current = [lists[i][cursors[i]].node_id for i in range(len(lists))]
            high = max(current)
            if all(value == high for value in current):
                postings = [lists[i][cursors[i]] for i in range(len(lists))]
                if self._phrase_at(postings):
                    result.append(high)
                cursors = [cursor + 1 for cursor in cursors]
            else:
                for i in range(len(lists)):
                    while (
                        cursors[i] < len(lists[i])
                        and lists[i][cursors[i]].node_id < high
                    ):
                        cursors[i] += 1
        return result

    @staticmethod
    def _phrase_at(postings):
        """True when the postings (one per phrase term, same node) align."""
        first = set(postings[0].positions)
        for offset, posting in enumerate(postings[1:], start=1):
            first &= {position - offset for position in posting.positions}
            if not first:
                return False
        return True
