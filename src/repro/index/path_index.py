"""The Figure 8 path full-text index.

"This full-text index contains all keywords that appear in the data set
as content, as well as all the tag names.  Each distinct path is
treated as a virtual document.  Hence, the posting lists contain all
the paths a given word appears in.  We store the count of occurrences
of each path in the document store."  (Section 5)

Accordingly, this index stores only term -> set-of-paths; occurrence
counts are fetched from the collection's path table when a summary
needs them.  Tag names are indexed separately from content keywords so
that probing by tag (context = node name) does not collide with a data
value that happens to equal a tag name.

Snapshot restore keeps the serialized tables (path-table indexes, not
strings) and materializes each term's or tag's path set on first use,
so loading a snapshot does not pay for vocabulary a session never
probes.
"""

import fnmatch
import threading


class PathIndex:
    """Keyword/tag -> distinct root-to-leaf paths."""

    def __init__(self, analyzer):
        self.analyzer = analyzer
        self._content_paths = {}
        self._tag_paths = {}
        self._all_paths = set()
        # Snapshot state: the ordered path table raw index lists decode
        # against, plus raw per-term/per-tag index lists awaiting
        # materialization.  None outside the restore path.
        self._path_list = None
        self._raw_content = None
        self._raw_tags = None
        # Serializes raw-entry materialization for concurrent readers.
        self._materialize_lock = threading.Lock()

    # -- construction ------------------------------------------------------

    def add_node(self, path, tag, text):
        """Register one node's path under its tag and content terms."""
        self._all_paths.add(path)
        self._entry(self._tag_paths, self._raw_tags, tag).add(path)
        if text:
            for token in self.analyzer.analyze(text):
                self._entry(
                    self._content_paths, self._raw_content, token.text
                ).add(path)

    # -- lazy materialization ------------------------------------------------

    def _entry(self, table, raw, key):
        """The mutable path set for ``key``, creating it if needed."""
        paths = self._lookup(table, raw, key)
        if paths is None:
            paths = table[key] = set()
        return paths

    def _lookup(self, table, raw, key):
        """The path set for ``key``, or ``None``; materializes raw entries.

        Thread-safe via double-checked locking: concurrent query workers
        racing on the same key must not lose the raw record to a second
        ``pop``.
        """
        paths = table.get(key)
        if paths is not None:
            return paths
        if not raw:
            return None
        with self._materialize_lock:
            paths = table.get(key)
            if paths is not None:
                return paths
            ids = raw.get(key)
            if ids is None:
                return None
            path_list = self._path_list
            # Assign before discarding the raw record, so lock-free
            # readers always find the key in at least one table.
            paths = table[key] = {path_list[i] for i in ids}
            raw.pop(key, None)
        return paths

    def _known_keys(self, table, raw):
        """A stable copy of ``table``'s and ``raw``'s keys.

        Taken under the lock: materialization inserts into ``table``
        concurrently, and iterating a dict while it grows raises
        RuntimeError.
        """
        with self._materialize_lock:
            names = set(table)
            if raw:
                names |= set(raw)
        return names

    # -- snapshot serialization ----------------------------------------------

    def to_dict(self):
        """Snapshot form: both tables coded as indexes into ``all_paths``.

        Index coding keeps the record small (every path string appears
        once) and decodes fast.  Still-raw entries from a restored
        snapshot are materialized first so that their indexes are
        expressed against the current path table.
        """
        path_list = sorted(self._all_paths)
        index_of = {path: i for i, path in enumerate(path_list)}

        def encode(table, raw):
            names = set(table)
            if raw:
                names |= set(raw)
            return {
                name: sorted(
                    index_of[path]
                    for path in self._lookup(table, raw, name)
                )
                for name in names
            }

        return {
            "all_paths": path_list,
            "content": encode(self._content_paths, self._raw_content),
            "tags": encode(self._tag_paths, self._raw_tags),
        }

    @classmethod
    def from_dict(cls, payload, analyzer):
        """Rebuild a path index from :meth:`to_dict`, lazily."""
        index = cls(analyzer)
        index._path_list = payload["all_paths"]
        index._all_paths = set(payload["all_paths"])
        index._raw_content = payload["content"]
        index._raw_tags = payload["tags"]
        return index

    # -- probes (Section 5's three usage modes) ------------------------------

    def paths_for_term(self, term):
        """Distinct paths whose node content contains the analyzed term."""
        paths = self._lookup(self._content_paths, self._raw_content, term)
        return set(paths) if paths else set()

    def paths_for_tag(self, tag):
        """Distinct paths whose *leaf* node name is ``tag``.

        Supports ``*`` wildcards (e.g. ``trade*``): per Definition 3 the
        context of a query term may be a keyword query over tag names,
        allowing wildcards.
        """
        if "*" not in tag:
            paths = self._lookup(self._tag_paths, self._raw_tags, tag)
            return set(paths) if paths else set()
        names = self._known_keys(self._tag_paths, self._raw_tags)
        matched = set()
        for candidate in names:
            if fnmatch.fnmatchcase(candidate, tag):
                matched |= self._lookup(self._tag_paths, self._raw_tags,
                                        candidate)
        return matched

    def paths_for_path(self, path):
        """Probe with a full root-to-leaf path (Section 5: use the last
        tag name of the path, then confirm the full path)."""
        leaf = path.rsplit("/", 1)[-1]
        return {
            candidate
            for candidate in self.paths_for_tag(leaf)
            if candidate == path
        }

    def all_paths(self):
        return set(self._all_paths)

    def tags(self):
        return sorted(self._known_keys(self._tag_paths, self._raw_tags))

    def vocabulary(self):
        return sorted(
            self._known_keys(self._content_paths, self._raw_content)
        )

    def __len__(self):
        return len(self._all_paths)
