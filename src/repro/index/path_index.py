"""The Figure 8 path full-text index.

"This full-text index contains all keywords that appear in the data set
as content, as well as all the tag names.  Each distinct path is
treated as a virtual document.  Hence, the posting lists contain all
the paths a given word appears in.  We store the count of occurrences
of each path in the document store."  (Section 5)

Accordingly, this index stores only term -> set-of-paths; occurrence
counts are fetched from the collection's path table when a summary
needs them.  Tag names are indexed separately from content keywords so
that probing by tag (context = node name) does not collide with a data
value that happens to equal a tag name.
"""


class PathIndex:
    """Keyword/tag -> distinct root-to-leaf paths."""

    def __init__(self, analyzer):
        self.analyzer = analyzer
        self._content_paths = {}
        self._tag_paths = {}
        self._all_paths = set()

    # -- construction ------------------------------------------------------

    def add_node(self, path, tag, text):
        """Register one node's path under its tag and content terms."""
        self._all_paths.add(path)
        self._tag_paths.setdefault(tag, set()).add(path)
        if text:
            for token in self.analyzer.analyze(text):
                self._content_paths.setdefault(token.text, set()).add(path)

    # -- probes (Section 5's three usage modes) ------------------------------

    def paths_for_term(self, term):
        """Distinct paths whose node content contains the analyzed term."""
        return set(self._content_paths.get(term, ()))

    def paths_for_tag(self, tag):
        """Distinct paths whose *leaf* node name is ``tag``.

        Supports ``*`` wildcards (e.g. ``trade*``): per Definition 3 the
        context of a query term may be a keyword query over tag names,
        allowing wildcards.
        """
        if "*" not in tag:
            return set(self._tag_paths.get(tag, ()))
        import fnmatch

        matched = set()
        for candidate, paths in self._tag_paths.items():
            if fnmatch.fnmatchcase(candidate, tag):
                matched |= paths
        return matched

    def paths_for_path(self, path):
        """Probe with a full root-to-leaf path (Section 5: use the last
        tag name of the path, then confirm the full path)."""
        leaf = path.rsplit("/", 1)[-1]
        return {
            candidate
            for candidate in self._tag_paths.get(leaf, ())
            if candidate == path
        }

    def all_paths(self):
        return set(self._all_paths)

    def tags(self):
        return sorted(self._tag_paths)

    def vocabulary(self):
        return sorted(self._content_paths)

    def __len__(self):
        return len(self._all_paths)
