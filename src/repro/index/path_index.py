"""The Figure 8 path full-text index, trie-backed.

"This full-text index contains all keywords that appear in the data set
as content, as well as all the tag names.  Each distinct path is
treated as a virtual document.  Hence, the posting lists contain all
the paths a given word appears in.  We store the count of occurrences
of each path in the document store."  (Section 5)

Accordingly, this index stores only term -> set-of-paths; occurrence
counts are fetched from the collection's path table when a summary
needs them.  Tag names are indexed separately from content keywords so
that probing by tag (context = node name) does not collide with a data
value that happens to equal a tag name.

Internally a path is not a string but a small int: the terminal node id
of a :class:`~repro.compact.trie.PathTrie` shared across the system, so
every label segment is stored once and shared prefixes collapse.  Per
key the index holds one of three forms, checked in order:

* ``_*_ids`` -- materialized (hot, mutable) sets of trie ids;
* ``_*_cols`` -- delta-encoded byte columns of sorted path-table
  indexes (:func:`~repro.compact.columns.encode_sorted_ids`), inline
  ``bytes`` or ``[offset, length]`` windows into a snapshot sidecar,
  translated to trie ids through ``_id_map`` on decode;
* ``_raw_*`` -- legacy (version <= 3) raw index lists.

Probes decode cold entries read-only (no pop) and cache the rendered
string set; only :meth:`add_node` materializes an entry into its
mutable id-set form.
"""

import fnmatch
import threading

from repro.compact.columns import decode_sorted_ids, encode_sorted_ids
from repro.compact.trie import PathTrie


class PathIndex:
    """Keyword/tag -> distinct root-to-leaf paths."""

    def __init__(self, analyzer, trie=None):
        self.analyzer = analyzer
        #: May be shared with the dataguides (one label table, one set
        #: of prefix nodes per system); this index only ever reads and
        #: inserts, so sharing is safe under the single-writer rule.
        self.trie = trie if trie is not None else PathTrie()
        self._path_ids = set()        # trie ids of paths this index holds
        self._content_ids = {}        # term -> set of trie ids (hot)
        self._tag_ids = {}            # tag  -> set of trie ids (hot)
        self._content_cols = {}       # term -> bytes | [offset, length]
        self._tag_cols = {}
        # _id_map translates the serialized currency -- indexes into the
        # sorted path table -- to trie ids; None until the first
        # compact()/restore (hot sets then hold trie ids directly).
        self._id_map = None
        # Legacy snapshot state: raw per-term/per-tag path-table index
        # lists awaiting materialization.  None outside restore.
        self._raw_content = None
        self._raw_tags = None
        self._sidecar = None
        # Probe-side cache of rendered string sets, keyed ("c"|"t", key);
        # add_node invalidates exactly the keys it touches.
        self._hot = {}
        self._paths_cache = None      # frozenset of all rendered paths
        # Serializes cold-entry materialization for concurrent readers.
        self._materialize_lock = threading.Lock()

    # -- construction ------------------------------------------------------

    def add_node(self, path, tag, text):
        """Register one node's path under its tag and content terms."""
        pid = self.trie.insert(path)
        if pid not in self._path_ids:
            self._path_ids.add(pid)
            self._paths_cache = None
        self._entry(self._tag_ids, self._tag_cols, self._raw_tags,
                    tag).add(pid)
        self._hot.pop(("t", tag), None)
        if text:
            for token in self.analyzer.analyze(text):
                self._entry(self._content_ids, self._content_cols,
                            self._raw_content, token.text).add(pid)
                self._hot.pop(("c", token.text), None)

    def compact(self):
        """Fold every hot id set into a delta-encoded byte column.

        Columns always speak path-table indexes (the only ids stable
        across a snapshot round trip), so compacting re-anchors every
        existing cold entry against the current sorted path table as
        well and rebuilds ``_id_map``.  Re-callable after incremental
        ingestion.
        """
        with self._materialize_lock:
            id_map = sorted(self._path_ids, key=self.trie.render)
            index_of = {pid: i for i, pid in enumerate(id_map)}
            for ids, cols, raw in (
                (self._content_ids, self._content_cols, self._raw_content),
                (self._tag_ids, self._tag_cols, self._raw_tags),
            ):
                for key in list(cols):
                    pids = self._decode_cold(cols[key])
                    cols[key] = encode_sorted_ids(
                        sorted(index_of[pid] for pid in pids)
                    )
                if raw:
                    for key, old_indexes in list(raw.items()):
                        cols[key] = encode_sorted_ids(sorted(
                            index_of[self._id_map[i]] for i in old_indexes
                        ))
                        del raw[key]
                for key, pids in list(ids.items()):
                    cols[key] = encode_sorted_ids(
                        sorted(index_of[pid] for pid in pids)
                    )
                    del ids[key]
            self._id_map = id_map
        return self

    # -- lazy materialization ------------------------------------------------

    def _col_blob(self, entry):
        """Column bytes for a ``_*_cols`` entry (sidecar markers resolve
        to zero-copy windows)."""
        if isinstance(entry, (bytes, memoryview)):
            return entry
        offset, length = entry
        return self._sidecar.view(offset, length)

    def _decode_cold(self, entry):
        """Trie ids for a column entry (path-table indexes mapped)."""
        id_map = self._id_map
        return [id_map[i] for i in decode_sorted_ids(self._col_blob(entry))]

    def _entry(self, ids, cols, raw, key):
        """The mutable trie-id set for ``key``, creating it if needed."""
        pids = self._ids_lookup(ids, cols, raw, key)
        if pids is None:
            pids = ids[key] = set()
        return pids

    def _ids_lookup(self, ids, cols, raw, key):
        """The trie-id set for ``key``, or ``None``; materializes cold
        entries.

        Thread-safe via double-checked locking: concurrent query workers
        racing on the same key must not lose the cold record to a second
        ``pop``.  The hot set is assigned before the cold form is
        discarded, so lock-free readers always find the key in at least
        one table.
        """
        pids = ids.get(key)
        if pids is not None:
            return pids
        if not cols and not raw:
            return None
        with self._materialize_lock:
            pids = ids.get(key)
            if pids is not None:
                return pids
            entry = cols.get(key)
            if entry is not None:
                pids = ids[key] = set(self._decode_cold(entry))
                cols.pop(key, None)
                return pids
            old_indexes = raw.get(key) if raw else None
            if old_indexes is None:
                return None
            id_map = self._id_map
            pids = ids[key] = {id_map[i] for i in old_indexes}
            raw.pop(key, None)
        return pids

    def _path_set(self, kind, ids, cols, raw, key):
        """Rendered path strings for ``key`` (read-only; cold entries
        are decoded without being materialized, and the rendered set is
        cached until :meth:`add_node` touches the key)."""
        cached = self._hot.get((kind, key))
        if cached is not None:
            return cached
        pids = ids.get(key)
        if pids is None:
            entry = cols.get(key)
            if entry is not None:
                pids = self._decode_cold(entry)
            else:
                old_indexes = raw.get(key) if raw else None
                if old_indexes is None:
                    # A concurrent materializer may have moved the key
                    # (it assigns before popping): one final re-check.
                    pids = ids.get(key)
                    if pids is None:
                        return frozenset()
                else:
                    pids = [self._id_map[i] for i in old_indexes]
        render = self.trie.render
        paths = frozenset(render(pid) for pid in pids)
        self._hot[(kind, key)] = paths
        return paths

    def _known_keys(self, ids, cols, raw):
        """A stable copy of every key across the three tables.

        Taken under the lock: materialization moves entries between
        tables concurrently, and iterating a dict while it changes
        raises RuntimeError.
        """
        with self._materialize_lock:
            names = set(ids) | set(cols)
            if raw:
                names |= set(raw)
        return names

    # -- snapshot serialization ----------------------------------------------

    def _encode_tables(self, columnar):
        path_list = sorted(self.trie.render(pid) for pid in self._path_ids)
        index_of = {path: i for i, path in enumerate(path_list)}
        pid_to_index = {
            pid: index_of[self.trie.render(pid)] for pid in self._path_ids
        }

        def indexes_for(ids, cols, raw, key):
            pids = ids.get(key)
            if pids is None:
                entry = cols.get(key)
                if entry is not None:
                    pids = self._decode_cold(entry)
                else:
                    pids = [self._id_map[i] for i in raw[key]]
            return sorted(pid_to_index[pid] for pid in pids)

        def encode(ids, cols, raw, prefix):
            names = set(ids) | set(cols)
            if raw:
                names |= set(raw)
            if columnar:
                return {
                    prefix + name: encode_sorted_ids(
                        indexes_for(ids, cols, raw, name)
                    )
                    for name in names
                }
            return {
                name: indexes_for(ids, cols, raw, name) for name in names
            }

        return path_list, encode

    def to_dict(self, columnar=False):
        """Snapshot form: both tables coded as indexes into ``all_paths``.

        Index coding keeps the record small (every path string appears
        once) and decodes fast.  The default (legacy) form lists the
        indexes as JSON arrays -- the version <= 3 record.
        ``columnar=True`` emits them as delta-encoded byte columns
        under ``columns_inline`` (content keys prefixed ``c:``, tag
        keys ``t:``); the snapshot writer moves the bytes into the
        binary sidecar.
        """
        with self._materialize_lock:
            path_list, encode = self._encode_tables(columnar)
            if columnar:
                columns = encode(self._content_ids, self._content_cols,
                                 self._raw_content, "c:")
                columns.update(encode(self._tag_ids, self._tag_cols,
                                      self._raw_tags, "t:"))
                return {"all_paths": path_list, "columns_inline": columns}
            return {
                "all_paths": path_list,
                "content": encode(self._content_ids, self._content_cols,
                                  self._raw_content, ""),
                "tags": encode(self._tag_ids, self._tag_cols,
                               self._raw_tags, ""),
            }

    @classmethod
    def from_dict(cls, payload, analyzer, trie=None, sidecar=None):
        """Rebuild a path index from :meth:`to_dict`, lazily.

        Accepts the legacy raw-list form, inline columns, and sidecar
        ``[offset, length]`` column tables alike; per-key payloads stay
        cold until first probed or extended.
        """
        index = cls(analyzer, trie=trie)
        index._id_map = [index.trie.insert(path)
                         for path in payload["all_paths"]]
        index._path_ids = set(index._id_map)
        columns = payload.get("columns_inline")
        if columns is None and "columns" in payload:
            columns = payload["columns"]
            index._sidecar = sidecar
        if columns is not None:
            for key, entry in columns.items():
                kind, name = key[:2], key[2:]
                if kind == "c:":
                    index._content_cols[name] = entry
                else:
                    index._tag_cols[name] = entry
        else:
            index._raw_content = payload["content"]
            index._raw_tags = payload["tags"]
        return index

    # -- probes (Section 5's three usage modes) ------------------------------

    def paths_for_term(self, term):
        """Distinct paths whose node content contains the analyzed term."""
        return set(self._path_set("c", self._content_ids,
                                  self._content_cols, self._raw_content,
                                  term))

    def paths_for_tag(self, tag):
        """Distinct paths whose *leaf* node name is ``tag``.

        Supports ``*`` wildcards (e.g. ``trade*``): per Definition 3 the
        context of a query term may be a keyword query over tag names,
        allowing wildcards.
        """
        if "*" not in tag:
            return set(self._path_set("t", self._tag_ids, self._tag_cols,
                                      self._raw_tags, tag))
        names = self._known_keys(self._tag_ids, self._tag_cols,
                                 self._raw_tags)
        matched = set()
        for candidate in names:
            if fnmatch.fnmatchcase(candidate, tag):
                matched |= self._path_set("t", self._tag_ids,
                                          self._tag_cols, self._raw_tags,
                                          candidate)
        return matched

    def paths_for_path(self, path):
        """Probe with a full root-to-leaf path (Section 5: use the last
        tag name of the path, then confirm the full path)."""
        leaf = path.rsplit("/", 1)[-1]
        return {
            candidate
            for candidate in self.paths_for_tag(leaf)
            if candidate == path
        }

    def all_paths(self):
        cached = self._paths_cache
        if cached is None:
            render = self.trie.render
            cached = self._paths_cache = frozenset(
                render(pid) for pid in self._path_ids
            )
        return set(cached)

    def tags(self):
        return sorted(self._known_keys(self._tag_ids, self._tag_cols,
                                       self._raw_tags))

    def vocabulary(self):
        return sorted(self._known_keys(self._content_ids,
                                       self._content_cols,
                                       self._raw_content))

    def __len__(self):
        return len(self._path_ids)

    def estimated_memory(self):
        """Resident-footprint digest (``repro info``, benchmarks)."""
        with self._materialize_lock:
            column_bytes = 0
            for cols in (self._content_cols, self._tag_cols):
                for entry in cols.values():
                    column_bytes += len(self._col_blob(entry))
            return {
                "paths": len(self._path_ids),
                "terms": (
                    len(self._content_ids) + len(self._content_cols)
                    + len(self._raw_content or ())
                ),
                "tags": (
                    len(self._tag_ids) + len(self._tag_cols)
                    + len(self._raw_tags or ())
                ),
                "column_bytes": column_bytes,
                "trie_nodes": self.trie.node_count,
                "labels": len(self.trie.labels),
            }
