"""Impact-ordered per-term score streams, precomputed and shared.

The top-k unit is a threshold algorithm over one sorted stream per
query term.  The seed built those streams from scratch on every query:
candidate enumeration, a content score per candidate (which re-analyzed
each node's text), and a sort.  This module moves that work out of the
per-query loop:

* :class:`ImpactStream` is one materialized stream in **columnar** form
  -- parallel ``(scores, node_ids)`` arrays sorted by descending
  content score (ties by ascending node id), exactly the order the TA
  loop's sorted access consumes.  Streams are immutable once built, so
  concurrent workers share instances read-only and a repeated query's
  "stream build" is an array lookup.
* :class:`ImpactStreamStore` caches streams per ``(term, graph
  version)``.  The store is owned by the system (one per
  :class:`~repro.system.Seda`), shared across every worker searcher of
  a :class:`~repro.service.query_service.QueryService`, and persisted
  through snapshots so a reloaded system serves its hot terms without
  rebuilding anything.

Scores inside a stream are the exact floats
:meth:`~repro.search.scoring.ScoringModel.content_score` produces --
the cache changes *when* scores are computed, never their values, so
answers stay byte-identical to the uncached path.

Snapshot-restored entries stay in their serialized byte-column form
(:func:`~repro.compact.columns.encode_stream`: packed doubles plus
zigzag id deltas, possibly a zero-copy window into the snapshot's
binary sidecar) until a term is first served, mirroring the lazy
materialization of the other indexes.
"""

import threading
from array import array

from repro.compact.columns import decode_stream, encode_stream


class ImpactStream:
    """One term's stream as parallel ``scores`` / ``node_ids`` arrays.

    Columnar storage (C doubles and 64-bit ints via :mod:`array`) keeps
    a cached stream compact and makes sorted access an index into two
    flat arrays.  Instances are immutable by convention: the top-k unit
    only ever reads them, which is what makes cross-worker sharing and
    snapshot persistence safe.
    """

    __slots__ = ("scores", "node_ids")

    def __init__(self, scores, node_ids):
        self.scores = array("d", scores)
        self.node_ids = array("q", node_ids)

    @classmethod
    def from_scored(cls, scored):
        """Build from ``(score, node_id)`` pairs, sorting by impact:
        descending score, ascending node id."""
        ordered = sorted(scored, key=lambda pair: (-pair[0], pair[1]))
        return cls(
            (score for score, _ in ordered),
            (node_id for _, node_id in ordered),
        )

    def to_column(self):
        """The stream as one delta-encoded byte column (bit-exact)."""
        return encode_stream(self.scores, self.node_ids)

    @classmethod
    def from_column(cls, data):
        """Decode a :meth:`to_column` blob (bytes or buffer view)."""
        scores, node_ids = decode_stream(data)
        return cls(scores, node_ids)

    def __len__(self):
        return len(self.node_ids)

    def pairs(self):
        """The stream as ``(score, node_id)`` pairs (tests, debugging)."""
        return list(zip(self.scores, self.node_ids))

    def __repr__(self):
        return f"ImpactStream({len(self)} postings)"


class ImpactStreamStore:
    """Thread-safe cache of impact streams keyed on term and version.

    Keys are :meth:`QueryTerm.cache_key` tuples, so differently spelled
    but equivalent terms share one stream; values carry the graph
    version they were built at, so any graph mutation (new documents,
    new edges) invalidates without explicit bookkeeping.  Lookups are
    lock-free dict reads (GIL-atomic); only inserts and cold-entry
    decodes take the lock, and an insert that races a concurrent build
    of the same term keeps the first stream so every worker sees one
    shared instance.

    ``hits``/``misses`` count lookups cumulatively; they feed the
    serving layer's batch statistics.  They are plain counters updated
    without the lock -- under concurrency they are approximate, which
    is fine for reporting and keeps the read path uncontended.
    """

    def __init__(self):
        # term cache key -> (version, ImpactStream | byte column, persist);
        # a restored entry holds its column (bytes or a sidecar
        # [offset, length] marker) until first served.
        self._streams = {}
        self._sidecar = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _column_blob(self, entry):
        """Column bytes for a cold entry (markers resolve to zero-copy
        sidecar windows)."""
        if isinstance(entry, (bytes, memoryview)):
            return entry
        offset, length = entry
        return self._sidecar.view(offset, length)

    def _materialized(self, term_key, entry):
        """Decode a cold entry to its stream, exactly once.

        Double-checked under the lock: two workers racing on the same
        restored term must end up sharing one ``ImpactStream``.
        """
        with self._lock:
            current = self._streams.get(term_key)
            stream = current[1]
            if not isinstance(stream, ImpactStream):
                stream = ImpactStream.from_column(self._column_blob(stream))
                self._streams[term_key] = (current[0], stream, current[2])
        return stream

    def get(self, term_key, version):
        """The cached stream for ``term_key`` at ``version``, or None."""
        entry = self._streams.get(term_key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            stream = entry[1]
            if not isinstance(stream, ImpactStream):
                stream = self._materialized(term_key, entry)
            return stream
        self.misses += 1
        return None

    def put(self, term_key, version, stream, persist=True):
        """Cache ``stream``; returns the store's instance (first wins).

        ``persist=False`` keeps the stream in memory but out of
        snapshots -- used for match-all terms, whose streams are just
        every context-matching node at a constant score: cheap to
        rebuild, large to store.
        """
        with self._lock:
            entry = self._streams.get(term_key)
            if entry is not None and entry[0] == version:
                cached = entry[1]
                if isinstance(cached, ImpactStream):
                    return cached
            self._streams[term_key] = (version, stream, persist)
        return stream

    def counters(self):
        """Cumulative hit/miss counters (batch-stats reporting)."""
        return {"stream_hits": self.hits, "stream_misses": self.misses}

    def __len__(self):
        return len(self._streams)

    def estimated_memory(self):
        """Resident-footprint digest (``repro info``, benchmarks)."""
        with self._lock:
            column_bytes = 0
            materialized = 0
            entries = 0
            for _, stream, _ in self._streams.values():
                entries += 1
                if isinstance(stream, ImpactStream):
                    materialized += 1
                    column_bytes += (
                        len(stream.scores) * stream.scores.itemsize
                        + len(stream.node_ids) * stream.node_ids.itemsize
                    )
                else:
                    column_bytes += len(self._column_blob(stream))
            return {
                "streams": entries,
                "materialized_streams": materialized,
                "column_bytes": column_bytes,
            }

    # -- snapshot serialization ---------------------------------------------

    def to_dict(self, version=None, columnar=False):
        """Snapshot form; ``version`` keeps only that graph version.

        Persisting only current-version, persistable entries keeps
        snapshot files lean -- stale streams could never be served
        again, and non-persist (match-all) streams rebuild cheaply.
        Records are sorted by term key so output is deterministic.
        The entry table is copied under the lock: a concurrent worker's
        ``put`` must not mutate the dict mid-iteration.

        ``columnar=True`` replaces each record's score/id lists with a
        ``column`` reference into ``columns_inline`` (still-cold
        entries pass their bytes through undecoded); the snapshot
        writer moves the blobs into the binary sidecar.
        """
        with self._lock:
            entries = sorted(self._streams.items())
        records = []
        columns = {}
        for key, (entry_version, stream, persist) in entries:
            if not persist:
                continue
            if version is not None and entry_version != version:
                continue
            if columnar:
                name = f"s{len(records)}"
                if isinstance(stream, ImpactStream):
                    columns[name] = stream.to_column()
                else:
                    columns[name] = bytes(self._column_blob(stream))
                records.append({
                    "term": list(key),
                    "version": entry_version,
                    "column": name,
                })
            else:
                if not isinstance(stream, ImpactStream):
                    stream = ImpactStream.from_column(
                        self._column_blob(stream)
                    )
                records.append({
                    "term": list(key),
                    "version": entry_version,
                    "scores": list(stream.scores),
                    "node_ids": list(stream.node_ids),
                })
        payload = {"streams": records}
        if columnar:
            payload["columns_inline"] = columns
        return payload

    @classmethod
    def from_dict(cls, payload, sidecar=None):
        """Rebuild a store from :meth:`to_dict`.

        JSON round-trips doubles exactly (and byte columns trivially
        so), so restored streams serve the same bytes the saving system
        computed.  Columnar records stay cold until first served.
        """
        store = cls()
        columns = payload.get("columns_inline")
        if columns is None:
            columns = payload.get("columns")
            store._sidecar = sidecar
        for record in payload.get("streams", ()):
            name = record.get("column")
            if name is not None:
                stream = columns[name]
            else:
                stream = ImpactStream(record["scores"], record["node_ids"])
            store._streams[tuple(record["term"])] = (
                record["version"],
                stream,
                True,
            )
        return store

    def __repr__(self):
        return (
            f"ImpactStreamStore({len(self._streams)} streams, "
            f"{self.hits} hits, {self.misses} misses)"
        )
