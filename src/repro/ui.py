"""Text renderings of the SEDA GUI panels (Figures 5 and 7).

The paper's user interface has five panels -- query, context summary,
connection summary, results, and the data-cube screen.  This module
renders each as plain text so that examples, notebooks, and logs can
show the same information the GUI would; every function takes the
corresponding object from the programmatic API.
"""


def render_query(query):
    """The query panel: one line per (context, search) term."""
    lines = ["Query:"]
    for index, term in enumerate(query.terms, start=1):
        lines.append(f"  {index}. context={term.context!r}  "
                     f"search={term.search!r}")
    return "\n".join(lines)


def render_results(results, collection, limit=10):
    """The result panel: ranked tuples with paths and values."""
    lines = [f"Top-{min(limit, len(results))} results:"]
    if not results:
        lines.append("  (no results)")
    for rank, result in enumerate(results[:limit], start=1):
        lines.append(f"  {rank:2d}. {result.describe(collection)}")
    return "\n".join(lines)


def render_context_summary(summary, limit_per_term=8):
    """The context summary panel: per-term path buckets with counts."""
    lines = ["Context summary (choose the contexts you mean):"]
    for index, bucket in enumerate(summary, start=1):
        lines.append(f"  term {index}: {len(bucket)} context(s)")
        for entry in bucket.entries[:limit_per_term]:
            lines.append(
                f"    [{entry.occurrences:6d} nodes, "
                f"{entry.document_frequency:5d} docs]  {entry.path}"
            )
        hidden = len(bucket) - limit_per_term
        if hidden > 0:
            lines.append(f"    ... {hidden} more")
    lines.append(
        f"  ({summary.combination_count()} term-context combinations)"
    )
    return "\n".join(lines)


def render_connection_summary(summary, limit=10):
    """The connection summary panel: pick-or-drop relationship list."""
    lines = ["Connection summary (pick the relationships you mean):"]
    connections = summary.all_connections()
    if not connections:
        lines.append("  (no connections among the top-k results)")
    for (i, j), connection, support in connections[:limit]:
        lines.append(
            f"  terms {i + 1}-{j + 1} [{support:3d} tuples]  "
            f"{connection.describe()}"
        )
    hidden = len(connections) - limit
    if hidden > 0:
        lines.append(f"  ... {hidden} more")
    return "\n".join(lines)


def render_result_table(table, limit=10):
    """The Figure 3(a) full query result R(q)."""
    lines = [f"R(q): {len(table)} tuples, columns {table.schema}"]
    for row in table.display_rows()[:limit]:
        lines.append("  " + " | ".join(row))
    hidden = len(table) - limit
    if hidden > 0:
        lines.append(f"  ... {hidden} more rows")
    return "\n".join(lines)


def render_star_schema(schema, row_limit=10):
    """The data-cube panel (Figure 7): fact and dimension tables."""
    lines = ["Star schema:"]
    for name, fact in sorted(schema.fact_tables.items()):
        lines.append(f"  fact {name} ({', '.join(fact.columns)}): "
                     f"{len(fact)} rows")
        for row in fact.rows[:row_limit]:
            lines.append("    " + " | ".join(str(cell) for cell in row))
        hidden = len(fact) - row_limit
        if hidden > 0:
            lines.append(f"    ... {hidden} more rows")
    for name, dimension in sorted(schema.dimension_tables.items()):
        members = ", ".join(list(dimension)[:8])
        suffix = ", ..." if len(dimension) > 8 else ""
        lines.append(f"  dimension {name}: {{{members}{suffix}}} "
                     f"({len(dimension)} members)")
    return "\n".join(lines)


def render_session(session, limit=10):
    """All panels of one exploration step, stacked (Figure 5 layout)."""
    collection = session.system.collection
    parts = [
        render_query(session.query),
        "",
        render_results(session.results, collection, limit=limit),
        "",
        render_context_summary(session.context_summary),
        "",
        render_connection_summary(session.connection_summary, limit=limit),
    ]
    return "\n".join(parts)
