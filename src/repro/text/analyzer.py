"""Analyzer pipeline: tokenize -> normalize -> filter -> (optionally) stem."""

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import Token, tokenize


class Analyzer:
    """Turns raw text into index/search terms.

    The same analyzer instance must be used at index and query time so
    that normalization agrees.  With default settings, terms are
    lower-cased tokens; stopword filtering and Porter stemming can be
    enabled where a caller needs them.
    """

    def __init__(self, lowercase=True, remove_stopwords=False, stem=False,
                 stopwords=STOPWORDS):
        self.lowercase = lowercase
        self.remove_stopwords = remove_stopwords
        self.stopwords = stopwords
        self._stemmer = PorterStemmer() if stem else None

    def to_dict(self):
        """Snapshot form of the analyzer configuration.

        Custom stopword sets are persisted only when they differ from the
        built-in list, keeping the common case to three booleans.
        """
        payload = {
            "lowercase": self.lowercase,
            "remove_stopwords": self.remove_stopwords,
            "stem": self._stemmer is not None,
        }
        if set(self.stopwords) != set(STOPWORDS):
            payload["stopwords"] = sorted(self.stopwords)
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Rebuild an equivalently configured analyzer."""
        custom = payload.get("stopwords")
        return cls(
            lowercase=payload["lowercase"],
            remove_stopwords=payload["remove_stopwords"],
            stem=payload["stem"],
            stopwords=frozenset(custom) if custom is not None else STOPWORDS,
        )

    def analyze(self, text):
        """Return the list of analyzed :class:`Token` objects for ``text``.

        Token positions are preserved from the raw token stream (holes
        where stopwords were removed), so phrase queries remain exact.
        """
        output = []
        for token in tokenize(text):
            term = token.text.lower() if self.lowercase else token.text
            if self.remove_stopwords and term in self.stopwords:
                continue
            if self._stemmer is not None:
                term = self._stemmer.stem(term)
            output.append(Token(term, token.start, token.end, token.position))
        return output

    def terms(self, text):
        """The analyzed term strings only (no offsets)."""
        return [token.text for token in self.analyze(text)]

    def term(self, word):
        """Analyze a single query word; returns ``None`` if it vanishes.

        Used by the query parser: a query keyword that normalizes to a
        stopword (when filtering is on) cannot match anything.
        """
        analyzed = self.analyze(word)
        if not analyzed:
            return None
        if len(analyzed) == 1:
            return analyzed[0].text
        # A "word" that splits into several tokens (e.g. "GDP_ppp" with a
        # different analyzer) is treated as a phrase by the caller.
        return [token.text for token in analyzed]
