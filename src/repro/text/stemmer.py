"""A from-scratch implementation of the Porter stemming algorithm.

Implements M.F. Porter, "An algorithm for suffix stripping" (1980),
steps 1a through 5b.  Used by the optional stemming analyzer; the
default SEDA analyzer does not stem (data values such as country names
should match exactly), but the paper's Lucene substrate offers stemming
and so do we.
"""

_VOWELS = set("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; ``stem(word)`` returns the stem."""

    # -- measure and shape predicates, per the paper's definitions ---------

    def _is_consonant(self, word, i):
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem):
        """The Porter measure m: number of VC sequences in the stem."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem)):
            consonant = self._is_consonant(stem, i)
            if consonant and previous_was_vowel:
                m += 1
            previous_was_vowel = not consonant
        return m

    def _contains_vowel(self, stem):
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word):
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word):
        if len(word) < 3:
            return False
        if not self._is_consonant(word, len(word) - 3):
            return False
        if self._is_consonant(word, len(word) - 2):
            return False
        if not self._is_consonant(word, len(word) - 1):
            return False
        return word[-1] not in "wxy"

    # -- rule application ----------------------------------------------------

    def _replace(self, word, suffix, replacement, min_measure):
        """Apply ``suffix -> replacement`` when the stem measure allows."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if self._measure(stem) > min_measure:
            return stem + replacement
        return word

    def stem(self, word):
        """Return the Porter stem of ``word`` (lowercased)."""
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    def _step1a(self, word):
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word):
        if word.endswith("eed"):
            stem = word[:-3]
            if self._measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word):
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"),
        ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
        ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
        ("iviti", "ive"), ("biliti", "ble"),
    )

    def _step2(self, word):
        for suffix, replacement in self._STEP2_RULES:
            result = self._replace(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP3_RULES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"),
        ("iciti", "ic"), ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, word):
        for suffix, replacement in self._STEP3_RULES:
            result = self._replace(word, suffix, replacement, 0)
            if result is not None:
                return result
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant",
        "ement", "ment", "ent", "ou", "ism", "ate", "iti", "ous",
        "ive", "ize",
    )

    def _step4(self, word):
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return word
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
        return word

    def _step5a(self, word):
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return word

    def _step5b(self, word):
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word
