"""A small English stopword list.

Kept deliberately short: SEDA queries target data values and tag names,
and an aggressive stopword list would make terms like ``"us"`` (a
country code) unsearchable.  The set mirrors the classic Lucene default.
"""

STOPWORDS = frozenset(
    """
    a an and are as at be but by for if in into is it no not of on or
    such that the their then there these they this to was will with
    """.split()
)
