"""Word tokenizer for XML text content.

Splits on non-alphanumeric boundaries but keeps numbers with embedded
punctuation together (``12.31T``, ``16.9%``, ``2,450``) because the
World Factbook / Mondial content SEDA indexes is full of such values
and they must remain searchable as single terms.
"""


class Token:
    """A token with its character offsets and ordinal position."""

    __slots__ = ("text", "start", "end", "position")

    def __init__(self, text, start, end, position):
        self.text = text
        self.start = start
        self.end = end
        self.position = position

    def __eq__(self, other):
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.text == other.text
            and self.start == other.start
            and self.end == other.end
            and self.position == other.position
        )

    def __repr__(self):
        return f"Token({self.text!r}, {self.start}:{self.end}, pos={self.position})"


_WORD_PUNCT = set(".,%$'-_")


def _is_word_char(ch):
    return ch.isalnum()


def tokenize(text):
    """Yield :class:`Token` objects for ``text``.

    A token is a maximal run of alphanumerics, possibly containing
    internal punctuation from ``.,%$'-_`` when both neighbors keep the
    run going (so ``GDP_ppp`` and ``12.31`` are single tokens while a
    sentence-final period is not).  Trailing ``%`` and ``$`` signs are
    kept (``16.9%``), matching how measure values appear in the data.
    """
    tokens = []
    i = 0
    length = len(text)
    position = 0
    while i < length:
        if not _is_word_char(text[i]):
            i += 1
            continue
        start = i
        i += 1
        while i < length:
            ch = text[i]
            if _is_word_char(ch):
                i += 1
                continue
            if ch in _WORD_PUNCT:
                # Keep the punctuation when it glues two word chars or is
                # a trailing %/$ unit marker.
                if i + 1 < length and _is_word_char(text[i + 1]):
                    i += 2
                    continue
                if ch in "%$":
                    i += 1
                break
            break
        tokens.append(Token(text[start:i], start, i, position))
        position += 1
    return tokens
