"""Text analysis substrate (the role Lucene analyzers play in the paper).

Provides tokenization, normalization, stopword filtering, and a
from-scratch Porter stemmer.  The default :class:`Analyzer` used by the
indexes lower-cases and keeps stopwords (SEDA queries are short and
data-oriented -- e.g. ``"United States"`` -- so recall matters more than
index size); stemming and stopword removal are opt-in.
"""

from repro.text.analyzer import Analyzer
from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenizer import Token, tokenize

__all__ = ["Analyzer", "PorterStemmer", "STOPWORDS", "Token", "tokenize"]
