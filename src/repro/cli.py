"""Command-line interface: explore collections without writing code.

Subcommands::

    python -m repro stats   --dataset factbook --scale 0.02
    python -m repro search  --dataset factbook --scale 0.02 \
        --term '*:"United States"' --term 'trade_country:*' -k 10
    python -m repro table1  --threshold 0.4 --scale 1.0
    python -m repro query1  --scale 0.05
    python -m repro snapshot save seda.snapshot --dataset factbook
    python -m repro snapshot load seda.snapshot --term 'percentage:*'
    python -m repro snapshot info seda.snapshot

``--data DIR`` loads ``*.xml`` files from a directory instead of a
generated dataset, so the CLI works on user collections too.  Terms
are written ``context:search`` (first colon splits); ``*`` on either
side means "any".  ``snapshot save`` persists a fully built system to
one versioned file; ``snapshot load`` cold-starts from it without
re-parsing or re-indexing.
"""

import argparse
import os
import pathlib
import sys

from repro import ui
from repro.storage.catalog import CollectionCatalog
from repro.storage.snapshot import SnapshotError, snapshot_info
from repro.summaries.dataguide import DataguideBuilder
from repro.system import Seda

_DATASETS = ("factbook", "mondial", "googlebase", "recipeml")


def _build_generator(name, scale):
    from repro.datasets import (
        FactbookGenerator,
        GoogleBaseGenerator,
        MondialGenerator,
        RecipeMLGenerator,
    )

    generators = {
        "factbook": FactbookGenerator,
        "mondial": MondialGenerator,
        "googlebase": GoogleBaseGenerator,
        "recipeml": RecipeMLGenerator,
    }
    return generators[name](scale=scale)


def _load_collection(args):
    """The collection selected by --data or --dataset."""
    if args.data:
        from repro.model.collection import DocumentCollection

        directory = pathlib.Path(args.data)
        files = sorted(directory.glob("*.xml"))
        if not files:
            raise SystemExit(f"no *.xml files found in {directory}")
        collection = DocumentCollection(name=directory.name)
        for path in files:
            with open(path, "r", encoding="utf-8") as handle:
                collection.add_document(handle.read(), name=path.stem)
        return collection
    return _build_generator(args.dataset, args.scale).build_collection()


def _build_seda(args):
    collection = _load_collection(args)
    value_links = ()
    if not args.data and args.dataset == "factbook":
        from repro.datasets.factbook import FactbookGenerator

        value_links = FactbookGenerator.value_link_specs()
    seda = Seda(collection, value_links=value_links)
    if not args.data and args.dataset == "factbook":
        from repro.datasets.factbook import FactbookGenerator

        FactbookGenerator.register_standard_definitions(seda.registry)
    return seda


def _parse_term(text):
    """``context:search`` -> a (context, search) pair."""
    if ":" in text:
        context, search = text.split(":", 1)
    else:
        context, search = "*", text
    return context.strip() or "*", search.strip() or "*"


# -- subcommands -----------------------------------------------------------

def cmd_stats(args, out):
    collection = _load_collection(args)
    catalog = CollectionCatalog(collection)
    summary = catalog.summary()
    print(f"collection: {collection.name}", file=out)
    for key, value in summary.items():
        print(f"  {key}: {value}", file=out)
    print("  top paths by occurrences:", file=out)
    for path, occurrences, documents in catalog.path_frequencies()[:args.top]:
        print(f"    {occurrences:8d} nodes {documents:6d} docs  {path}",
              file=out)
    tail = catalog.long_tail()
    print(f"  long-tail paths (<25% of docs): {len(tail)}", file=out)
    return 0


def cmd_search(args, out):
    if not args.term:
        raise SystemExit("search needs at least one --term")
    seda = _build_seda(args)
    pairs = [_parse_term(term) for term in args.term]
    session = seda.search(pairs, k=args.k)
    print(ui.render_session(session), file=out)
    return 0


def cmd_table1(args, out):
    print(f"Table 1 at threshold {args.threshold} "
          f"(scale {args.scale}):", file=out)
    for name in _DATASETS:
        collection = _build_generator(name, args.scale).build_collection()
        builder = DataguideBuilder(args.threshold)
        for document in collection.documents:
            builder.add_paths(document.paths(), document.doc_id)
        print(f"  {name:12s} documents={len(collection):6d} "
              f"dataguides={builder.guide_count}", file=out)
    return 0


def cmd_query1(args, out):
    from repro.summaries.connection import TreeConnection

    tc = "/country/economy/import_partners/item/trade_country"
    pct = "/country/economy/import_partners/item/percentage"
    item = "/country/economy/import_partners/item"

    args.dataset = "factbook"
    args.data = None
    seda = _build_seda(args)
    session = seda.search(
        [("*", '"United States"'), ("trade_country", "*"),
         ("percentage", "*")],
        k=args.k,
    )
    print(ui.render_session(session), file=out)
    refined = session.refine_contexts({0: ["/country"], 1: [tc], 2: [pct]})
    chosen = refined.refine_connections([
        ((0, 1), TreeConnection("/country", tc, "/country")),
        ((1, 2), TreeConnection(tc, pct, item)),
    ])
    table = chosen.complete_results()
    print("", file=out)
    print(ui.render_result_table(table), file=out)
    schema = chosen.build_cube(table)
    print("", file=out)
    print(ui.render_star_schema(schema), file=out)
    print("", file=out)
    print(f"session effort: {chosen.effort.summary()}", file=out)
    return 0


def cmd_snapshot_save(args, out):
    seda = _build_seda(args)
    seda.save(args.path)
    print(f"saved snapshot to {args.path}", file=out)
    print(f"  documents: {len(seda.collection)}", file=out)
    print(f"  nodes: {seda.collection.node_count}", file=out)
    print(f"  bytes: {os.path.getsize(args.path)}", file=out)
    return 0


def _read_snapshot_or_exit(reader, path):
    """Run ``reader(path)``, turning file problems into clean exits."""
    try:
        return reader(path)
    except FileNotFoundError:
        raise SystemExit(f"no snapshot file at {path}")
    except SnapshotError as error:
        raise SystemExit(str(error))


def cmd_snapshot_load(args, out):
    seda = _read_snapshot_or_exit(Seda.load, args.path)
    print(f"loaded snapshot {args.path}", file=out)
    print(f"  collection: {seda.collection.name}", file=out)
    print(f"  documents: {len(seda.collection)}", file=out)
    print(f"  nodes: {seda.collection.node_count}", file=out)
    print(f"  link edges: {len(seda.graph.edges)}", file=out)
    print(f"  dataguides: {len(seda.dataguides)}", file=out)
    if args.term:
        pairs = [_parse_term(term) for term in args.term]
        session = seda.search(pairs, k=args.k)
        print("", file=out)
        print(ui.render_session(session), file=out)
    return 0


def cmd_snapshot_info(args, out):
    info = _read_snapshot_or_exit(snapshot_info, args.path)
    print(f"snapshot {args.path}", file=out)
    for key, value in info["meta"].items():
        print(f"  {key}: {value}", file=out)
    print("  records:", file=out)
    for name, size in info["records"]:
        print(f"    {size:10d} bytes  {name}", file=out)
    print(f"  total: {info['total_bytes']} bytes", file=out)
    return 0


# -- argument parsing -------------------------------------------------------------

def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEDA: search-driven analysis of heterogeneous XML data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_source_options(sub):
        sub.add_argument("--dataset", choices=_DATASETS, default="factbook",
                         help="generated dataset to load (default factbook)")
        sub.add_argument("--scale", type=float, default=0.02,
                         help="dataset scale in (0, 1] (default 0.02)")
        sub.add_argument("--data", default=None, metavar="DIR",
                         help="load *.xml files from DIR instead")

    stats = subparsers.add_parser("stats", help="collection statistics")
    add_source_options(stats)
    stats.add_argument("--top", type=int, default=10,
                       help="number of top paths to print")
    stats.set_defaults(handler=cmd_stats)

    search = subparsers.add_parser("search", help="run a SEDA query")
    add_source_options(search)
    search.add_argument("--term", action="append", default=[],
                        metavar="CONTEXT:SEARCH",
                        help="query term; repeatable")
    search.add_argument("-k", type=int, default=10, help="top-k size")
    search.set_defaults(handler=cmd_search)

    table1 = subparsers.add_parser(
        "table1", help="regenerate the paper's Table 1"
    )
    table1.add_argument("--threshold", type=float, default=0.4)
    table1.add_argument("--scale", type=float, default=1.0)
    table1.set_defaults(handler=cmd_table1)

    query1 = subparsers.add_parser(
        "query1", help="run the paper's Query 1 walk-through (Figure 3)"
    )
    query1.add_argument("--scale", type=float, default=0.05)
    query1.add_argument("-k", type=int, default=10)
    query1.set_defaults(handler=cmd_query1)

    snapshot = subparsers.add_parser(
        "snapshot", help="save, load, or inspect whole-system snapshots"
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    snap_save = snap_sub.add_parser(
        "save", help="build a system and persist it to one snapshot file"
    )
    add_source_options(snap_save)
    snap_save.add_argument("path", help="snapshot file to write")
    snap_save.set_defaults(handler=cmd_snapshot_save)

    snap_load = snap_sub.add_parser(
        "load", help="cold-start from a snapshot (optionally run a query)"
    )
    snap_load.add_argument("path", help="snapshot file to read")
    snap_load.add_argument("--term", action="append", default=[],
                           metavar="CONTEXT:SEARCH",
                           help="query term to run after loading; repeatable")
    snap_load.add_argument("-k", type=int, default=10, help="top-k size")
    snap_load.set_defaults(handler=cmd_snapshot_load)

    snap_info = snap_sub.add_parser(
        "info", help="print snapshot metadata and record sizes"
    )
    snap_info.add_argument("path", help="snapshot file to inspect")
    snap_info.set_defaults(handler=cmd_snapshot_info)

    return parser


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
