"""Command-line interface: explore collections without writing code.

Subcommands::

    python -m repro stats   --dataset factbook --scale 0.02
    python -m repro stats   --queries queries.txt --json
    python -m repro stats   --snapshot seda.snapshot
    python -m repro search  --dataset factbook --scale 0.02 \
        --term '*:"United States"' --term 'trade_country:*' -k 10
    python -m repro explain --term 'trade_country:*' --term 'percentage:*'
    python -m repro table1  --threshold 0.4 --scale 1.0
    python -m repro query1  --scale 0.05
    python -m repro info    --dataset factbook --scale 0.05
    python -m repro info    --snapshot seda.snapshot --json
    python -m repro snapshot save seda.snapshot --dataset factbook
    python -m repro snapshot load seda.snapshot --term 'percentage:*'
    python -m repro snapshot info seda.snapshot
    python -m repro fsck    seda.snapshot
    python -m repro fsck    seda.shards --json
    python -m repro serve-batch --queries queries.txt --workers 4
    python -m repro serve   --snapshot seda.snapshot --port 8080
    python -m repro bench-queries --workers 4 --repeat 5 --shards 2
    python -m repro shard build seda.shards --dataset factbook --shards 4
    python -m repro shard search seda.shards --term 'percentage:*'
    python -m repro shard info seda.shards
    python -m repro shard skew seda.shards
    python -m repro shard split seda.shards 1
    python -m repro shard merge seda.shards 0 2
    python -m repro shard rebalance seda.shards --metric documents

``--data DIR`` loads ``*.xml`` files from a directory instead of a
generated dataset, so the CLI works on user collections too.  Terms
are written ``context:search`` (first colon splits); ``*`` on either
side means "any".  ``snapshot save`` persists a fully built system to
one versioned file; ``snapshot load`` cold-starts from it without
re-parsing or re-indexing.

``serve-batch`` and ``bench-queries`` exercise the concurrent query
service.  A query file holds one query per line, terms separated by
``;;`` (blank lines and ``#`` comments are skipped)::

    *:"United States" ;; trade_country:*
    trade_country:* ;; percentage:*

Without ``--queries`` both commands fall back to a built-in Factbook
query set.  ``bench-queries`` runs every query sequentially through
the bare top-k searcher and then as one concurrent batch through the
service, verifies the two answer sets are identical, and reports both
throughputs -- it exits non-zero on any mismatch, which CI uses as a
serving-path smoke check.  With ``--shards N`` it additionally builds
an N-shard copy of the corpus (without value links -- hash
partitioning does not co-locate linked documents) and equality-gates
the scatter-gather path against an unsharded build of the same corpus.

``serve`` is the long-running form: it loads a snapshot (single-file
or sharded directory, replaying any write-ahead log), serves queries
and **online writes** over HTTP/JSON (``/search``, ``/search_many``,
``/explain``, ``/add_documents``, ``/healthz``, ``/metrics``), and on
``POST /admin/drain`` -- or SIGINT/SIGTERM -- quiesces, commits a
fresh snapshot, truncates the WAL, and exits.  See
docs/OPERATIONS.md ("Running the server") for the endpoint reference
and the admission-control knobs.

``shard build`` partitions a collection across N shards (parallel
worker-process builds unless ``--serial``) and saves the sharded
snapshot directory; ``shard search`` scatter-gathers a query over it
(restoring shards lazily); ``shard info`` prints the topology from the
manifest alone, loading nothing (``--memory`` additionally loads every
shard and reports per-shard compact-index memory).

``shard skew`` reports per-shard document/node/byte counts and (when
the snapshot retains a stats registry) per-shard query traffic, plus a
max-over-mean imbalance ratio per metric -- the input to deciding when
to ``shard split`` a hot shard, ``shard merge`` two cold ones, or
``shard rebalance`` documents between shards.  All three topology
operations rewrite **only the affected shards' files** and commit by
writing a new manifest generation carrying the updated
document-to-shard assignment map; answers are byte-identical before
and after (see docs/OPERATIONS.md, "Shard topology").

``info`` reports the compact-index memory estimates of one system --
encoded column bytes, interned-label and trie sizes, hot vs. cold term
counts -- either built from a dataset or restored via ``--snapshot``
(see docs/OPERATIONS.md for the field glossary).

``stats`` doubles as the observability reader: with ``--queries`` it
serves the workload through the concurrent service with a retained
:class:`~repro.obs.registry.StatsRegistry` attached and prints the
per-fingerprint statistics table (latency percentiles, cache-hit/
prune/early-stop rates) plus the slow-query log (``--slow-ms`` sets
the threshold; ``--save`` persists the system *with* its registry);
with ``--snapshot`` it renders the registry stored in an existing
snapshot file or sharded directory without serving anything.  ``--json``
emits the same data machine-readably.  ``explain`` runs one query and
reports how the TA search executed: streams opened, per-term candidate
and sorted-access counts, tuples scored vs. pruned, which combine path
ran, and why the search stopped.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro import ui
from repro.query.term import Query

# The term/query-line syntax is shared with the serving wire protocol:
# a /search body accepts the same string form this CLI parses.
from repro.serving.app import parse_query_line as _parse_query_line
from repro.serving.app import parse_term as _parse_term
from repro.storage.catalog import CollectionCatalog
from repro.storage.snapshot import SnapshotError, snapshot_info
from repro.summaries.dataguide import DataguideBuilder
from repro.system import Seda

_DATASETS = ("factbook", "mondial", "googlebase", "recipeml")


def _build_generator(name, scale):
    from repro.datasets import (
        FactbookGenerator,
        GoogleBaseGenerator,
        MondialGenerator,
        RecipeMLGenerator,
    )

    generators = {
        "factbook": FactbookGenerator,
        "mondial": MondialGenerator,
        "googlebase": GoogleBaseGenerator,
        "recipeml": RecipeMLGenerator,
    }
    return generators[name](scale=scale)


def _load_collection(args):
    """The collection selected by --data or --dataset."""
    if args.data:
        from repro.model.collection import DocumentCollection

        collection = DocumentCollection(name=pathlib.Path(args.data).name)
        for name, text in _load_documents(args):
            collection.add_document(text, name=name)
        return collection
    return _build_generator(args.dataset, args.scale).build_collection()


def _load_documents(args):
    """``(name, source)`` pairs for the selected corpus.

    The sharded builders need the raw documents (they partition before
    building any collection); generators yield the same pairs
    :func:`_load_collection` ingests, so both paths see one corpus.
    """
    if args.data:
        directory = pathlib.Path(args.data)
        files = sorted(directory.glob("*.xml"))
        if not files:
            raise SystemExit(f"no *.xml files found in {directory}")
        pairs = []
        for path in files:
            with open(path, "r", encoding="utf-8") as handle:
                pairs.append((path.stem, handle.read()))
        return pairs
    return list(_build_generator(args.dataset, args.scale).documents())


def _build_seda(args):
    collection = _load_collection(args)
    value_links = ()
    if not args.data and args.dataset == "factbook":
        from repro.datasets.factbook import FactbookGenerator

        value_links = FactbookGenerator.value_link_specs()
    seda = Seda(collection, value_links=value_links)
    if not args.data and args.dataset == "factbook":
        from repro.datasets.factbook import FactbookGenerator

        FactbookGenerator.register_standard_definitions(seda.registry)
    return seda




#: Fallback query set for serve-batch/bench-queries without --queries:
#: the paper's Query 1 terms and variants, including match-all pairs
#: whose tuples tie on score (exercising deterministic tie-breaking).
_FACTBOOK_QUERY_SET = (
    '*:"United States" ;; trade_country:*',
    "trade_country:* ;; percentage:*",
    '*:"United States" ;; trade_country:* ;; percentage:*',
    "*:canada ;; year:*",
    "*:germany ;; percentage:*",
)


def _load_queries(args):
    """The batch described by --queries, or the built-in query set."""
    if args.queries:
        with open(args.queries, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = _FACTBOOK_QUERY_SET
    queries = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        pairs = _parse_query_line(line)
        if pairs:
            queries.append(pairs)
    if not queries:
        raise SystemExit("the query file contains no queries")
    return queries


def _canonical_results(results):
    """Byte-exact serialization of one query's results, for comparison."""
    return json.dumps(
        [[list(r.node_ids), round(r.score, 12)] for r in results],
        separators=(",", ":"),
    )


# -- subcommands -----------------------------------------------------------

def cmd_stats(args, out):
    if args.queries or args.snapshot:
        return _cmd_query_stats(args, out)
    if args.json:
        raise SystemExit(
            "stats --json reports the query-statistics registry; combine "
            "it with --queries (serve a workload) or --snapshot (read a "
            "saved registry)"
        )
    if args.save:
        raise SystemExit("stats --save needs --queries (it persists the "
                         "system served with observability on)")
    collection = _load_collection(args)
    catalog = CollectionCatalog(collection)
    summary = catalog.summary()
    print(f"collection: {collection.name}", file=out)
    for key, value in summary.items():
        print(f"  {key}: {value}", file=out)
    print("  top paths by occurrences:", file=out)
    for path, occurrences, documents in catalog.path_frequencies()[:args.top]:
        print(f"    {occurrences:8d} nodes {documents:6d} docs  {path}",
              file=out)
    tail = catalog.long_tail()
    print(f"  long-tail paths (<25% of docs): {len(tail)}", file=out)
    return 0


def _load_registry_or_exit(path):
    """The registry stored in a snapshot file or sharded directory."""
    from repro.obs.registry import StatsRegistry
    from repro.storage.snapshot import read_obs_state, read_snapshot

    if os.path.isdir(path):
        payload = read_obs_state(path)
        if payload is None:
            raise SystemExit(
                f"{path}: no observability history (obs.json); save the "
                f"collection after enable_observability()"
            )
        return StatsRegistry.from_dict(payload)
    _meta, records = _read_snapshot_or_exit(read_snapshot, path)
    if "obs" not in records:
        raise SystemExit(
            f"{path}: snapshot carries no 'obs' record (it was saved "
            f"without observability enabled)"
        )
    return StatsRegistry.from_dict(records["obs"])


def _cmd_query_stats(args, out):
    """The ``stats --queries/--snapshot`` leg: the query registry."""
    if args.snapshot:
        if args.queries or args.save:
            raise SystemExit("stats --snapshot only reads a saved "
                             "registry; drop --queries/--save")
        registry = _load_registry_or_exit(args.snapshot)
    else:
        seda = _build_seda(args)
        registry = seda.enable_observability(
            slow_threshold=args.slow_ms / 1000.0
        )
        queries = _load_queries(args)
        service = seda.query_service(workers=args.workers)
        service.execute_batch(queries, k=args.k)
        if args.save:
            seda.save(args.save)
    if args.json:
        print(json.dumps(registry.metrics(), indent=2, sort_keys=True),
              file=out)
    else:
        print(registry.render_table(), file=out)
        if args.save:
            print(f"saved snapshot (with query statistics) to {args.save}",
                  file=out)
    return 0


def cmd_explain(args, out):
    """Run one query and report how the TA search executed."""
    from repro.obs import explain

    if not args.term:
        raise SystemExit("explain needs at least one --term")
    if args.snapshot:
        seda = _read_snapshot_or_exit(Seda.load, args.snapshot)
    else:
        seda = _build_seda(args)
    pairs = [_parse_term(term) for term in args.term]
    report = explain(seda.topk, pairs, k=args.k)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True),
              file=out)
    else:
        print(report.render(), file=out)
    return 0


def cmd_search(args, out):
    if not args.term:
        raise SystemExit("search needs at least one --term")
    seda = _build_seda(args)
    pairs = [_parse_term(term) for term in args.term]
    session = seda.search(pairs, k=args.k)
    print(ui.render_session(session), file=out)
    return 0


def cmd_table1(args, out):
    print(f"Table 1 at threshold {args.threshold} "
          f"(scale {args.scale}):", file=out)
    for name in _DATASETS:
        collection = _build_generator(name, args.scale).build_collection()
        builder = DataguideBuilder(args.threshold)
        for document in collection.documents:
            builder.add_paths(document.paths(), document.doc_id)
        print(f"  {name:12s} documents={len(collection):6d} "
              f"dataguides={builder.guide_count}", file=out)
    return 0


def cmd_query1(args, out):
    from repro.summaries.connection import TreeConnection

    tc = "/country/economy/import_partners/item/trade_country"
    pct = "/country/economy/import_partners/item/percentage"
    item = "/country/economy/import_partners/item"

    args.dataset = "factbook"
    args.data = None
    seda = _build_seda(args)
    session = seda.search(
        [("*", '"United States"'), ("trade_country", "*"),
         ("percentage", "*")],
        k=args.k,
    )
    print(ui.render_session(session), file=out)
    refined = session.refine_contexts({0: ["/country"], 1: [tc], 2: [pct]})
    chosen = refined.refine_connections([
        ((0, 1), TreeConnection("/country", tc, "/country")),
        ((1, 2), TreeConnection(tc, pct, item)),
    ])
    table = chosen.complete_results()
    print("", file=out)
    print(ui.render_result_table(table), file=out)
    schema = chosen.build_cube(table)
    print("", file=out)
    print(ui.render_star_schema(schema), file=out)
    print("", file=out)
    print(f"session effort: {chosen.effort.summary()}", file=out)
    return 0


def cmd_serve_batch(args, out):
    """Run one concurrent batch and print per-query results."""
    seda = _build_seda(args)
    queries = _load_queries(args)
    service = seda.query_service(workers=args.workers)
    results, stats = service.execute_batch(queries, k=args.k)
    for pairs, result, query_stats in zip(queries, results, stats.per_query):
        rendered = " ;; ".join(f"{c}:{s}" for c, s in pairs)
        source = "cache" if query_stats.cache_hit else "topk"
        print(f"query [{source}] {rendered}", file=out)
        if not result:
            print("  (no results)", file=out)
        for entry in result:
            print(f"  {entry.describe(seda.collection)}", file=out)
    print("", file=out)
    print(f"batch: {stats.summary()}", file=out)
    return 0


def cmd_bench_queries(args, out):
    """Sequential vs batched serving throughput, with an equality gate."""
    from repro.search.scoring import ScoringModel
    from repro.search.topk import TopKSearcher

    seda = _build_seda(args)
    base = _load_queries(args)
    # Model hot-query skew: every distinct query repeated --repeat times.
    queries = [pairs for _ in range(args.repeat) for pairs in base]

    # The sequential baseline gets its own scoring model and stream
    # store: sharing the system's would pre-warm the distance memo and
    # streams the batch phase is then measured against.
    sequential_scoring = ScoringModel(
        seda.collection, seda.inverted, seda.graph, max_hops=seda.max_hops
    )
    searcher = TopKSearcher(seda.matcher, sequential_scoring).warm()
    start = time.perf_counter()
    sequential = [searcher.search(Query.parse(q), k=args.k) for q in queries]
    seq_time = time.perf_counter() - start

    service = seda.query_service(workers=args.workers)
    start = time.perf_counter()
    batched, stats = service.execute_batch(queries, k=args.k)
    batch_time = time.perf_counter() - start

    cached, cached_stats = service.execute_batch(queries, k=args.k)

    print(f"{len(base)} distinct queries x{args.repeat} "
          f"= {len(queries)} served, k={args.k}", file=out)
    print(f"  sequential: {len(queries) / seq_time:10.0f} q/s "
          f"({seq_time * 1000:.1f}ms)", file=out)
    print(f"  batch     : {stats.throughput:10.0f} q/s "
          f"({stats.summary()})", file=out)
    print(f"  cached    : {cached_stats.throughput:10.0f} q/s "
          f"({cached_stats.summary()})", file=out)
    if batch_time > 0:
        print(f"  speedup   : {seq_time / batch_time:.2f}x", file=out)
    print(f"  pruned    : {stats.pruned} candidate tuples skipped by the "
          f"content-score bound", file=out)
    print(f"  caches    : impact streams {stats.stream_hit_rate:.0%} hit "
          f"rate, pair distances {stats.distance_hit_rate:.0%} hit rate "
          f"(batch phase)", file=out)

    mismatches = sum(
        _canonical_results(a) != _canonical_results(b)
        for pair in ((sequential, batched), (sequential, cached))
        for a, b in zip(*pair)
    )
    if mismatches:
        print(f"MISMATCH: {mismatches} result lists differ between the "
              f"sequential and batched/cached paths", file=out)
        return 1
    print("  results   : batched and cached answers identical to "
          "sequential", file=out)
    if args.shards:
        # Any requested count >= 1 runs the gate (a 1-shard topology
        # still exercises the merge/translation path); 0 skips it.
        return _bench_sharded(args, queries, out)
    return 0


def _bench_sharded(args, queries, out):
    """The --shards leg: scatter-gather equality gate + throughput.

    Both systems here are built *without* value links: the hash
    partitioner does not co-locate value-linked documents, and the
    merge-equivalence contract only covers corpora whose links stay
    within one shard (see docs/ARCHITECTURE.md, "Sharding").
    """
    from repro.shard import ShardedSeda

    pairs = _load_documents(args)
    plain = Seda.from_documents(pairs)
    sharded = ShardedSeda.from_documents(
        pairs, shards=args.shards, parallel=False
    )
    expected = [plain.topk.search(Query.parse(q), k=args.k) for q in queries]

    service = sharded.query_service(workers=args.workers)
    start = time.perf_counter()
    answers, stats = service.execute_batch(queries, k=args.k)
    sharded_time = time.perf_counter() - start

    print(f"  sharded   : {len(queries) / sharded_time:10.0f} q/s over "
          f"{args.shards} shards ({stats.summary()})", file=out)
    for line in stats.shard_summary().splitlines():
        print(f"              {line}", file=out)
    mismatches = sum(
        _canonical_results(a) != _canonical_results(b)
        for a, b in zip(expected, answers)
    )
    if mismatches:
        print(f"MISMATCH: {mismatches} result lists differ between the "
              f"unsharded and scatter-gather paths", file=out)
        return 1
    print(f"  results   : scatter-gather answers identical to the "
          f"unsharded build", file=out)
    return 0


def cmd_snapshot_save(args, out):
    seda = _build_seda(args)
    seda.save(args.path)
    print(f"saved snapshot to {args.path}", file=out)
    print(f"  documents: {len(seda.collection)}", file=out)
    print(f"  nodes: {seda.collection.node_count}", file=out)
    print(f"  bytes: {os.path.getsize(args.path)}", file=out)
    return 0


def _read_snapshot_or_exit(reader, path):
    """Run ``reader(path)``, turning file problems into clean exits."""
    try:
        return reader(path)
    except FileNotFoundError:
        raise SystemExit(f"no snapshot file at {path}")
    except SnapshotError as error:
        raise SystemExit(str(error))


def cmd_snapshot_load(args, out):
    seda = _read_snapshot_or_exit(Seda.load, args.path)
    print(f"loaded snapshot {args.path}", file=out)
    print(f"  collection: {seda.collection.name}", file=out)
    print(f"  documents: {len(seda.collection)}", file=out)
    print(f"  nodes: {seda.collection.node_count}", file=out)
    print(f"  link edges: {len(seda.graph.edges)}", file=out)
    print(f"  dataguides: {len(seda.dataguides)}", file=out)
    if args.term:
        pairs = [_parse_term(term) for term in args.term]
        session = seda.search(pairs, k=args.k)
        print("", file=out)
        print(ui.render_session(session), file=out)
    return 0


def cmd_snapshot_info(args, out):
    info = _read_snapshot_or_exit(snapshot_info, args.path)
    print(f"snapshot {args.path}", file=out)
    for key, value in info["meta"].items():
        print(f"  {key}: {value}", file=out)
    print("  records:", file=out)
    for name, size in info["records"]:
        print(f"    {size:10d} bytes  {name}", file=out)
    print(f"  total: {info['total_bytes']} bytes", file=out)
    return 0


def cmd_fsck(args, out):
    """Verify a snapshot/sidecar/WAL set without restoring anything."""
    from repro.storage.snapshot import fsck_report

    try:
        report = fsck_report(args.path)
    except FileNotFoundError:
        raise SystemExit(f"no snapshot file or directory at {args.path}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
        return 0 if report["ok"] else 1
    print(f"fsck {report['target']} ({report['kind']})", file=out)
    for target in sorted(report["checked"]):
        details = report["checked"][target]
        summary = ", ".join(
            f"{key}={details[key]}" for key in sorted(details)
        )
        print(f"  checked {target}: {summary}", file=out)
    for warning in report["warnings"]:
        print(f"  warning: {warning}", file=out)
    for problem in report["problems"]:
        print(f"  PROBLEM: {problem}", file=out)
    if report["ok"]:
        print("  ok: no integrity problems", file=out)
        return 0
    print(f"  FAILED: {len(report['problems'])} integrity problem(s)",
          file=out)
    return 1


def cmd_info(args, out):
    """Per-index estimated memory for a built or restored system."""
    if args.snapshot:
        seda = _read_snapshot_or_exit(Seda.load, args.snapshot)
    else:
        seda = _build_seda(args)
    report = seda.index_memory()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
        return 0
    print(f"index memory: {seda.collection.name}", file=out)
    for section in sorted(report):
        print(f"  {section}:", file=out)
        for key in sorted(report[section]):
            print(f"    {key}: {report[section][key]}", file=out)
    return 0


def cmd_shard_build(args, out):
    """Partition a corpus, build every shard, save the directory."""
    from repro.shard import ShardedSeda

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    pairs = _load_documents(args)
    start = time.perf_counter()
    sharded = ShardedSeda.from_documents(
        pairs, shards=args.shards, parallel=not args.serial,
        max_workers=args.build_workers, partitioner=args.partitioner,
    )
    build_time = time.perf_counter() - start
    sharded.save(args.path)
    mode = "serial" if args.serial else "parallel"
    print(f"built {args.shards} shards in {build_time:.2f}s ({mode}) "
          f"and saved to {args.path}", file=out)
    for entry in sharded.info()["per_shard"]:
        print(f"  shard {entry['shard']}: {entry['documents']} documents, "
              f"{entry['nodes']} nodes", file=out)
    return 0


def cmd_shard_search(args, out):
    """Scatter-gather a query over a saved sharded collection."""
    from repro.shard import ShardedSeda

    if not args.term:
        raise SystemExit("shard search needs at least one --term")
    # Eager load: search touches every shard anyway, and loading under
    # the guard turns a corrupt shard file into a clean exit instead
    # of a traceback out of the lazy restore mid-search.
    sharded = _read_snapshot_or_exit(
        lambda path: ShardedSeda.load(path, lazy=False), args.path
    )
    pairs = [_parse_term(term) for term in args.term]
    results = sharded.search(pairs, k=args.k)
    view = sharded.collection
    print(f"{len(results)} results from {sharded.shard_count} shards",
          file=out)
    for result in results:
        print(f"  {result.describe(view)}", file=out)
    for entry in sharded.last_search_stats["per_shard"]:
        print(f"  shard {entry['shard']}: "
              f"{entry['sorted_accesses']} sorted accesses, "
              f"{entry['tuples_scored']} tuples scored, "
              f"{entry['pruned']} pruned, "
              f"early_stop={entry['early_stop']}", file=out)
    return 0


def cmd_shard_info(args, out):
    """Print a sharded snapshot's topology from its manifest alone.

    ``--memory`` additionally loads every shard and reports the
    per-shard compact-index memory estimates (the one flag here that
    costs a full restore).
    """
    from repro.storage.snapshot import sharded_snapshot_info

    info = _read_snapshot_or_exit(sharded_snapshot_info, args.path)
    print(f"sharded snapshot {args.path}", file=out)
    for key, value in info["meta"].items():
        if key == "value_links":
            value = len(value)
        print(f"  {key}: {value}", file=out)
    print(f"  documents: {info['documents']}", file=out)
    print(f"  nodes: {info['nodes']}", file=out)
    print("  shards:", file=out)
    for shard_file, size, documents, nodes in info["shards"]:
        print(f"    {size:10d} bytes  {documents:6d} docs "
              f"{nodes:8d} nodes  {shard_file}", file=out)
    print(f"  total: {info['total_bytes']} bytes", file=out)
    if args.memory:
        from repro.shard import ShardedSeda

        sharded = _read_snapshot_or_exit(ShardedSeda.load, args.path)
        memory = sharded.index_memory()
        print("  index memory:", file=out)
        for entry in memory["per_shard"]:
            inverted = entry["inverted"]
            paths = entry["path_index"]
            streams = entry["streams"]
            column_bytes = (inverted["column_bytes"]
                            + paths["column_bytes"]
                            + streams["column_bytes"])
            print(f"    shard {entry['shard']}: {column_bytes} column "
                  f"bytes, {inverted['terms']} terms, "
                  f"{paths['paths']} paths, {streams['streams']} streams, "
                  f"{entry['trie']['nodes']} trie nodes", file=out)
        print(f"    column bytes total: "
              f"{memory['totals']['column_bytes']}", file=out)
    return 0


def cmd_shard_skew(args, out):
    """Per-shard skew report from the manifest, files, and obs state."""
    from repro.shard import skew_report

    report = _read_snapshot_or_exit(skew_report, args.path)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
        return 0
    print(f"shard skew: {report['collection']} "
          f"({report['shards']} shards, routing epoch "
          f"{report['routing_epoch']})", file=out)
    for entry in report["per_shard"]:
        print(f"  shard {entry['shard']}: {entry['documents']:6d} docs  "
              f"{entry['nodes']:8d} nodes  {entry['bytes']:10d} bytes  "
              f"traffic {entry['traffic']}", file=out)
    for metric, ratio in sorted(report["imbalance"].items()):
        rendered = "n/a" if ratio is None else f"{ratio:.2f}x"
        print(f"  imbalance[{metric}]: {rendered} (max over mean)",
              file=out)
    if not report["wal_present"]:
        print("  (no write-ahead log present)", file=out)
    return 0


def _run_topology_op(args, out, operate):
    """Load a sharded snapshot, apply one topology op, report it."""
    from repro.shard import ShardedSeda

    sharded = _read_snapshot_or_exit(ShardedSeda.load, args.path)
    try:
        summary = operate(sharded)
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True), file=out)
        return 0
    for key in sorted(summary):
        print(f"  {key}: {summary[key]}", file=out)
    return 0


def cmd_shard_split(args, out):
    """Split one shard of a saved sharded snapshot into two."""
    if not args.json:
        print(f"splitting shard {args.shard} of {args.path}", file=out)
    return _run_topology_op(
        args, out, lambda sharded: sharded.split(args.shard)
    )


def cmd_shard_merge(args, out):
    """Merge two shards of a saved sharded snapshot into one."""
    if not args.json:
        print(f"merging shards {args.a} and {args.b} of {args.path}",
              file=out)
    return _run_topology_op(
        args, out, lambda sharded: sharded.merge(args.a, args.b)
    )


def cmd_shard_rebalance(args, out):
    """Plan (or apply) a document rebalance over a sharded snapshot."""
    from repro.shard import ShardedSeda

    if args.moves:
        try:
            moves = json.loads(args.moves)
        except ValueError as error:
            raise SystemExit(f"--moves is not valid JSON: {error}")
        plan = {"moves": moves}
    else:
        sharded = _read_snapshot_or_exit(ShardedSeda.load, args.path)
        plan = sharded.propose_rebalance(metric=args.metric)
        if args.dry_run:
            print(json.dumps(
                {"plan": {"metric": plan["metric"],
                          "moves": {str(k): v
                                    for k, v in plan["moves"].items()},
                          "projected_loads": plan["projected_loads"]}},
                indent=2, sort_keys=True), file=out)
            return 0
        try:
            summary = sharded.rebalance(plan)
        except ValueError as error:
            raise SystemExit(str(error))
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True), file=out)
            return 0
        for key in sorted(summary):
            print(f"  {key}: {summary[key]}", file=out)
        return 0
    if args.dry_run:
        print(json.dumps({"plan": plan}, indent=2, sort_keys=True), file=out)
        return 0
    return _run_topology_op(
        args, out, lambda sharded: sharded.rebalance(plan)
    )


def cmd_serve(args, out):
    """Serve a snapshot over HTTP until drained or interrupted.

    The long-running counterpart of ``serve-batch``: loads the
    snapshot (replaying its WAL), binds a threaded HTTP server, and
    blocks until an ``/admin/drain`` request -- or SIGINT/SIGTERM,
    which triggers the same graceful drain -- commits a fresh snapshot
    and shuts the listener down.  The first output line names the
    bound address (``--port 0`` binds an ephemeral port), so wrappers
    can parse where to connect.
    """
    import signal

    from repro.serving.app import ServingApp, load_serving_system
    from repro.serving.server import ReproServer
    from repro.testing.faults import maybe_install_kill_switch_from_env

    system = _read_snapshot_or_exit(load_serving_system, args.snapshot)
    # Arm the crash-harness kill switch, when the environment asks for
    # it, only *after* the load: the sweep counts durable operations
    # from the first online ingest, not from WAL replay.
    maybe_install_kill_switch_from_env()
    app = ServingApp(
        system, args.snapshot, workers=args.workers,
        max_inflight=args.max_inflight, per_client=args.per_client,
        retry_after=args.retry_after, slow_threshold=args.slow_ms / 1000.0,
    )
    server = ReproServer(app, host=args.host, port=args.port)

    def request_shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, request_shutdown)
    server.start()
    kind = "sharded" if app.sharded else "single-file"
    print(f"serving {args.snapshot} ({kind}, "
          f"{app.document_count()} documents) on {server.url}",
          file=out, flush=True)
    try:
        while not server.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        if app.state == "serving":
            app.handle("POST", "/admin/drain")
        server.stop()
    print(f"drained: snapshot committed to {args.snapshot}",
          file=out, flush=True)
    return 0


# -- argument parsing -------------------------------------------------------------

def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SEDA: search-driven analysis of heterogeneous XML data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_source_options(sub):
        sub.add_argument("--dataset", choices=_DATASETS, default="factbook",
                         help="generated dataset to load (default factbook)")
        sub.add_argument("--scale", type=float, default=0.02,
                         help="dataset scale in (0, 1] (default 0.02)")
        sub.add_argument("--data", default=None, metavar="DIR",
                         help="load *.xml files from DIR instead")

    def add_service_options(sub):
        sub.add_argument("--queries", default=None, metavar="FILE",
                         help="query file (one query per line, terms "
                              "separated by ';;'); built-in set if omitted")
        sub.add_argument("--workers", type=int, default=4,
                         help="concurrent worker searchers (default 4)")
        sub.add_argument("-k", type=int, default=10, help="top-k size")

    stats = subparsers.add_parser(
        "stats",
        help="collection statistics, or the query-statistics registry "
             "(with --queries / --snapshot)",
    )
    add_source_options(stats)
    stats.add_argument("--top", type=int, default=10,
                       help="number of top paths to print")
    add_service_options(stats)
    stats.add_argument("--json", action="store_true",
                       help="emit the query-statistics registry as JSON "
                            "(needs --queries or --snapshot)")
    stats.add_argument("--slow-ms", type=float, default=100.0,
                       help="slow-query log threshold in milliseconds "
                            "(default 100)")
    stats.add_argument("--snapshot", default=None, metavar="PATH",
                       help="read the registry stored in a snapshot file "
                            "or sharded directory instead of serving")
    stats.add_argument("--save", default=None, metavar="PATH",
                       help="after serving --queries, persist the system "
                            "with its registry to this snapshot file")
    stats.set_defaults(handler=cmd_stats)

    search = subparsers.add_parser("search", help="run a SEDA query")
    add_source_options(search)
    search.add_argument("--term", action="append", default=[],
                        metavar="CONTEXT:SEARCH",
                        help="query term; repeatable")
    search.add_argument("-k", type=int, default=10, help="top-k size")
    search.set_defaults(handler=cmd_search)

    explain_cmd = subparsers.add_parser(
        "explain",
        help="run one query and explain its top-k execution "
             "(streams, candidates, pruning, stop reason)",
    )
    add_source_options(explain_cmd)
    explain_cmd.add_argument("--term", action="append", default=[],
                             metavar="CONTEXT:SEARCH",
                             help="query term; repeatable")
    explain_cmd.add_argument("-k", type=int, default=10, help="top-k size")
    explain_cmd.add_argument("--json", action="store_true",
                             help="emit the report as JSON")
    explain_cmd.add_argument("--snapshot", default=None, metavar="FILE",
                             help="explain against a loaded snapshot "
                                  "instead of building from a dataset")
    explain_cmd.set_defaults(handler=cmd_explain)

    table1 = subparsers.add_parser(
        "table1", help="regenerate the paper's Table 1"
    )
    table1.add_argument("--threshold", type=float, default=0.4)
    table1.add_argument("--scale", type=float, default=1.0)
    table1.set_defaults(handler=cmd_table1)

    query1 = subparsers.add_parser(
        "query1", help="run the paper's Query 1 walk-through (Figure 3)"
    )
    query1.add_argument("--scale", type=float, default=0.05)
    query1.add_argument("-k", type=int, default=10)
    query1.set_defaults(handler=cmd_query1)

    info_cmd = subparsers.add_parser(
        "info",
        help="per-index estimated memory (compact columns, trie, "
             "interned labels) for a built or restored system",
    )
    add_source_options(info_cmd)
    info_cmd.add_argument("--snapshot", default=None, metavar="FILE",
                          help="inspect a loaded snapshot instead of "
                               "building from a dataset")
    info_cmd.add_argument("--json", action="store_true",
                          help="emit the report as JSON")
    info_cmd.set_defaults(handler=cmd_info)

    serve_batch = subparsers.add_parser(
        "serve-batch", help="serve a batch of queries concurrently"
    )
    add_source_options(serve_batch)
    add_service_options(serve_batch)
    serve_batch.set_defaults(handler=cmd_serve_batch)

    serve = subparsers.add_parser(
        "serve",
        help="serve a snapshot over HTTP with online writes "
             "(drain via POST /admin/drain or SIGINT/SIGTERM)",
    )
    serve.add_argument("--snapshot", required=True, metavar="PATH",
                       help="snapshot file (or sharded directory) to "
                            "serve; online writes are WAL-logged next "
                            "to it and drain commits back into it")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0 = pick an ephemeral "
                            "port, printed on the first output line)")
    serve.add_argument("--workers", type=int, default=4,
                       help="concurrent query workers (default 4)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="admission cap on concurrent requests "
                            "(default 64; excess gets 429)")
    serve.add_argument("--per-client", type=int, default=16,
                       help="per-client concurrent-request cap "
                            "(default 16)")
    serve.add_argument("--retry-after", type=int, default=1,
                       help="Retry-After seconds on 429 (default 1)")
    serve.add_argument("--slow-ms", type=float, default=100.0,
                       help="slow-query log threshold in ms (default 100)")
    serve.set_defaults(handler=cmd_serve)

    bench = subparsers.add_parser(
        "bench-queries",
        help="compare sequential vs batched serving throughput "
             "(fails on any result mismatch)",
    )
    add_source_options(bench)
    add_service_options(bench)
    bench.add_argument("--repeat", type=int, default=5,
                       help="repetitions of each query, modelling "
                            "hot-query skew (default 5)")
    bench.add_argument("--shards", type=int, default=0,
                       help="also equality-gate scatter-gather serving "
                            "over this many shards (0 = skip)")
    bench.set_defaults(handler=cmd_bench_queries)

    snapshot = subparsers.add_parser(
        "snapshot", help="save, load, or inspect whole-system snapshots"
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    snap_save = snap_sub.add_parser(
        "save", help="build a system and persist it to one snapshot file"
    )
    add_source_options(snap_save)
    snap_save.add_argument("path", help="snapshot file to write")
    snap_save.set_defaults(handler=cmd_snapshot_save)

    snap_load = snap_sub.add_parser(
        "load", help="cold-start from a snapshot (optionally run a query)"
    )
    snap_load.add_argument("path", help="snapshot file to read")
    snap_load.add_argument("--term", action="append", default=[],
                           metavar="CONTEXT:SEARCH",
                           help="query term to run after loading; repeatable")
    snap_load.add_argument("-k", type=int, default=10, help="top-k size")
    snap_load.set_defaults(handler=cmd_snapshot_load)

    snap_info = snap_sub.add_parser(
        "info", help="print snapshot metadata and record sizes"
    )
    snap_info.add_argument("path", help="snapshot file to inspect")
    snap_info.set_defaults(handler=cmd_snapshot_info)

    fsck = subparsers.add_parser(
        "fsck",
        help="verify a snapshot (or sharded directory): record and "
             "sidecar checksums, WAL health, stale temp files",
    )
    fsck.add_argument("path",
                      help="snapshot file or sharded snapshot directory")
    fsck.add_argument("--json", action="store_true",
                      help="emit the raw fsck report as JSON")
    fsck.set_defaults(handler=cmd_fsck)

    shard = subparsers.add_parser(
        "shard", help="build, search, or inspect sharded collections"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_build = shard_sub.add_parser(
        "build",
        help="partition a corpus, build every shard (in parallel), "
             "and save the sharded snapshot directory",
    )
    add_source_options(shard_build)
    shard_build.add_argument("path", help="sharded snapshot directory")
    shard_build.add_argument("--shards", type=int, default=4,
                             help="number of shards (default 4)")
    shard_build.add_argument("--serial", action="store_true",
                             help="build shards in-process instead of in "
                                  "parallel worker processes")
    shard_build.add_argument("--build-workers", type=int, default=None,
                             help="worker processes for the parallel build "
                                  "(default: one per shard, capped at the "
                                  "CPU count)")
    shard_build.add_argument("--partitioner", default=None,
                             choices=("hash", "round-robin"),
                             help="document routing policy (default hash)")
    shard_build.set_defaults(handler=cmd_shard_build)

    shard_search = shard_sub.add_parser(
        "search",
        help="scatter-gather a query over a sharded snapshot "
             "(shards restore lazily)",
    )
    shard_search.add_argument("path", help="sharded snapshot directory")
    shard_search.add_argument("--term", action="append", default=[],
                              metavar="CONTEXT:SEARCH",
                              help="query term; repeatable")
    shard_search.add_argument("-k", type=int, default=10, help="top-k size")
    shard_search.set_defaults(handler=cmd_shard_search)

    shard_info = shard_sub.add_parser(
        "info",
        help="print a sharded snapshot's topology without loading shards",
    )
    shard_info.add_argument("path", help="sharded snapshot directory")
    shard_info.add_argument("--memory", action="store_true",
                            help="also load every shard and report "
                                 "per-shard compact-index memory")
    shard_info.set_defaults(handler=cmd_shard_info)

    shard_skew = shard_sub.add_parser(
        "skew",
        help="per-shard document/node/byte/traffic skew report from "
             "the manifest (loads nothing)",
    )
    shard_skew.add_argument("path", help="sharded snapshot directory")
    shard_skew.add_argument("--json", action="store_true",
                            help="emit the raw skew report as JSON")
    shard_skew.set_defaults(handler=cmd_shard_skew)

    shard_split = shard_sub.add_parser(
        "split",
        help="split one shard into two, rewriting only that shard's "
             "files and the manifest",
    )
    shard_split.add_argument("path", help="sharded snapshot directory")
    shard_split.add_argument("shard", type=int, help="shard index to split")
    shard_split.add_argument("--json", action="store_true",
                             help="emit the operation summary as JSON")
    shard_split.set_defaults(handler=cmd_shard_split)

    shard_merge = shard_sub.add_parser(
        "merge",
        help="merge two shards into one, rewriting only the surviving "
             "shard's files and the manifest",
    )
    shard_merge.add_argument("path", help="sharded snapshot directory")
    shard_merge.add_argument("a", type=int, help="first shard index")
    shard_merge.add_argument("b", type=int, help="second shard index")
    shard_merge.add_argument("--json", action="store_true",
                             help="emit the operation summary as JSON")
    shard_merge.set_defaults(handler=cmd_shard_merge)

    shard_rebalance = shard_sub.add_parser(
        "rebalance",
        help="move documents between shards (explicit --moves or a "
             "plan computed from --metric), rewriting only the "
             "affected shards",
    )
    shard_rebalance.add_argument("path", help="sharded snapshot directory")
    shard_rebalance.add_argument("--metric", default="documents",
                                 choices=("documents", "nodes"),
                                 help="balance target when planning "
                                      "(default documents)")
    shard_rebalance.add_argument("--moves", default=None,
                                 metavar="JSON",
                                 help="explicit plan as a JSON object "
                                      "{global_doc_index: target_shard}; "
                                      "overrides --metric")
    shard_rebalance.add_argument("--dry-run", action="store_true",
                                 help="print the plan without applying it")
    shard_rebalance.add_argument("--json", action="store_true",
                                 help="emit the operation summary as JSON")
    shard_rebalance.set_defaults(handler=cmd_shard_rebalance)

    return parser


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
