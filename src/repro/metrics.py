"""Effectiveness metrics for SEDA-style exploration (Section 8).

The paper's closing future-work item: "defining proper metrics to
evaluate a system like SEDA in terms of its effectiveness."  This
module proposes and implements the natural candidates, used by the
evaluation harness:

* **Result quality** against a ground-truth tuple set: precision,
  recall, F1 (:func:`precision_recall`), plus rank-aware variants for
  top-k output (:func:`average_precision`, :func:`reciprocal_rank`).
* **Disambiguation effort**: how much interpretation ambiguity the
  summaries remove, measured as the log-reduction in term-context
  combinations between exploration steps
  (:func:`disambiguation_gain`), and how many user choices a session
  took (:class:`SessionEffort`).
* **Summary fidelity**: the share of presented connections that are
  real (instantiated by some result) rather than dataguide-merge
  artifacts (:func:`connection_precision`).
"""

import math


# -- result quality -----------------------------------------------------------

def precision_recall(retrieved, relevant):
    """``(precision, recall, f1)`` over tuple sets.

    ``retrieved`` and ``relevant`` are iterables of hashable result
    identifiers (e.g. node-id tuples).  Empty retrieved sets have
    precision 1.0 by convention only when nothing is relevant.
    """
    retrieved = set(retrieved)
    relevant = set(relevant)
    hits = len(retrieved & relevant)
    if not retrieved:
        precision = 1.0 if not relevant else 0.0
    else:
        precision = hits / len(retrieved)
    if not relevant:
        recall = 1.0
    else:
        recall = hits / len(relevant)
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def average_precision(ranked, relevant):
    """AP of a ranked result list against a relevant set.

    Each relevant item is credited at its first occurrence only, so a
    ranking that repeats an answer cannot inflate the score.
    """
    relevant = set(relevant)
    if not relevant:
        return 1.0
    hits = 0
    precision_sum = 0.0
    credited = set()
    for rank, item in enumerate(ranked, start=1):
        if item in relevant and item not in credited:
            credited.add(item)
            hits += 1
            precision_sum += hits / rank
    if hits == 0:
        return 0.0
    return precision_sum / len(relevant)


def reciprocal_rank(ranked, relevant):
    """1 / rank of the first relevant item (0 when none appears)."""
    relevant = set(relevant)
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            return 1.0 / rank
    return 0.0


# -- disambiguation effort -------------------------------------------------------

def combination_count(context_summary):
    """Number of term-context combinations a summary presents."""
    return context_summary.combination_count()


def disambiguation_gain(before_combinations, after_combinations):
    """Bits of interpretation ambiguity removed by a refinement step.

    Example 1's twelve combinations collapsing to one is
    ``log2(12) - log2(1) ~ 3.58`` bits of gain.
    """
    if before_combinations < 1 or after_combinations < 1:
        raise ValueError("combination counts must be >= 1")
    return math.log2(before_combinations) - math.log2(after_combinations)


class SessionEffort:
    """Counts the user interactions a SEDA session consumed.

    Effectiveness is not only answer quality but how *few* choices the
    user had to make to reach a precise query -- the system's core
    pitch.  Track with :meth:`record_context_choice` /
    :meth:`record_connection_choice` and read the totals.
    """

    def __init__(self):
        self.context_choices = 0
        self.connection_choices = 0
        self.searches = 1

    def record_search(self):
        self.searches += 1

    def record_context_choice(self, count=1):
        self.context_choices += count

    def record_connection_choice(self, count=1):
        self.connection_choices += count

    @property
    def total_interactions(self):
        return self.context_choices + self.connection_choices

    def summary(self):
        return {
            "searches": self.searches,
            "context_choices": self.context_choices,
            "connection_choices": self.connection_choices,
            "total_interactions": self.total_interactions,
        }


# -- summary fidelity --------------------------------------------------------------

def connection_precision(presented, instantiated):
    """Share of presented connections that are real.

    ``presented`` is the connection list shown to the user;
    ``instantiated`` the subset confirmed by actual result tuples.  The
    complement is the Section 6.1 false-positive rate caused by
    dataguide merging.
    """
    presented = list(presented)
    if not presented:
        return 1.0
    instantiated = set(instantiated)
    real = sum(1 for connection in presented if connection in instantiated)
    return real / len(presented)


def dataguide_false_positive_rate(dataguide_set):
    """The Section 6.1 merge-artifact rate for a dataguide set."""
    false_pairs, total_pairs = dataguide_set.false_positive_pairs()
    if total_pairs == 0:
        return 0.0
    return false_pairs / total_pairs
