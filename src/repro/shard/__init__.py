"""Sharded collections: horizontal partitioning with exact answers.

The paper's SEDA assumes the whole data graph and its indexes fit one
process.  This package removes that assumption without changing a
single answer: a :class:`ShardedSeda` hash-partitions documents across
N independent :class:`~repro.system.Seda` shards, builds them in
parallel worker processes, and serves ``search``/``search_many`` by
scatter-gather -- per-shard TA top-k searches (pruning against a
shared cross-shard score bound) whose merged output is byte-identical
to an unsharded build over the same corpus.

The merge-equivalence invariants (global node ids, corpus-wide term
statistics, link co-location, deterministic total-order merge) are
documented on :mod:`repro.shard.sharded` and in
``docs/ARCHITECTURE.md``; operational guidance (snapshot directory
layout, lazy restore, partitioner choices, per-shard statistics) lives
in ``docs/OPERATIONS.md``.
"""

from repro.shard.partition import (
    PARTITIONERS,
    hash_partition,
    resolve_partitioner,
    round_robin_partition,
)
from repro.shard.service import ShardedQueryService
from repro.shard.sharded import (
    DegradationPolicy,
    ShardSearchTimeout,
    SharedPayload,
    ShardedCollectionView,
    ShardedSeda,
    publish_shared_payload,
    read_shared_payload,
)
from repro.shard.topology import (
    REBALANCE_METRICS,
    colocation_units,
    merge,
    propose_rebalance,
    rebalance,
    skew_report,
    split,
)

__all__ = [
    "DegradationPolicy",
    "PARTITIONERS",
    "REBALANCE_METRICS",
    "ShardSearchTimeout",
    "SharedPayload",
    "ShardedCollectionView",
    "ShardedQueryService",
    "ShardedSeda",
    "colocation_units",
    "hash_partition",
    "merge",
    "propose_rebalance",
    "publish_shared_payload",
    "read_shared_payload",
    "rebalance",
    "resolve_partitioner",
    "round_robin_partition",
    "skew_report",
    "split",
]
