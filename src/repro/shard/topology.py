"""Elastic shard topology: split, merge, rebalance, and skew reporting.

A :class:`~repro.shard.sharded.ShardedSeda`'s shard count is fixed at
build time by partitioner arithmetic -- until a shard fills up or runs
hot, at which point the operations here change the topology *without a
full rebuild*: they rewrite only the affected shards' snapshot files
and commit by writing a new manifest generation whose document table is
the explicit document->shard assignment map (and whose
``routing_epoch`` records that the topology moved).

Three properties carry every operation:

1. **Placement independence.**  Search results depend only on global
   node ids, corpus-wide term statistics, and link co-location -- none
   of which a topology change touches -- so ``search``/``search_many``
   are byte-identical before, during (online path), and after any
   split/merge/rebalance.
2. **Co-location preservation.**  Documents move in whole *units*: the
   connected components of the cross-document link edges (IDREF, XLink,
   value links).  By the co-location invariant every such component is
   intra-shard, so moving components whole keeps it intact.
3. **Affected-shards-only I/O.**  Unaffected shards keep their existing
   snapshot files; the new manifest points at them unchanged, with
   their ``shard_doc_bases`` watermarks preserved so write-ahead
   batches they have not absorbed still replay onto them.  The
   manifest write is the single commit point: a crash before it
   recovers onto the old topology, after it onto the new one.
"""

import os

from repro.storage.snapshot import (
    clear_obs_state,
    next_shard_generation,
    read_obs_state,
    read_sharded_manifest,
    shard_file_name,
    sidecar_file_name,
    write_obs_state,
    write_sharded_manifest,
)
from repro.storage.wal import sharded_wal_file_name
from repro.system import Seda
from repro.xmlio.dom import Element

#: Metrics :func:`propose_rebalance` can equalize.
REBALANCE_METRICS = ("documents", "nodes")


# -- document reconstruction --------------------------------------------------

def _document_to_element(document):
    """Rebuild the parsed :class:`Element` tree behind a live document.

    Walks the flat node list in document order (the same order
    :meth:`Document.from_element` created it in): element nodes become
    elements, attribute nodes become entries of their parent's
    attribute dict, and direct text re-attaches as a string child.
    The round trip is exact -- re-flattening the returned tree yields
    the same tags, paths, and node count -- which is what lets a
    topology operation rebuild a shard from another shard's in-memory
    documents without re-parsing any XML.
    """
    elements = {}
    root = None
    for node in document.nodes:
        if node.is_attribute:
            elements[node.parent_id].attributes[node.tag[1:]] = (
                node.direct_text or ""
            )
            continue
        element = Element(node.tag)
        if node.direct_text:
            element.append(node.direct_text)
        elements[node.node_id] = element
        if node.parent_id is None:
            root = element
        else:
            elements[node.parent_id].append(element)
    return root


# -- co-location units --------------------------------------------------------

def colocation_units(system, shard_index):
    """One shard's movable units: doc components of its link edges.

    Returns a list of lists of *global* document indexes, each list one
    connected component of the shard's cross-document link edges
    (single documents with no cross-document links are singleton
    units).  Units are ordered -- and internally sorted -- by global
    index, so planning over them is deterministic.  Moving units whole
    is what preserves the link co-location invariant.
    """
    shard = system.shard(shard_index)
    shard_globals = system._shard_docs[shard_index]
    parent = list(range(len(shard_globals)))

    def find(position):
        while parent[position] != position:
            parent[position] = parent[parent[position]]
            position = parent[position]
        return position

    collection = shard.collection
    for edge in shard.graph.edges:
        source_doc = collection.node(edge.source_id).doc_id
        target_doc = collection.node(edge.target_id).doc_id
        if source_doc == target_doc:
            continue
        root_a, root_b = find(source_doc), find(target_doc)
        if root_a != root_b:
            parent[max(root_a, root_b)] = min(root_a, root_b)
    groups = {}
    for position, global_index in enumerate(shard_globals):
        groups.setdefault(find(position), []).append(global_index)
    return [groups[root] for root in sorted(groups)]


# -- shard rebuilds -----------------------------------------------------------

def _extract_elements(system, global_indexes):
    """``(name, Element)`` pairs for documents, read from the old topology."""
    pairs = []
    for global_index in global_indexes:
        shard = system._doc_shard[global_index]
        position = system._shard_docs[shard].index(global_index)
        document = system.shard(shard).collection.documents[position]
        pairs.append((document.name, _document_to_element(document)))
    return pairs


def _rebuild_shard(system, shard_index, pairs, expected_counts, reference):
    """Build shard ``shard_index``'s system fresh from ``pairs``.

    The shard is rebuilt whole (never appended to) so its local
    document order stays the global order restricted to the shard --
    the property global node-id translation depends on.  ``reference``
    supplies the per-shard build configuration (analyzer, hop bound,
    dataguide threshold) so the rebuilt indexes score exactly like the
    originals.
    """
    seda = Seda.from_documents(
        pairs,
        value_links=system.value_links,
        name=f"{system.name}#{shard_index}",
        max_hops=reference.max_hops,
        dataguide_threshold=reference.dataguides.threshold,
        analyzer=reference.analyzer,
    )
    rebuilt = [len(document.nodes) for document in seda.collection.documents]
    if rebuilt != list(expected_counts):
        raise RuntimeError(
            f"shard {shard_index} rebuild produced node counts {rebuilt} "
            f"but the document table records {list(expected_counts)}; "
            "document reconstruction is not faithful"
        )
    return seda


# -- commit protocol ----------------------------------------------------------

def _commit(system, affected, superseded):
    """Persist a topology change; the manifest write is the commit point.

    Writes each affected shard's new snapshot under the next file
    generation, then the new manifest (document table = assignment map,
    bumped ``routing_epoch``, per-shard watermarks), then best-effort
    deletes the superseded files.  Unaffected shards' files are
    untouched -- the whole point -- which requires every unaffected
    slot to be backed by a file in the snapshot directory; when one is
    not (never-saved collection, slots loaded from elsewhere), the
    operation falls back to a full :meth:`ShardedSeda.save`.  With no
    write-ahead log attached the collection has no home directory and
    the change stays purely in memory (``committed: False``).

    The write-ahead log is deliberately *not* truncated: unaffected
    shard files keep their old watermarks, so batches they have not
    absorbed must survive for replay.
    """
    if system._wal is None:
        return False
    directory = os.path.dirname(system._wal.path)
    target = os.path.abspath(directory)
    for index, slot in enumerate(system._slots):
        if index in affected:
            continue
        if slot.path is None or (
            os.path.dirname(os.path.abspath(slot.path)) != target
        ):
            system.save(directory)
            return True
    generation = next_shard_generation(directory)
    shard_files = []
    for index, slot in enumerate(system._slots):
        if index in affected:
            shard_file = shard_file_name(index, generation)
            slot.save_to(os.path.join(directory, shard_file))
        else:
            shard_file = os.path.basename(slot.path)
        shard_files.append(shard_file)
    meta = {
        "collection": system.name,
        "shards": len(system._slots),
        "partitioner": system._partitioner_name,
        "value_links": [spec.to_dict() for spec in system.value_links],
    }
    write_sharded_manifest(
        directory, meta, system._docs, shard_files, generation=generation,
        routing_epoch=system._routing_epoch,
        shard_doc_bases=system._shard_doc_bases,
    )
    if system.obs is not None:
        write_obs_state(directory, system.obs.to_dict())
    else:
        clear_obs_state(directory)
    for index in affected:
        system._slots[index].path = os.path.join(
            directory, shard_files[index]
        )
    # The new manifest no longer references the superseded files (the
    # affected shards' previous generations, a merged-away shard's
    # file); remove them and their sidecars best-effort -- leftovers
    # only cost disk and an fsck warning.
    for path in superseded:
        for stale in (path, sidecar_file_name(path)):
            try:
                os.remove(stale)
            except OSError:
                pass
    return True


def _install(system, new_slots, new_bases, affected, superseded):
    """Swap the new topology into the live system and commit it.

    ``new_slots``/``new_bases`` are the full post-operation slot and
    watermark lists; ``affected`` the post-operation indexes of rebuilt
    shards.  The routing epoch bumps exactly once per operation.
    """
    system._slots = new_slots
    for index in affected:
        slot = system._slots[index]
        slot.on_load = system._wire_shard
        system._wire_shard(slot.get())
    system._shard_doc_bases = new_bases
    system._searchers = [None] * len(new_slots)
    system._rebuild_topology()
    system.stats.invalidate()
    system._routing_epoch += 1
    if system._service is not None:
        system._service.invalidate()
    return _commit(system, affected, superseded)


def _slot_file(slot):
    """The absolute path behind a slot, or ``None`` for live-only slots."""
    return None if slot.path is None else os.path.abspath(slot.path)


# -- operations ---------------------------------------------------------------

def split(system, shard_id):
    """Split shard ``shard_id`` in two; the new shard appends at the end.

    The shard's co-location units are distributed greedily by node
    count between the old and the new shard (units in global order,
    each to the lighter side, ties staying put), so both halves end up
    roughly even without breaking any link component.  Raises
    :class:`ValueError` when the shard holds fewer than two units --
    one link-connected blob cannot be split without losing edges.
    Returns an operation summary; only the two affected shards'
    snapshot files are rewritten.
    """
    if not 0 <= shard_id < len(system._slots):
        raise ValueError(f"no shard {shard_id} (shards: {len(system._slots)})")
    units = colocation_units(system, shard_id)
    if len(units) < 2:
        raise ValueError(
            f"shard {shard_id} is one link-connected unit; splitting it "
            "would break the co-location invariant"
        )
    new_index = len(system._slots)
    keep_weight = move_weight = 0
    moved = []
    for unit in units:
        weight = sum(system._docs[g][2] for g in unit)
        if move_weight < keep_weight:
            moved.extend(unit)
            move_weight += weight
        else:
            keep_weight += weight
    moved_set = set(moved)
    pairs_keep, pairs_move = [], []
    counts_keep, counts_move = [], []
    reference = system.shard(shard_id)
    for position, global_index in enumerate(system._shard_docs[shard_id]):
        document = reference.collection.documents[position]
        pair = (document.name, _document_to_element(document))
        row = system._docs[global_index]
        if global_index in moved_set:
            pairs_move.append(pair)
            counts_move.append(row[2])
            row[1] = new_index
        else:
            pairs_keep.append(pair)
            counts_keep.append(row[2])
    superseded = [p for p in (_slot_file(system._slots[shard_id]),)
                  if p is not None]
    from repro.shard.sharded import _ShardSlot

    new_slots = list(system._slots)
    new_slots[shard_id] = _ShardSlot(seda=_rebuild_shard(
        system, shard_id, pairs_keep, counts_keep, reference
    ))
    new_slots.append(_ShardSlot(seda=_rebuild_shard(
        system, new_index, pairs_move, counts_move, reference
    )))
    new_bases = list(system._shard_doc_bases)
    new_bases[shard_id] = len(system._docs)
    new_bases.append(len(system._docs))
    committed = _install(
        system, new_slots, new_bases, {shard_id, new_index}, superseded
    )
    return {
        "op": "split",
        "shard": shard_id,
        "new_shard": new_index,
        "moved_documents": len(moved_set),
        "shards": len(system._slots),
        "routing_epoch": system._routing_epoch,
        "affected_shards": [shard_id, new_index],
        "committed": committed,
    }


def merge(system, a, b):
    """Merge shards ``a`` and ``b``; the surviving shard is the lower index.

    The higher index disappears: shards above it shift down one
    position (keeping their snapshot files -- the manifest's shard
    list is positional), and only the surviving shard is rebuilt, with
    its merged documents in global order.  Returns an operation
    summary.
    """
    shards = len(system._slots)
    if a == b:
        raise ValueError("cannot merge a shard with itself")
    for index in (a, b):
        if not 0 <= index < shards:
            raise ValueError(f"no shard {index} (shards: {shards})")
    if shards < 2:
        raise ValueError("need at least two shards to merge")
    lo, hi = min(a, b), max(a, b)
    merged_globals = sorted(
        system._shard_docs[lo] + system._shard_docs[hi]
    )
    pairs = _extract_elements(system, merged_globals)
    counts = [system._docs[g][2] for g in merged_globals]
    reference = system.shard(lo)
    for row in system._docs:
        if row[1] == hi:
            row[1] = lo
        elif row[1] > hi:
            row[1] -= 1
    superseded = [
        p for p in (_slot_file(system._slots[lo]),
                    _slot_file(system._slots[hi]))
        if p is not None
    ]
    from repro.shard.sharded import _ShardSlot

    new_slots = list(system._slots)
    new_slots[lo] = _ShardSlot(
        seda=_rebuild_shard(system, lo, pairs, counts, reference)
    )
    del new_slots[hi]
    new_bases = list(system._shard_doc_bases)
    new_bases[lo] = len(system._docs)
    del new_bases[hi]
    committed = _install(system, new_slots, new_bases, {lo}, superseded)
    return {
        "op": "merge",
        "merged": [lo, hi],
        "surviving_shard": lo,
        "moved_documents": len(merged_globals),
        "shards": len(system._slots),
        "routing_epoch": system._routing_epoch,
        "affected_shards": [lo],
        "committed": committed,
    }


def rebalance(system, plan):
    """Move documents between shards according to ``plan``.

    ``plan`` is ``{"moves": {global_document_index: target_shard}}``
    (JSON-string keys accepted -- plans round-trip through the CLI and
    the serving endpoint).  Every co-location unit must move
    all-or-nothing to a single target; violating moves raise
    :class:`ValueError` before anything changes.  Moves onto a
    document's current shard are dropped; an effectively empty plan is
    a no-op that does not bump the routing epoch.  All shards that
    gain or lose documents are rebuilt; the rest keep their files.
    """
    shards = len(system._slots)
    raw_moves = plan.get("moves", {}) if isinstance(plan, dict) else {}
    moves = {}
    for key, value in raw_moves.items():
        global_index, target = int(key), int(value)
        if not 0 <= global_index < len(system._docs):
            raise ValueError(f"no document with global index {global_index}")
        if not 0 <= target < shards:
            raise ValueError(f"no shard {target} (shards: {shards})")
        if system._docs[global_index][1] != target:
            moves[global_index] = target
    if not moves:
        return {
            "op": "rebalance",
            "moved_documents": 0,
            "shards": shards,
            "routing_epoch": system._routing_epoch,
            "affected_shards": [],
            "committed": False,
        }
    sources = {system._docs[g][1] for g in moves}
    for source in sorted(sources):
        for unit in colocation_units(system, source):
            targets = {moves.get(g) for g in unit}
            if targets == {None}:
                continue
            if len(unit) > 1 and (None in targets or len(targets) > 1):
                raise ValueError(
                    f"documents {unit} form one link-connected unit and "
                    "must move together to a single target shard"
                )
    affected = sources | set(moves.values())
    # Extract every affected shard's post-move document list from the
    # *old* topology before touching the table.
    new_members = {
        index: [g for g in system._shard_docs[index] if g not in moves]
        for index in affected
    }
    for global_index, target in moves.items():
        new_members[target].append(global_index)
    reference = system.shard(min(affected))
    rebuilt = {}
    for index in sorted(affected):
        members = sorted(new_members[index])
        rebuilt[index] = _rebuild_shard(
            system, index,
            _extract_elements(system, members),
            [system._docs[g][2] for g in members],
            reference,
        )
    for global_index, target in moves.items():
        system._docs[global_index][1] = target
    superseded = [
        p for p in (_slot_file(system._slots[index]) for index in affected)
        if p is not None
    ]
    from repro.shard.sharded import _ShardSlot

    new_slots = list(system._slots)
    for index, seda in rebuilt.items():
        new_slots[index] = _ShardSlot(seda=seda)
    new_bases = list(system._shard_doc_bases)
    for index in affected:
        new_bases[index] = len(system._docs)
    committed = _install(system, new_slots, new_bases, affected, superseded)
    return {
        "op": "rebalance",
        "moved_documents": len(moves),
        "shards": shards,
        "routing_epoch": system._routing_epoch,
        "affected_shards": sorted(affected),
        "committed": committed,
    }


def propose_rebalance(system, metric="documents"):
    """Draft a rebalance plan equalizing ``metric`` across shards.

    Greedy: repeatedly move one co-location unit from the most- to the
    least-loaded shard, choosing the unit whose weight comes closest
    to halving the gap, while each move strictly shrinks it.  The
    result is a plan for :func:`rebalance` -- deterministic, co-location
    safe by construction, and conservative (it stops rather than
    oscillate).  ``metric`` is ``"documents"`` or ``"nodes"``.
    """
    if metric not in REBALANCE_METRICS:
        raise ValueError(
            f"unknown metric {metric!r} (choose from {REBALANCE_METRICS})"
        )

    def weigh(unit):
        if metric == "documents":
            return len(unit)
        return sum(system._docs[g][2] for g in unit)

    shards = len(system._slots)
    units = {
        index: [(weigh(unit), unit)
                for unit in colocation_units(system, index)]
        for index in range(shards)
    }
    loads = [sum(weight for weight, _unit in units[index])
             for index in range(shards)]
    moves = {}
    while True:
        donor = max(range(shards), key=lambda i: (loads[i], i))
        receiver = min(range(shards), key=lambda i: (loads[i], i))
        gap = loads[donor] - loads[receiver]
        best = None
        for position, (weight, unit) in enumerate(units[donor]):
            if 0 < weight < gap:
                distance = abs(gap - 2 * weight)
                if best is None or distance < best[0]:
                    best = (distance, position, weight, unit)
        if best is None:
            break
        _distance, position, weight, unit = best
        units[donor].pop(position)
        units[receiver].append((weight, unit))
        loads[donor] -= weight
        loads[receiver] += weight
        for global_index in unit:
            moves[global_index] = receiver
    return {
        "metric": metric,
        "moves": moves,
        "projected_loads": loads,
    }


# -- skew reporting -----------------------------------------------------------

def skew_report(directory):
    """Per-shard skew over a saved sharded snapshot directory.

    Reads the manifest (documents and nodes per shard), the shard
    files' on-disk sizes (snapshot plus column sidecar -- the postings
    bytes), and the retained observability state (``obs.json``) for
    per-shard query traffic, and reports each metric with its
    imbalance ratio (max over mean; 1.0 is perfectly even).  The
    report is what :func:`propose_rebalance` decisions are made from;
    ``repro shard skew`` prints it.
    """
    manifest = read_sharded_manifest(directory)
    shard_files = manifest["shard_files"]
    per_shard = [
        {"shard": index, "file": shard_file, "documents": 0, "nodes": 0,
         "bytes": 0, "traffic": 0}
        for index, shard_file in enumerate(shard_files)
    ]
    for _name, shard, node_count in manifest["documents"]:
        per_shard[shard]["documents"] += 1
        per_shard[shard]["nodes"] += node_count
    for entry in per_shard:
        path = os.path.join(directory, entry["file"])
        for piece in (path, sidecar_file_name(path)):
            try:
                entry["bytes"] += os.path.getsize(piece)
            except OSError:
                pass
    traffic = {}
    obs_payload = read_obs_state(directory)
    if obs_payload is not None:
        from repro.obs.registry import StatsRegistry

        traffic = StatsRegistry.from_dict(obs_payload).per_shard_traffic()
    for entry in per_shard:
        shard_traffic = traffic.get(entry["shard"])
        if shard_traffic is not None:
            entry["traffic"] = (
                shard_traffic["sorted_accesses"]
                + shard_traffic["tuples_scored"]
                + shard_traffic["pruned"]
            )

    def imbalance(key):
        values = [entry[key] for entry in per_shard]
        total = sum(values)
        if not values or total == 0:
            return None
        return max(values) / (total / len(values))

    return {
        "collection": manifest.get("meta", {}).get(
            "collection", "collection"
        ),
        "shards": len(shard_files),
        "routing_epoch": manifest.get("routing_epoch", 0),
        "generation": manifest.get("generation", 0),
        "wal_present": os.path.exists(sharded_wal_file_name(directory)),
        "per_shard": per_shard,
        "imbalance": {
            key: imbalance(key)
            for key in ("documents", "nodes", "bytes", "traffic")
        },
    }
