"""Document-to-shard assignment policies.

A partitioner is any callable ``(doc_name, global_index, shards) ->
shard_index``.  Two policies ship with the system:

* :func:`hash_partition` (the default) -- a *stable* hash of the
  document name (SHA-1 based, independent of ``PYTHONHASHSEED`` and of
  process boundaries, unlike builtin ``hash``), so the same corpus
  always lands in the same layout and a saved sharded snapshot can
  route later ``add_documents`` calls identically.
* :func:`round_robin_partition` -- ``global_index % shards``; perfectly
  balanced regardless of names, useful for benchmarks and for corpora
  with adversarial name distributions.

The merge-equivalence invariant (see :mod:`repro.shard`) requires that
no discovered link edge crosses shards.  Neither built-in policy
inspects document *content*, so corpora whose IDREF/XLink/value links
span documents need a caller-supplied partitioner that co-locates each
linked group on one shard.

A partitioner places **new** documents only.  Documents already in the
collection are routed by the manifest's explicit document->shard
assignment map (the document table), which topology operations
(:mod:`repro.shard.topology` -- split, merge, rebalance) rewrite
freely: after any such operation the live placement no longer follows
partitioner arithmetic, and write-ahead replay of old batches follows
the map, not the policy.
"""

import hashlib

#: Registry of named policies, used by sharded snapshot manifests so a
#: reload can restore the exact routing function by name.
PARTITIONERS = {}


def _register(name):
    def wrap(function):
        function.partitioner_name = name
        PARTITIONERS[name] = function
        return function
    return wrap


@_register("hash")
def hash_partition(doc_name, global_index, shards):
    """Stable name-hash assignment (the default policy)."""
    digest = hashlib.sha1(doc_name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@_register("round-robin")
def round_robin_partition(doc_name, global_index, shards):
    """Cycle through shards in global document order."""
    return global_index % shards


def resolve_partitioner(spec):
    """A partitioner from a policy name, callable, or ``None`` (default).

    Returns ``(callable, name)`` where ``name`` is the manifest label
    (``"custom"`` for caller-supplied callables, which cannot be
    serialized).
    """
    if spec is None:
        return hash_partition, "hash"
    if callable(spec):
        return spec, getattr(spec, "partitioner_name", "custom")
    try:
        return PARTITIONERS[spec], spec
    except KeyError:
        raise ValueError(
            f"unknown partitioner {spec!r} "
            f"(available: {sorted(PARTITIONERS)})"
        ) from None
